"""Tests for the debugging-learning game (paper Fig. 9)."""

import pytest

from repro.tools.debug_game import (
    DebugGame,
    LEVEL1_BUGGY,
    LEVEL1_FIXED,
    fix_and_replay,
    play_level,
    render_map,
    write_level,
)


@pytest.fixture
def buggy_level(write_program):
    return write_program("level1.c", LEVEL1_BUGGY)


@pytest.fixture
def fixed_level(write_program):
    return write_program("level1_fixed.c", LEVEL1_FIXED)


class TestBuggyRun:
    def test_character_reaches_exit_but_door_closed(self, buggy_level):
        result = play_level(buggy_level)
        assert result.reached_exit
        assert not result.door_opened
        assert not result.won
        assert not result.has_key

    def test_hint_about_check_key(self, buggy_level):
        result = play_level(buggy_level)
        assert any("check_key" in hint for hint in result.hints)

    def test_hint_about_closed_door(self, buggy_level):
        result = play_level(buggy_level)
        assert any("door" in hint for hint in result.hints)

    def test_path_follows_the_level_script(self, buggy_level):
        result = play_level(buggy_level)
        assert result.path[0] == (1, 1)
        assert result.path[-1] == (5, 3)
        assert (3, 1) in result.path  # walked over the key

    def test_frames_rendered_per_move(self, buggy_level):
        result = play_level(buggy_level)
        assert len(result.frames) >= len(result.path)
        assert "@" in result.frames[0]


class TestFixedRun:
    def test_fixed_level_wins(self, fixed_level):
        result = play_level(fixed_level)
        assert result.won
        assert result.has_key
        assert result.door_opened

    def test_no_check_key_hint_when_fixed(self, fixed_level):
        result = play_level(fixed_level)
        assert not any("check_key" in hint for hint in result.hints)

    def test_fix_and_replay_flow(self, buggy_level):
        before, after = fix_and_replay(buggy_level)
        assert not before.won
        assert after.won
        # The scripted edit actually rewrote the level source.
        with open(buggy_level, "r", encoding="utf-8") as source:
            assert "has_key = 1;" in source.read()


class TestMapRendering:
    def test_characters(self):
        art = render_map((1, 1), key=(3, 1), exit_pos=(5, 3),
                         has_key=False, door_open=False)
        assert "@" in art
        assert "K" in art
        assert "E" in art
        assert art.splitlines()[0] == "#" * 7

    def test_key_hidden_once_held(self):
        art = render_map((1, 1), key=(3, 1), exit_pos=(5, 3),
                         has_key=True, door_open=False)
        assert "K" not in art

    def test_open_door(self):
        art = render_map((1, 1), key=(3, 1), exit_pos=(5, 3),
                         has_key=True, door_open=True)
        assert "O" in art


class TestLevelTwo:
    """The wrong-turn level: the key works but the path goes astray."""

    def test_buggy_turn_misses_the_exit(self, write_program):
        from repro.tools.debug_game import LEVEL2_BUGGY

        result = play_level(write_program("l2.c", LEVEL2_BUGGY))
        assert not result.reached_exit
        assert result.path[-1] == (1, 3)  # walked the wrong way
        assert any("not at the exit" in hint for hint in result.hints)
        # The key *was* picked up: no check_key hint this time.
        assert not any("check_key" in hint for hint in result.hints)

    def test_fixed_turn_wins(self, write_program):
        from repro.tools.debug_game import LEVEL2_FIXED

        result = play_level(write_program("l2.c", LEVEL2_FIXED))
        assert result.won
        assert result.path[-1] == (5, 3)

    def test_level2_uses_enum_and_switch(self):
        from repro.tools.debug_game import LEVEL2_BUGGY

        assert "typedef enum" in LEVEL2_BUGGY
        assert "switch (dir)" in LEVEL2_BUGGY


class TestLevelWriting:
    def test_write_level_buggy_and_fixed(self, tmp_path):
        buggy = write_level(str(tmp_path / "b.c"))
        fixed = write_level(str(tmp_path / "f.c"), fixed=True)
        buggy_text = open(buggy).read()
        fixed_text = open(fixed).read()
        assert "BUG" in buggy_text
        assert "has_key = 1;" in fixed_text

    def test_sources_differ_only_in_the_fix(self):
        buggy_lines = LEVEL1_BUGGY.splitlines()
        fixed_lines = LEVEL1_FIXED.splitlines()
        different = [
            (a, b) for a, b in zip(buggy_lines, fixed_lines) if a != b
        ]
        assert len(different) == 1
