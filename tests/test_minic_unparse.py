"""Tests for the mini-C unparser: round trips and behaviour preservation."""

import pytest

from repro.minic.events import OutputEvent
from repro.minic.interpreter import Interpreter
from repro.minic.parser import parse
from repro.minic.unparse import fingerprint, unparse, unparse_expr

ROUND_TRIP_PROGRAMS = {
    "scalars": """\
int counter = 3;
double ratio = 0.5;

int main(void) {
    char c = 'x';
    long big = 123456789;
    return counter;
}
""",
    "control_flow": """\
int main(void) {
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) {
            total += i;
        } else {
            total -= 1;
        }
    }
    while (total > 5) {
        total--;
    }
    do {
        total++;
    } while (total < 3);
    return total;
}
""",
    "pointers_arrays": """\
int main(void) {
    int arr[4] = {1, 2, 3, 4};
    int *p = &arr[1];
    int **pp = &p;
    *p = arr[0] + p[1];
    return **pp;
}
""",
    "structs": """\
struct point {
    int x;
    int y;
};

int norm(struct point *p) {
    return p->x * p->x + p->y * p->y;
}

int main(void) {
    struct point origin = {3, 4};
    return norm(&origin);
}
""",
    "switch_enum": """\
enum { LOW, HIGH = 7 };

int main(void) {
    int mode = HIGH;
    switch (mode) {
    case LOW:
        return 1;
    case HIGH:
        return 2;
    default:
        return 3;
    }
}
""",
    "strings_calls": """\
int main(void) {
    char *msg = "a\\"quoted\\"\\n";
    printf("%s %d %c", msg, strlen(msg) > 2 ? 1 : 0, 'q');
    return 0;
}
""",
    "function_pointers": """\
int twice(int x) {
    return 2 * x;
}

int main(void) {
    int (*op)(int) = twice;
    return op(21);
}
""",
}


def run_and_capture(source):
    interpreter = Interpreter(parse(source))
    output = []
    for event in interpreter.run():
        if isinstance(event, OutputEvent):
            output.append(event.text)
    return interpreter.exit_code, "".join(output)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ROUND_TRIP_PROGRAMS))
    def test_parse_unparse_parse_is_identity(self, name):
        source = ROUND_TRIP_PROGRAMS[name]
        first = parse(source)
        regenerated = unparse(first)
        second = parse(regenerated)
        assert fingerprint(first) == fingerprint(second), regenerated

    @pytest.mark.parametrize("name", sorted(ROUND_TRIP_PROGRAMS))
    def test_unparsed_source_behaves_identically(self, name):
        source = ROUND_TRIP_PROGRAMS[name]
        original = run_and_capture(source)
        regenerated = run_and_capture(unparse(parse(source)))
        assert regenerated == original

    def test_unparse_is_stable(self):
        source = ROUND_TRIP_PROGRAMS["structs"]
        once = unparse(parse(source))
        twice = unparse(parse(once))
        assert once == twice  # normal form reached after one pass


class TestExpressions:
    def test_precedence_preserved_by_parens(self):
        program = parse("int main(void) { return 1 + 2 * 3 - -4; }")
        expr = program.functions[0].body.body[0].value
        text = unparse_expr(expr)
        assert eval(text.replace("--", "+ ")) or True  # syntactically sane
        reparsed = parse(f"int main(void) {{ return {text}; }}")
        assert fingerprint(program) == fingerprint(reparsed)

    def test_char_escapes(self):
        program = parse(r"int main(void) { return '\n' + '\\' + '\''; }")
        regenerated = unparse(program)
        assert fingerprint(parse(regenerated)) == fingerprint(program)

    def test_multi_declarator_normalized(self):
        # `int a = 1, b = 2;` normalizes to two declarations; behaviour and
        # fingerprint (which sees the split Compound either way) agree.
        source = "int main(void) { int a = 1, b = 2; return a + b; }"
        assert run_and_capture(unparse(parse(source))) == run_and_capture(source)


class TestFingerprint:
    def test_ignores_layout(self):
        compact = parse("int main(void){int a=1;return a;}")
        spaced = parse(
            "int main(void)\n{\n    int a = 1;\n\n    return a;\n}\n"
        )
        assert fingerprint(compact) == fingerprint(spaced)

    def test_detects_semantic_difference(self):
        left = parse("int main(void) { return 1 + 2; }")
        right = parse("int main(void) { return 2 + 1; }")
        assert fingerprint(left) != fingerprint(right)

    def test_detects_type_difference(self):
        left = parse("int v;")
        right = parse("long v;")
        assert fingerprint(left) != fingerprint(right)
