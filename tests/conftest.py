"""Shared fixtures: inferior programs on disk, plus hang protection.

A suite about deadlocks and wedged inferiors must itself never hang. CI
installs pytest-timeout and the ``timeout`` ini option in pyproject.toml
applies; containers without the plugin fall back to the watchdog shim
below, which enforces the same per-test ceiling with a daemon timer (and
has to use ``os._exit``, because a test wedged in a native call cannot be
unwound politely).
"""

import os
import sys
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401  (the real plugin owns the option)

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser):
    if _HAVE_PYTEST_TIMEOUT:
        return
    parser.addini(
        "timeout", "per-test timeout in seconds (watchdog shim)", default="0"
    )
    parser.addoption(
        "--timeout",
        action="store",
        default=None,
        help="per-test timeout in seconds (watchdog shim)",
    )


@pytest.fixture(autouse=True)
def _timeout_watchdog(request):
    if _HAVE_PYTEST_TIMEOUT:
        yield
        return
    limit = request.config.getoption("--timeout", default=None)
    if limit is None:
        limit = request.config.getini("timeout")
    try:
        seconds = float(limit or 0)
    except (TypeError, ValueError):
        seconds = 0.0
    if seconds <= 0:
        yield
        return

    def _abort():
        sys.stderr.write(
            f"\n[conftest watchdog] test exceeded {seconds:.0f}s: "
            f"{request.node.nodeid}\n"
        )
        sys.stderr.flush()
        os._exit(124)

    timer = threading.Timer(seconds, _abort)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


@pytest.fixture
def write_program(tmp_path):
    """Write inferior source to a temp file; returns its path.

    Usage: ``path = write_program("name.py", source_text)``.
    """

    def _write(name: str, source: str) -> str:
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)

    return _write


@pytest.fixture
def output_dir(tmp_path):
    """A fresh directory for generated images."""
    path = tmp_path / "out"
    path.mkdir()
    return str(path)
