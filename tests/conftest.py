"""Shared fixtures: writing inferior programs to disk."""

import os

import pytest


@pytest.fixture
def write_program(tmp_path):
    """Write inferior source to a temp file; returns its path.

    Usage: ``path = write_program("name.py", source_text)``.
    """

    def _write(name: str, source: str) -> str:
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)

    return _write


@pytest.fixture
def output_dir(tmp_path):
    """A fresh directory for generated images."""
    path = tmp_path / "out"
    path.mkdir()
    return str(path)
