"""Tests for the CLI front-end."""

import os

import pytest

from repro.cli import main

SORT = """\
def insertion_sort(arr):
    for i in range(1, len(arr)):
        j = i
        while j > 0 and arr[j - 1] > arr[j]:
            arr[j - 1], arr[j] = arr[j], arr[j - 1]
            j -= 1
    return arr

data = [3, 1, 2]
insertion_sort(data)
"""

FIB = """\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

fib(3)
"""


class TestStepCommand:
    def test_writes_diagrams(self, write_program, tmp_path, capsys):
        program = write_program("p.py", "a = 1\nb = 2\n")
        out = str(tmp_path / "imgs")
        assert main(["step", program, out]) == 0
        assert "wrote 2 diagrams" in capsys.readouterr().out
        assert os.listdir(out)

    def test_stack_mode(self, write_program, tmp_path):
        program = write_program("p.py", "a = 1\n")
        out = str(tmp_path / "imgs")
        main(["step", program, out, "--mode", "stack"])
        assert any(name.endswith("-stack.svg") for name in os.listdir(out))


class TestInvariantCommand:
    def test_runs(self, write_program, tmp_path, capsys):
        program = write_program("sort.py", SORT)
        out = str(tmp_path / "inv")
        status = main([
            "invariant", program, "arr", "i", "j",
            "--sorted-upto", "i", "--function", "insertion_sort",
            "--output-dir", out,
        ])
        assert status == 0
        assert "array views" in capsys.readouterr().out


class TestRectreeCommand:
    def test_runs(self, write_program, tmp_path, capsys):
        program = write_program("fib.py", FIB)
        out = str(tmp_path / "tree")
        assert main(["rectree", program, "fib", "n", "--output-dir", out]) == 0
        assert "fib(3) -> 2" in capsys.readouterr().out


class TestRiscvCommand:
    ASM = "main:\n  li t0, 4\n  li a7, 93\n  li a0, 0\n  ecall\n"

    def test_text_mode(self, write_program, capsys):
        program = write_program("p.s", self.ASM)
        assert main(["riscv", program, "--size", "8"]) == 0
        assert "pc = " in capsys.readouterr().out

    def test_svg_mode(self, write_program, tmp_path):
        program = write_program("p.s", self.ASM)
        out = str(tmp_path / "rv")
        main(["riscv", program, "--size", "8", "--output-dir", out])
        assert os.listdir(out)


class TestGameCommand:
    def test_write_level_then_lose_then_win(self, tmp_path, capsys):
        level = str(tmp_path / "level.c")
        assert main(["game", "--write-level", level]) == 0
        assert main(["game", level]) == 1  # buggy level: door closed
        output = capsys.readouterr().out
        assert "hint:" in output
        from repro.tools.debug_game import LEVEL1_FIXED

        with open(level, "w", encoding="utf-8") as out:
            out.write(LEVEL1_FIXED)
        assert main(["game", level]) == 0
        assert "WON!" in capsys.readouterr().out

    def test_game_without_level_errors(self, capsys):
        assert main(["game"]) == 2


class TestTraceCommand:
    def test_full_trace(self, write_program, tmp_path, capsys):
        program = write_program("p.py", "x = 1\ny = 2\n")
        output = str(tmp_path / "t.json")
        assert main(["trace", program, output]) == 0
        assert os.path.exists(output)
        assert "recorded 2 steps" in capsys.readouterr().out

    def test_tracked_trace(self, write_program, tmp_path):
        program = write_program("fib.py", FIB)
        output = str(tmp_path / "t.json")
        main(["trace", program, output, "--track", "fib", "--variables", "n"])
        from repro.pytutor import PTTrace

        trace = PTTrace.load(output)
        assert all(step.event in ("call", "return") for step in trace.steps)


class TestPlayerCommand:
    def test_builds_html(self, write_program, tmp_path, capsys):
        program = write_program("p.py", "a = 1\nb = 2\n")
        output = str(tmp_path / "play.html")
        assert main(["player", program, output]) == 0
        assert os.path.exists(output)
        assert "arrow keys" in capsys.readouterr().out


class TestScopesCommand:
    def test_writes_tables(self, write_program, tmp_path, capsys):
        program = write_program(
            "p.py",
            "x = 1\n\ndef f(x):\n    return x\n\nf(2)\n",
        )
        out = str(tmp_path / "scopes")
        assert main(["scopes", program, "f", "--output-dir", out]) == 0
        assert os.listdir(out)


class TestEquivCommand:
    def test_equivalent(self, write_program, capsys):
        a = write_program("a.py", FIB)
        b = write_program("b.py", FIB)
        assert main(["equiv", a, b, "fib", "--args", "n"]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_divergent(self, write_program):
        a = write_program("a.py", FIB)
        b = write_program("b.py", FIB.replace("fib(n - 2)", "fib(n - 2) + 1"))
        assert main(["equiv", a, b, "fib", "--args", "n"]) == 1


class TestTimelineCommand:
    def _record(self, write_program, tmp_path, source=FIB, name="p.py"):
        program = write_program(name, source)
        out = str(tmp_path / "run.timeline.json")
        assert main(["timeline", "record", program, out, "--step"]) == 0
        return out

    def test_record_info_scrub_python(self, write_program, tmp_path, capsys):
        saved = self._record(write_program, tmp_path)
        assert "recorded" in capsys.readouterr().out
        assert main(["timeline", "info", saved]) == 0
        output = capsys.readouterr().out
        assert "backend:  python" in output
        assert "exit" in output
        scrub = str(tmp_path / "scrub")
        assert main(["timeline", "scrub", saved, scrub, "--max-images", "5"]) == 0
        images = os.listdir(scrub)
        assert len(images) == 5
        assert all(name.endswith(".svg") for name in images)

    def test_record_minic_backend(self, write_program, tmp_path, capsys):
        source = (
            "int main(void) {\n    int a = 1;\n    int b = a + 1;\n"
            "    return 0;\n}\n"
        )
        saved = self._record(write_program, tmp_path, source, "p.c")
        assert main(["timeline", "info", saved]) == 0
        assert "backend:  GDB" in capsys.readouterr().out

    def test_ring_bound_flag(self, write_program, tmp_path, capsys):
        program = write_program("p.py", FIB)
        out = str(tmp_path / "run.timeline.json")
        assert main([
            "timeline", "record", program, out,
            "--step", "--max-snapshots", "4", "--keyframe-interval", "2",
        ]) == 0
        from repro.core.timeline import load_timeline

        timeline = load_timeline(out)
        assert timeline.retained <= 5  # bound may overshoot by interval-1
        assert timeline.start_index > 0
