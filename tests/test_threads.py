"""The thread dimension of the in-process Python backends.

The paper's tracker model is single-threaded; this suite covers the
multithread semantics the backends now implement: per-thread
instrumentation (workers inherit the trace function and pause at control
points), stable thread indexes on pause reasons and frames, thread-scoped
control points (``thread=``), the all-stop barrier (siblings park while a
pause is live), cross-thread inspection (:meth:`Tracker.get_threads`,
:meth:`Tracker.get_thread_frames`) and output-capture cleanliness when
pauses land on worker threads. Deadlock detection has its own suite
(``tests/test_deadlock.py``), as does the seeded interleaving stress run
(``tests/test_concurrency_stress.py``).
"""

import pytest

from repro.core.errors import TrackerError
from repro.core.pause import PauseReasonType
from repro.core.threads import (
    THREAD_BLOCKED,
    THREAD_FINISHED,
    THREAD_PARKED,
    THREAD_PAUSED,
    THREAD_RUNNING,
)
from repro.pytracker.monitoring import (
    HAVE_MONITORING,
    SKIP_REASON,
    MonitoringTracker,
)
from repro.pytracker.tracker import PythonTracker

VALID_STATES = {
    THREAD_RUNNING,
    THREAD_PAUSED,
    THREAD_PARKED,
    THREAD_BLOCKED,
    THREAD_FINISHED,
}

TWO_WORKERS = """\
import threading

counter = 0
lock = threading.Lock()

def worker(n):
    global counter
    for _ in range(n):
        with lock:
            counter += 1

threads = [
    threading.Thread(name="w%d" % i, target=worker, args=(5,))
    for i in range(2)
]
for t in threads:
    t.start()
for t in threads:
    t.join()
print("total", counter)
"""


#: Strictly serial workers: s0 is dead before s1 starts, so the OS is
#: free to (and on Linux reliably does) hand s1 the same thread ident.
SERIAL_WORKERS = """\
import threading

hits = []

def job(tag):
    hits.append(tag)

for i in range(2):
    t = threading.Thread(name="s%d" % i, target=job, args=(i,))
    t.start()
    t.join()
print("jobs", len(hits))
"""


BACKENDS = [
    "python",
    pytest.param(
        "python-mon",
        marks=pytest.mark.skipif(not HAVE_MONITORING, reason=SKIP_REASON),
    ),
]


def make_tracker(backend, **kwargs):
    if backend == "python-mon":
        return MonitoringTracker(**kwargs)
    return PythonTracker(**kwargs)


def run_to_exit(tracker, limit=100):
    reasons = []
    while tracker.get_exit_code() is None and len(reasons) < limit:
        tracker.resume(timeout=30.0)
        if tracker.get_exit_code() is None:
            reasons.append(tracker.pause_reason)
    return reasons


@pytest.mark.parametrize("backend", BACKENDS)
class TestWorkerPauses:
    def test_breakpoint_fires_once_per_worker_thread(
        self, backend, write_program
    ):
        """Workers inherit the instrumentation: a function breakpoint on
        the worker body pauses once per spawned thread, and each pause
        reason names the thread that hit it."""
        tracker = make_tracker(backend)
        tracker.load_program(write_program("mt.py", TWO_WORKERS))
        tracker.break_before_func("worker")
        tracker.start()
        reasons = run_to_exit(tracker)
        hits = [r for r in reasons if r.type is PauseReasonType.BREAKPOINT]
        assert len(hits) == 2
        assert {r.thread for r in hits} == {1, 2}
        assert all(r.thread_name in ("w0", "w1") for r in hits)
        assert tracker.get_exit_code() == 0
        tracker.terminate()

    def test_thread_scoped_breakpoint_only_fires_on_that_thread(
        self, backend, write_program
    ):
        tracker = make_tracker(backend)
        tracker.load_program(write_program("mt.py", TWO_WORKERS))
        tracker.break_before_func("worker", thread=2)
        tracker.start()
        reasons = run_to_exit(tracker)
        hits = [r for r in reasons if r.type is PauseReasonType.BREAKPOINT]
        assert len(hits) == 1
        assert hits[0].thread == 2
        assert tracker.get_exit_code() == 0
        tracker.terminate()

    def test_output_capture_stays_clean_across_worker_pauses(
        self, backend, write_program
    ):
        """The stdout swap must balance even when pauses land on worker
        threads and siblings queue behind the all-stop barrier: the
        captured output is exactly the program's."""
        tracker = make_tracker(backend, capture_output=True)
        tracker.load_program(write_program("mt.py", TWO_WORKERS))
        tracker.break_before_func("worker")
        tracker.start()
        run_to_exit(tracker)
        assert tracker.get_output() == "total 10\n"
        tracker.terminate()

    def test_recycled_ident_gets_a_fresh_thread_index(
        self, backend, write_program
    ):
        """Serial workers often reuse the OS thread ident of a finished
        sibling; each must still get its own stable index (a recycled
        ident silently aliasing onto a dead thread's index is exactly
        how ``thread=``-scoped points used to misfire)."""
        tracker = make_tracker(backend)
        tracker.load_program(write_program("serial.py", SERIAL_WORKERS))
        tracker.break_before_func("job", thread=2)
        tracker.start()
        reasons = run_to_exit(tracker)
        hits = [r for r in reasons if r.type is PauseReasonType.BREAKPOINT]
        assert [r.thread for r in hits] == [2]
        assert hits[0].thread_name == "s1"
        assert tracker.get_exit_code() == 0
        infos = {info.id: info for info in tracker.get_threads()}
        assert {0, 1, 2} <= set(infos)
        assert infos[1].name == "s0"
        assert infos[2].name == "s1"
        tracker.terminate()


@pytest.mark.parametrize("backend", BACKENDS)
class TestCrossThreadInspection:
    def pause_on_worker(self, backend, write_program):
        tracker = make_tracker(backend)
        tracker.load_program(write_program("mt.py", TWO_WORKERS))
        tracker.break_before_func("worker")
        tracker.start()
        tracker.resume(timeout=30.0)
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.BREAKPOINT
        assert reason.thread in (1, 2)
        return tracker, reason

    def test_get_threads_reports_one_paused_thread(
        self, backend, write_program
    ):
        tracker, reason = self.pause_on_worker(backend, write_program)
        try:
            infos = tracker.get_threads()
            assert [info.id for info in infos] == sorted(
                info.id for info in infos
            )
            assert 0 in {info.id for info in infos}
            assert all(info.state in VALID_STATES for info in infos)
            paused = [i for i in infos if i.state == THREAD_PAUSED]
            assert [i.id for i in paused] == [reason.thread]
            # The paused worker's sampled position is inside worker().
            assert paused[0].function == "worker"
        finally:
            tracker.terminate()

    def test_frames_carry_the_thread_index(self, backend, write_program):
        tracker, reason = self.pause_on_worker(backend, write_program)
        try:
            frames = tracker.get_frames()
            assert frames
            assert frames[0].thread == reason.thread
            assert frames[0].name == "worker"
        finally:
            tracker.terminate()

    def test_get_thread_frames_serves_other_threads(
        self, backend, write_program
    ):
        """While a worker owns the pause, the main thread's stack is
        still inspectable — it is sitting in module code joining the
        workers."""
        tracker, reason = self.pause_on_worker(backend, write_program)
        try:
            own = tracker.get_thread_frames(reason.thread)
            assert [f.name for f in own] == [f.name for f in
                                             tracker.get_frames()]
            main = tracker.get_thread_frames(0)
            if main:  # the main thread may transiently show no frame
                assert main[-1].name == "<module>"
                assert all(f.thread == 0 for f in main)
        finally:
            tracker.terminate()

    def test_unknown_thread_raises(self, backend, write_program):
        tracker, _ = self.pause_on_worker(backend, write_program)
        try:
            with pytest.raises(TrackerError):
                tracker.get_thread_frames(97)
        finally:
            tracker.terminate()


class TestSingleThreadedCompat:
    def test_get_threads_on_single_threaded_program(self, write_program):
        """A plain single-threaded inferior reports exactly one thread,
        index 0, paused."""
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", "a = 1\nb = 2\n"))
        tracker.start()
        infos = tracker.get_threads()
        assert len(infos) == 1
        assert infos[0].id == 0
        assert infos[0].state == THREAD_PAUSED
        tracker.terminate()

    def test_pause_reason_thread_zero_on_main(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", "a = 1\nb = 2\n"))
        tracker.start()
        tracker.step()
        assert tracker.pause_reason.thread == 0
        tracker.terminate()
