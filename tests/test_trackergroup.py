"""The lockstep differential harness (:class:`repro.tools.equivalence.TrackerGroup`).

Differential debugging one level below :func:`check_equivalence`: drive N
loaded trackers one motion at a time and compare whole normalized states
at every boundary. The canonical pairing — a live run against a recorded
``replay`` timeline of the good run — answers "when did this run start
behaving differently?" with the first unequal snapshot.
"""

import pytest

from repro.core.errors import TrackerError
from repro.core.replay import ReplayTracker
from repro.pytracker.tracker import PythonTracker
from repro.tools.equivalence import TrackerGroup

GOOD = """\
x = 1
y = 2
z = y * 3
done = z
"""

BAD = """\
x = 1
y = 2
z = y * 4
done = z
"""


def loaded(write_program, name, source):
    tracker = PythonTracker()
    tracker.load_program(write_program(name, source))
    return tracker


def record_stepped_run(write_program, name, source):
    """Step a program to completion, recording every pause."""
    tracker = PythonTracker()
    tracker.load_program(write_program(name, source))
    tracker.enable_recording()
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.step()
    timeline = tracker.timeline
    tracker.terminate()
    return timeline


class TestLockstep:
    def test_seeded_divergence_between_live_runs(self, write_program):
        group = TrackerGroup()
        group.add("good", loaded(write_program, "good.py", GOOD))
        group.add("bad", loaded(write_program, "bad.py", BAD))
        group.start()
        try:
            report = group.run_lockstep()
        finally:
            group.terminate()
        assert report.diverged
        # Both members agree until z is assigned; the first unequal
        # snapshot is the boundary right after line 3 executed.
        states = {state.label: state for state in report.states}
        assert states["good"].variables["z"] == 6
        assert states["bad"].variables["z"] == 8
        assert "divergence at lockstep step" in report.explain()

    def test_live_versus_replay_divergence(self, write_program):
        """The acceptance pairing: a recorded good run replayed against a
        live bad run reports the seeded divergence as the first unequal
        snapshot."""
        timeline = record_stepped_run(write_program, "good.py", GOOD)
        group = TrackerGroup()
        group.add("live", loaded(write_program, "bad.py", BAD))
        group.add("recorded", ReplayTracker(timeline=timeline))
        group.start()
        try:
            report = group.run_lockstep()
        finally:
            group.terminate()
        assert report.diverged
        states = {state.label: state for state in report.states}
        assert states["live"].variables["z"] == 8
        assert states["recorded"].variables["z"] == 6
        explanation = report.explain()
        assert "live" in explanation and "recorded" in explanation

    def test_identical_programs_do_not_diverge(self, write_program):
        group = TrackerGroup()
        group.add("a", loaded(write_program, "a.py", GOOD))
        group.add("b", loaded(write_program, "b.py", GOOD))
        group.start()
        try:
            report = group.run_lockstep()
        finally:
            group.terminate()
        assert not report.diverged
        assert report.step is None
        assert report.steps_executed > 0
        assert all(state.exited for state in report.states)
        assert "no divergence" in report.explain()

    def test_exit_code_mismatch_is_a_divergence(self, write_program):
        group = TrackerGroup()
        group.add("clean", loaded(write_program, "c.py", "x = 1\n"))
        group.add(
            "failing",
            loaded(write_program, "f.py", "import sys\nsys.exit(3)\n"),
        )
        group.start()
        try:
            report = group.run_lockstep()
        finally:
            group.terminate()
        assert report.diverged


class TestGroupContract:
    def test_duplicate_label_rejected(self, write_program):
        group = TrackerGroup()
        group.add("m", loaded(write_program, "a.py", GOOD))
        with pytest.raises(TrackerError):
            group.add("m", loaded(write_program, "b.py", GOOD))

    def test_lockstep_needs_two_members(self, write_program):
        group = TrackerGroup()
        group.add("only", loaded(write_program, "a.py", GOOD))
        group.start()
        try:
            with pytest.raises(TrackerError):
                group.run_lockstep()
        finally:
            group.terminate()

    def test_terminate_is_idempotent(self, write_program):
        group = TrackerGroup()
        group.add("a", loaded(write_program, "a.py", GOOD))
        group.add("b", loaded(write_program, "b.py", GOOD))
        group.start()
        group.terminate()
        group.terminate()
