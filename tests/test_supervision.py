"""The supervised runtime under injected failure.

Three contracts from the robustness layer, each exercised end-to-end with
the fault harness (:mod:`repro.testing.faults`):

(a) a control call with a deadline on a never-pausing inferior returns a
    *paused* tracker within twice the deadline — on both the in-process
    PythonTracker and the subprocess-backed GDB tracker;
(b) after an injected server crash, the client restarts the backend and
    the previously installed control points still fire;
(c) when restarts are exhausted, the tracker degrades to a terminal
    unavailable state — an exception, never a hang.

Plus unit coverage of the supervision primitives themselves (Deadline,
BackoffPolicy, run_with_recovery) and of the wedged-inferior and
dead-server satellite fixes.
"""

import sys
import time

import pytest

from repro.core.errors import (
    BackendUnavailableError,
    ControlTimeout,
    ProtocolError,
    ServerCrashError,
    TrackerError,
)
from repro.core.pause import PauseReasonType
from repro.core.supervision import (
    BACKEND_RESTARTED,
    BACKEND_UNAVAILABLE,
    INFERIOR_INTERRUPTED,
    INFERIOR_WEDGED,
    BackoffPolicy,
    Deadline,
    run_with_recovery,
)
from repro.gdbtracker.tracker import GDBTracker
from repro.mi.client import MIClient, PipeTransport
from repro.pytracker.tracker import PythonTracker
from repro.testing.faults import (
    NEVER_PAUSING_C,
    NEVER_PAUSING_PY,
    FaultHarness,
    FaultPlan,
)

#: Fast backoff for tests: recovery in milliseconds, not seconds.
FAST = BackoffPolicy(max_restarts=2, initial_delay=0.01, max_delay=0.05)

BREAKPOINT_C = """\
int counter = 0;

int bump(int x) {
    counter = counter + x;
    return counter;
}

int main(void) {
    int i = 0;
    while (i < 5) {
        bump(i);
        i = i + 1;
    }
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Unit: the primitives
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_counts_down(self):
        deadline = Deadline(0.5)
        assert 0 < deadline.remaining() <= 0.5
        assert not deadline.expired()

    def test_expires(self):
        deadline = Deadline(0.01)
        time.sleep(0.03)
        assert deadline.expired()
        assert deadline.remaining() <= 0

    def test_rejects_nonpositive_timeouts(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_grace_is_a_second_budget(self):
        deadline = Deadline(0.2)
        assert deadline.grace >= 0.05
        assert deadline.grace_remaining() > deadline.remaining()


class TestBackoffPolicy:
    def test_delays_grow_and_cap(self):
        policy = BackoffPolicy(
            max_restarts=5, initial_delay=0.1, multiplier=2.0, max_delay=0.3
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3, 0.3]

    def test_zero_restarts_means_no_delays(self):
        assert list(BackoffPolicy(max_restarts=0).delays()) == []


class TestRunWithRecovery:
    def test_success_needs_no_restart(self):
        restarts = []
        result = run_with_recovery(
            lambda: 42, restart=restarts.append, policy=FAST
        )
        assert result == 42
        assert restarts == []

    def test_recovers_after_restart(self):
        calls = []

        def flaky():
            calls.append("call")
            if len(calls) == 1:
                raise ProtocolError("boom")
            return "ok"

        restarted = []
        result = run_with_recovery(
            flaky,
            restart=lambda error: None,
            policy=FAST,
            recoverable=(ProtocolError,),
            on_restarted=lambda error, attempt: restarted.append(attempt),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert restarted == [1]

    def test_exhausted_raises_unavailable(self):
        def always_broken():
            raise ProtocolError("down")

        unavailable = []
        with pytest.raises(BackendUnavailableError):
            run_with_recovery(
                always_broken,
                restart=lambda error: None,
                policy=BackoffPolicy(max_restarts=2, initial_delay=0),
                recoverable=(ProtocolError,),
                on_unavailable=unavailable.append,
                sleep=lambda _: None,
            )
        assert len(unavailable) == 1

    def test_failing_restart_counts_as_attempt(self):
        def broken():
            raise ProtocolError("down")

        def broken_restart(error):
            raise ProtocolError("respawn failed")

        with pytest.raises(BackendUnavailableError):
            run_with_recovery(
                broken,
                restart=broken_restart,
                policy=BackoffPolicy(max_restarts=3, initial_delay=0),
                recoverable=(ProtocolError,),
                sleep=lambda _: None,
            )

    def test_unrecoverable_error_passes_through(self):
        def wrong():
            raise TrackerError("a plain ^error reply")

        with pytest.raises(TrackerError):
            run_with_recovery(
                wrong,
                restart=lambda error: None,
                policy=FAST,
                recoverable=(ProtocolError,),
            )


# ---------------------------------------------------------------------------
# (a) deadline on a never-pausing inferior -> paused within 2x deadline
# ---------------------------------------------------------------------------


class TestDeadlineInterrupt:
    TIMEOUT = 0.4

    def _assert_interrupted(self, tracker):
        start = time.monotonic()
        tracker.resume(timeout=self.TIMEOUT)
        elapsed = time.monotonic() - start
        assert elapsed <= 2 * self.TIMEOUT + 0.2  # small scheduling slack
        assert tracker.get_exit_code() is None
        assert tracker.pause_reason.type is PauseReasonType.INTERRUPT
        stats = tracker.get_stats()
        assert stats.interrupts == 1
        kinds = [event.kind for event in tracker.drain_supervision_events()]
        assert INFERIOR_INTERRUPTED in kinds

    def test_python_tracker_interrupts(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(write_program("spin.py", NEVER_PAUSING_PY))
        tracker.start()
        try:
            self._assert_interrupted(tracker)
            tracker.step()  # still controllable after the interrupt
            assert tracker.pause_reason.type is PauseReasonType.STEP
        finally:
            tracker.terminate()

    def test_gdb_tracker_interrupts(self, write_program):
        tracker = GDBTracker()
        tracker.load_program(write_program("spin.c", NEVER_PAUSING_C))
        tracker.start()
        try:
            self._assert_interrupted(tracker)
            tracker.step()
            assert tracker.pause_reason.type is PauseReasonType.STEP
        finally:
            tracker.terminate()

    def test_default_timeout_applies_to_all_control_calls(self, write_program):
        tracker = PythonTracker()
        tracker.default_timeout = self.TIMEOUT
        tracker.load_program(write_program("spin.py", NEVER_PAUSING_PY))
        tracker.start()
        try:
            self._assert_interrupted(tracker)
        finally:
            tracker.terminate()


# ---------------------------------------------------------------------------
# (b) injected crash -> restart -> control points still fire
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_breakpoints_survive_injected_crash(self, write_program):
        # Crash the server on a later command; by then the breakpoint and
        # watchpoint below have crossed the pipe and must be re-installed
        # from the client-side registry on restart.
        harness = FaultHarness(FaultPlan(crash_before_send=6))
        program = write_program("prog.c", BREAKPOINT_C)
        tracker = GDBTracker(
            restart_policy=FAST,
            transport_factory=harness.transport_factory(program),
        )
        harness.attach(tracker)
        tracker.load_program(program)
        tracker.break_before_func("bump")
        tracker.watch("counter")
        tracker.start()
        hits = []
        try:
            while tracker.get_exit_code() is None:
                tracker.resume()
                if tracker.get_exit_code() is None:
                    hits.append(tracker.pause_reason.type)
        finally:
            stats = tracker.get_stats()
            tracker.terminate()
        assert harness.injected == 1
        assert PauseReasonType.BREAKPOINT in hits  # fired after the restart
        assert PauseReasonType.WATCH in hits
        assert stats.backend_restarts == 1
        assert stats.faults_injected == 1
        assert stats.faults_recovered == 1

    def test_garbled_line_triggers_recovery(self, write_program):
        harness = FaultHarness(
            FaultPlan(garble_recv={3: '*stopped,{"reason": truncated'})
        )
        program = write_program("prog.c", BREAKPOINT_C)
        tracker = GDBTracker(
            restart_policy=FAST,
            transport_factory=harness.transport_factory(program),
        )
        harness.attach(tracker)
        tracker.load_program(program)
        tracker.break_before_func("bump")
        tracker.start()
        try:
            tracker.resume()
            assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
            stats = tracker.get_stats()
            assert stats.faults_injected == 1
        finally:
            tracker.terminate()

    def test_restart_emits_supervision_event(self, write_program):
        # sends: -file-exec-and-symbols(0), -break-insert(1),
        # -exec-run(2); the crash lands on the first -exec-continue(3)
        harness = FaultHarness(FaultPlan(crash_before_send=3))
        program = write_program("prog.c", BREAKPOINT_C)
        tracker = GDBTracker(
            restart_policy=FAST,
            transport_factory=harness.transport_factory(program),
        )
        harness.attach(tracker)
        tracker.load_program(program)
        tracker.break_before_func("bump")
        tracker.start()
        try:
            tracker.resume()
            kinds = [e.kind for e in tracker.drain_supervision_events()]
            assert BACKEND_RESTARTED in kinds
        finally:
            tracker.terminate()


# ---------------------------------------------------------------------------
# (c) exhausted restarts -> BackendUnavailable, never a hang
# ---------------------------------------------------------------------------


class TestGracefulDegradation:
    def _doomed_tracker(self, write_program):
        """A tracker whose server dies and whose respawns die instantly."""
        program = write_program("prog.c", BREAKPOINT_C)
        tracker = GDBTracker(
            restart_policy=BackoffPolicy(max_restarts=1, initial_delay=0.01)
        )
        tracker.load_program(program)
        tracker.start()
        tracker._client._transport._process.kill()
        tracker._client._transport._process.wait(timeout=5)
        tracker._client._transport_factory = lambda: PipeTransport(
            [sys.executable, "-c", "import sys; sys.exit(3)"]
        )
        return tracker

    def test_exhausted_restarts_raise_unavailable(self, write_program):
        tracker = self._doomed_tracker(write_program)
        try:
            with pytest.raises(BackendUnavailableError):
                tracker.resume()
            assert tracker.health == "unavailable"
            kinds = [e.kind for e in tracker.drain_supervision_events()]
            assert BACKEND_UNAVAILABLE in kinds
        finally:
            tracker.terminate()

    def test_unavailable_tracker_fails_fast(self, write_program):
        tracker = self._doomed_tracker(write_program)
        try:
            with pytest.raises(BackendUnavailableError):
                tracker.resume()
            start = time.monotonic()
            with pytest.raises(BackendUnavailableError):
                tracker.resume()  # no second recovery round
            assert time.monotonic() - start < 0.5
        finally:
            tracker.terminate()


# ---------------------------------------------------------------------------
# Satellite: the dead-server diagnosis and idempotent teardown
# ---------------------------------------------------------------------------


class TestDeadServerDiagnosis:
    def test_crash_error_carries_exit_code_and_stderr(self, write_program):
        program = write_program("prog.c", BREAKPOINT_C)
        client = MIClient(program)
        client._transport._process.kill()
        client._transport._process.wait(timeout=5)
        with pytest.raises(ServerCrashError) as info:
            client.execute("-stack-list-frames")
        assert info.value.exit_code == -9
        assert "exit code" in str(info.value)
        client.close()

    def test_stop_is_idempotent_after_crash(self, write_program):
        program = write_program("prog.c", BREAKPOINT_C)
        client = MIClient(program)
        client._transport._process.kill()
        client._transport._process.wait(timeout=5)
        client.stop()
        client.stop()
        client.close()
        assert not client.alive()

    def test_restart_revives_the_client(self, write_program):
        program = write_program("prog.c", BREAKPOINT_C)
        client = MIClient(program)
        client._transport._process.kill()
        client._transport._process.wait(timeout=5)
        client.restart()
        assert client.alive()
        assert client.restart_count == 1
        assert client.execute("-list-functions")
        client.close()


# ---------------------------------------------------------------------------
# Satellite: the wedged-inferior terminate path
# ---------------------------------------------------------------------------


class TestWedgedInferior:
    WEDGED_PY = """\
import time
time.sleep(60)
"""

    def _wedge(self, write_program):
        """A tracker whose inferior is stuck inside a native sleep.

        The settrace interrupt cannot land while the inferior sits in a C
        call, so the deadline degenerates to ControlTimeout and terminate
        cannot join the thread within its grace.
        """
        tracker = PythonTracker(terminate_grace=0.3)
        tracker.load_program(write_program("wedged.py", self.WEDGED_PY))
        tracker.start()
        with pytest.raises(ControlTimeout):
            tracker.resume(timeout=0.2)
        return tracker

    def test_terminate_marks_wedged_inferior_invalid(self, write_program):
        tracker = self._wedge(write_program)
        with pytest.warns(RuntimeWarning, match="did not exit"):
            tracker.terminate()
        assert tracker.health == "invalid"
        assert tracker.get_stats().wedged_inferiors == 1
        assert tracker.get_stats().control_timeouts == 1
        kinds = [e.kind for e in tracker.drain_supervision_events()]
        assert INFERIOR_WEDGED in kinds

    def test_wedged_warning_carries_the_inferior_stack(self, write_program):
        tracker = self._wedge(write_program)
        with pytest.warns(RuntimeWarning) as caught:
            tracker.terminate()
        text = str(caught[0].message)
        assert "sleep" in text  # where the inferior is actually stuck

    def test_invalid_tracker_rejects_control_calls(self, write_program):
        tracker = self._wedge(write_program)
        with pytest.warns(RuntimeWarning):
            tracker.terminate()
        with pytest.raises(BackendUnavailableError):
            tracker.resume()


# ---------------------------------------------------------------------------
# The stats surface: recovery counters are visible via get_stats()
# ---------------------------------------------------------------------------


class TestStatsSurface:
    def test_supervision_counters_round_trip(self):
        from repro.core.engine import TrackerStats

        stats = TrackerStats(
            interrupts=1,
            control_timeouts=2,
            backend_restarts=3,
            wedged_inferiors=4,
            faults_injected=5,
            faults_recovered=6,
        )
        clone = TrackerStats.from_dict(stats.to_dict())
        assert clone.interrupts == 1
        assert clone.control_timeouts == 2
        assert clone.backend_restarts == 3
        assert clone.wedged_inferiors == 4
        assert clone.faults_injected == 5
        assert clone.faults_recovered == 6

    def test_merged_adds_supervision_counters(self):
        from repro.core.engine import TrackerStats

        merged = TrackerStats(interrupts=1, backend_restarts=1).merged(
            TrackerStats(interrupts=2, faults_injected=1)
        )
        assert merged.interrupts == 3
        assert merged.backend_restarts == 1
        assert merged.faults_injected == 1
