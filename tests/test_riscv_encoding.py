"""Tests for RV32IM binary encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv.assembler import Instruction, TEXT_BASE, assemble
from repro.riscv.encoding import (
    EncodingError,
    decode,
    disassemble_word,
    encode,
    encode_program,
)


def instr(mnemonic, operands, address=TEXT_BASE):
    return Instruction(
        address=address, mnemonic=mnemonic, operands=tuple(operands),
        line=1, text="",
    )


class TestKnownEncodings:
    """Golden words cross-checked against the RISC-V spec examples."""

    def test_addi(self):
        # addi x1, x0, 5 -> imm=5, rs1=0, funct3=0, rd=1, op=0x13
        assert encode(instr("addi", (1, 0, 5))) == 0x00500093

    def test_add(self):
        # add x3, x1, x2
        assert encode(instr("add", (3, 1, 2))) == 0x002081B3

    def test_sub(self):
        assert encode(instr("sub", (3, 1, 2))) == 0x402081B3

    def test_lw_sw(self):
        # lw x5, 8(x2)
        assert encode(instr("lw", (5, 2, 8))) == 0x00812283
        # sw x5, 8(x2)
        assert encode(instr("sw", (5, 2, 8))) == 0x00512423

    def test_ecall_ebreak(self):
        assert encode(instr("ecall", ())) == 0x00000073
        assert encode(instr("ebreak", ())) == 0x00100073

    def test_lui(self):
        assert encode(instr("lui", (5, 0x12345))) == 0x123452B7

    def test_negative_immediate(self):
        # addi x1, x1, -1
        assert encode(instr("addi", (1, 1, -1))) == 0xFFF08093

    def test_jal_forward(self):
        # jal x1, +8
        word = encode(instr("jal", (1, TEXT_BASE + 8)))
        assert decode(word, TEXT_BASE) == ("jal", (1, TEXT_BASE + 8))

    def test_branch_backward(self):
        word = encode(instr("beq", (1, 2, TEXT_BASE - 12)))
        assert decode(word, TEXT_BASE) == ("beq", (1, 2, TEXT_BASE - 12))


class TestRangeChecks:
    def test_immediate_too_large(self):
        with pytest.raises(EncodingError):
            encode(instr("addi", (1, 0, 5000)))

    def test_branch_too_far(self):
        with pytest.raises(EncodingError):
            encode(instr("beq", (1, 2, TEXT_BASE + (1 << 14))))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(instr("beq", (1, 2, TEXT_BASE + 3)))

    def test_bad_shift_amount(self):
        with pytest.raises(EncodingError):
            encode(instr("slli", (1, 1, 40)))

    def test_unknown_word_decodes_as_error(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF)

    def test_disassemble_word_fallback(self):
        assert disassemble_word(0xFFFFFFFF) == ".word 0xffffffff"
        assert disassemble_word(0x00000073) == "ecall"


class TestProgramImage:
    def test_every_assembled_program_encodes(self):
        program = assemble(
            ".data\nv: .word 1\n.text\n"
            ".globl main\n"
            "main:\n"
            "  la t0, v\n"
            "  lw t1, 0(t0)\n"
            "  li t2, 100000\n"
            "loop:\n"
            "  beqz t1, end\n"
            "  addi t1, t1, -1\n"
            "  j loop\n"
            "end:\n"
            "  call helper\n"
            "  li a7, 93\n"
            "  ecall\n"
            "helper:\n"
            "  sw t2, -4(sp)\n"
            "  srai t2, t2, 2\n"
            "  mul t2, t2, t1\n"
            "  ret\n"
        )
        image = encode_program(program)
        assert len(image) == 4 * len(program.instructions)
        # Decoding the image reproduces each instruction exactly.
        for index, instruction in enumerate(program.instructions):
            word = int.from_bytes(image[4 * index : 4 * index + 4], "little")
            mnemonic, operands = decode(word, instruction.address)
            assert mnemonic == instruction.mnemonic
            assert operands == instruction.operands


# ---------------------------------------------------------------------------
# Property-based round trips over randomly generated instructions
# ---------------------------------------------------------------------------

registers = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


@st.composite
def encodable_instructions(draw):
    kind = draw(
        st.sampled_from(["r", "i", "shift", "load", "store", "branch",
                         "jal", "jalr", "upper", "system"])
    )
    if kind == "r":
        name = draw(st.sampled_from(sorted(
            "add sub and or xor sll srl sra slt sltu mul div rem".split()
        )))
        return instr(name, (draw(registers), draw(registers), draw(registers)))
    if kind == "i":
        name = draw(st.sampled_from(sorted(
            "addi andi ori xori slti sltiu".split()
        )))
        return instr(name, (draw(registers), draw(registers), draw(imm12)))
    if kind == "shift":
        name = draw(st.sampled_from(["slli", "srli", "srai"]))
        shamt = draw(st.integers(min_value=0, max_value=31))
        return instr(name, (draw(registers), draw(registers), shamt))
    if kind == "load":
        name = draw(st.sampled_from(sorted("lw lh lb lhu lbu".split())))
        return instr(name, (draw(registers), draw(registers), draw(imm12)))
    if kind == "store":
        name = draw(st.sampled_from(["sw", "sh", "sb"]))
        return instr(name, (draw(registers), draw(registers), draw(imm12)))
    if kind == "branch":
        name = draw(st.sampled_from(sorted("beq bne blt bge bltu bgeu".split())))
        offset = draw(st.integers(min_value=-2048, max_value=2047)) * 2
        return instr(name, (draw(registers), draw(registers), TEXT_BASE + offset))
    if kind == "jal":
        offset = draw(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)) * 2
        return instr("jal", (draw(registers), TEXT_BASE + offset))
    if kind == "jalr":
        return instr("jalr", (draw(registers), draw(registers), draw(imm12)))
    if kind == "upper":
        name = draw(st.sampled_from(["lui", "auipc"]))
        return instr(name, (draw(registers), draw(st.integers(0, (1 << 20) - 1))))
    return instr(draw(st.sampled_from(["ecall", "ebreak"])), ())


@given(encodable_instructions())
@settings(max_examples=300, deadline=None)
def test_encode_decode_round_trip(instruction):
    word = encode(instruction)
    assert 0 <= word < 1 << 32
    mnemonic, operands = decode(word, instruction.address)
    assert mnemonic == instruction.mnemonic
    assert operands == instruction.operands
