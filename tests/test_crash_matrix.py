"""Inferior-death parity across backends.

Whatever kills the inferior — an unhandled error, an explicit exit, or a
supervisor interrupt that the user then abandons — the tracker must land
in the *same* terminal state machine on every backend: ``get_exit_code()``
non-None and stable, pause reason ``EXIT``, further control calls a typed
``TrackerError`` (never a hang or a crash of the tool process), terminate
idempotent. This matrix runs the same scenarios through the in-process
PythonTracker and the subprocess-backed MiniC MI server and asserts the
terminal contract pairwise.
"""

import pytest

from repro.core.errors import TrackerError
from repro.core.pause import PauseReasonType
from repro.gdbtracker.tracker import GDBTracker
from repro.pytracker.monitoring import (
    HAVE_MONITORING,
    SKIP_REASON,
    MonitoringTracker,
)
from repro.pytracker.tracker import PythonTracker
from repro.subproc.tracker import SubprocPythonTracker
from repro.testing.faults import NEVER_PAUSING_C, NEVER_PAUSING_PY

requires_monitoring = pytest.mark.skipif(
    not HAVE_MONITORING, reason=SKIP_REASON
)

PY_CRASH = """\
x = 1
raise ValueError("boom")
"""

C_CRASH = """\
int main(void) {
    int *p = (int *) 7;
    return *p;
}
"""

PY_EXIT_7 = """\
import sys
x = 1
sys.exit(7)
"""

C_EXIT_7 = """\
int main(void) {
    int x = 1;
    exit(7);
    return 0;
}
"""

PY_CLEAN = "x = 1\n"

C_CLEAN = """\
int main(void) {
    int x = 1;
    return 0;
}
"""


def run_to_exit(tracker):
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.resume()
    return tracker


def assert_terminal_contract(tracker):
    """The invariants every dead inferior must satisfy, any backend."""
    code = tracker.get_exit_code()
    assert code is not None
    assert tracker.pause_reason.type is PauseReasonType.EXIT
    # the exit code is stable across repeated queries
    assert tracker.get_exit_code() == code
    # further control calls fail with a typed error, promptly
    with pytest.raises(TrackerError):
        tracker.resume()
    with pytest.raises(TrackerError):
        tracker.step()
    # terminate is idempotent on a dead inferior
    tracker.terminate()
    tracker.terminate()
    return code


@pytest.fixture
def make_python(write_program):
    def build(source):
        tracker = PythonTracker()
        tracker.load_program(write_program("prog.py", source))
        return tracker

    return build


@pytest.fixture
def make_gdb(write_program):
    def build(source):
        tracker = GDBTracker()
        tracker.load_program(write_program("prog.c", source))
        return tracker

    return build


@pytest.fixture
def make_mon(write_program):
    def build(source):
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", source))
        return tracker

    return build


@pytest.fixture
def make_subproc(write_program):
    def build(source):
        tracker = SubprocPythonTracker()
        tracker.load_program(write_program("prog.py", source))
        return tracker

    return build


class TestExitCodeParity:
    def test_clean_exit_is_zero_on_both(self, make_python, make_gdb):
        py_code = assert_terminal_contract(run_to_exit(make_python(PY_CLEAN)))
        c_code = assert_terminal_contract(run_to_exit(make_gdb(C_CLEAN)))
        assert py_code == c_code == 0

    def test_explicit_exit_code_crosses_both_backends(
        self, make_python, make_gdb
    ):
        py_code = assert_terminal_contract(run_to_exit(make_python(PY_EXIT_7)))
        c_code = assert_terminal_contract(run_to_exit(make_gdb(C_EXIT_7)))
        assert py_code == c_code == 7

    @pytest.mark.parametrize(
        "source,expected", [(PY_CLEAN, 0), (PY_EXIT_7, 7)]
    )
    def test_subproc_matches_inprocess_exit_codes(
        self, make_subproc, source, expected
    ):
        code = assert_terminal_contract(run_to_exit(make_subproc(source)))
        assert code == expected

    @requires_monitoring
    @pytest.mark.parametrize(
        "source,expected", [(PY_CLEAN, 0), (PY_EXIT_7, 7)]
    )
    def test_monitoring_matches_settrace_exit_codes(
        self, make_mon, source, expected
    ):
        code = assert_terminal_contract(run_to_exit(make_mon(source)))
        assert code == expected


class TestCrashParity:
    def test_unhandled_error_is_terminal_on_both(self, make_python, make_gdb):
        # The conventional codes differ by substrate (Python interpreter
        # exits 1, a wild C pointer is the SIGSEGV analog 139), but the
        # terminal state machine must be identical.
        py_code = assert_terminal_contract(run_to_exit(make_python(PY_CRASH)))
        assert py_code == 1
        c_code = assert_terminal_contract(run_to_exit(make_gdb(C_CRASH)))
        assert c_code == 139

    def test_python_crash_surfaces_the_exception(self, make_python):
        tracker = run_to_exit(make_python(PY_CRASH))
        error = tracker.get_inferior_exception()
        assert isinstance(error, ValueError)
        tracker.terminate()

    def test_c_crash_surfaces_the_fault(self, make_gdb):
        tracker = run_to_exit(make_gdb(C_CRASH))
        assert tracker.exit_error  # the MemoryFault description crossed MI
        tracker.terminate()

    def test_subproc_crash_is_terminal_and_surfaces_the_error(
        self, make_subproc
    ):
        tracker = run_to_exit(make_subproc(PY_CRASH))
        assert tracker.exit_error  # "ValueError: boom" crossed the pipe
        assert "ValueError" in tracker.exit_error
        assert assert_terminal_contract(tracker) == 1

    @requires_monitoring
    def test_monitoring_crash_is_terminal_and_surfaces_the_exception(
        self, make_mon
    ):
        tracker = run_to_exit(make_mon(PY_CRASH))
        error = tracker.get_inferior_exception()
        assert isinstance(error, ValueError)
        assert assert_terminal_contract(tracker) == 1

    def test_subproc_hard_kill_is_the_inferiors_death(self, make_subproc):
        """os._exit skips the child's server entirely — the tracker must
        report a terminal exited state with the process exit code, the
        scenario only process isolation survives at all."""
        tracker = run_to_exit(
            make_subproc("import os\nx = 1\nos._exit(9)\n")
        )
        assert assert_terminal_contract(tracker) == 9
        kinds = [e.kind for e in tracker.drain_supervision_events()]
        assert "inferior-process-died" in kinds


PY_WORKER_RAISES = """\
import threading

def angry():
    raise ValueError("worker boom")

t = threading.Thread(name="angry", target=angry)
t.start()
t.join()
print("main survived")
"""

PY_SHORT_LIVED_WORKER = """\
import threading
import time

def blink():
    pass

def waiter():
    time.sleep(0.05)
    checkpoint = 1
    return checkpoint

short = threading.Thread(name="blink", target=blink)
long = threading.Thread(name="waiter", target=waiter)
short.start()
long.start()
short.join()
long.join()
print("joined")
"""


class TestThreadDeathParity:
    """Worker-thread death is NOT inferior death — Python semantics.

    A worker's unhandled exception kills only that thread; the main
    thread joins a dead sibling and carries on. The tracker must agree:
    exit code 0, the worker's exception collected per-thread, and a
    pause that survives a sibling dying underneath it.
    """

    @pytest.mark.parametrize(
        "make",
        [
            "make_python",
            pytest.param("make_mon", marks=requires_monitoring),
        ],
    )
    def test_worker_exception_collected_not_terminal(self, make, request):
        tracker = run_to_exit(request.getfixturevalue(make)(PY_WORKER_RAISES))
        errors = tracker.get_thread_exceptions()
        assert set(errors) == {1}
        assert isinstance(errors[1], ValueError)
        # The *inferior* did not crash: main joined the dead worker.
        assert tracker.get_inferior_exception() is None
        assert assert_terminal_contract(tracker) == 0

    @pytest.mark.parametrize(
        "make",
        [
            "make_python",
            pytest.param("make_mon", marks=requires_monitoring),
        ],
    )
    def test_sibling_dying_mid_pause_does_not_wedge(self, make, request):
        """Pause one worker while another finishes and dies; the paused
        session must resume normally and reach the terminal contract."""
        tracker = request.getfixturevalue(make)(PY_SHORT_LIVED_WORKER)
        tracker.break_before_func("waiter")
        tracker.start()
        tracker.resume(timeout=30.0)
        assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        # Give the short-lived sibling ample time to exit while we hold
        # the pause; its death must not corrupt the all-stop state.
        import time as _time

        _time.sleep(0.3)
        states = {info.name: info.state for info in tracker.get_threads()}
        # Only the breakpointed worker owns the pause; the sibling
        # either finished, parked at the barrier, or never traced.
        assert states.get("blink") != "paused"
        paused = [name for name, state in states.items() if state == "paused"]
        assert paused == ["waiter"]
        while tracker.get_exit_code() is None:
            tracker.resume(timeout=30.0)
        assert assert_terminal_contract(tracker) == 0


class TestInterruptParity:
    """Interrupt-from-timeout is a *pause*, not a death — on both."""

    @pytest.mark.parametrize(
        "backend,name,source",
        [
            ("python", "spin.py", NEVER_PAUSING_PY),
            ("gdb", "spin.c", NEVER_PAUSING_C),
            ("python-subproc", "spin.py", NEVER_PAUSING_PY),
            pytest.param(
                "python-mon",
                "spin.py",
                NEVER_PAUSING_PY,
                marks=requires_monitoring,
            ),
        ],
    )
    def test_interrupted_inferior_is_paused_not_terminal(
        self, write_program, backend, name, source
    ):
        tracker = {
            "python": PythonTracker,
            "gdb": GDBTracker,
            "python-subproc": SubprocPythonTracker,
            "python-mon": MonitoringTracker,
        }[backend]()
        tracker.load_program(write_program(name, source))
        tracker.start()
        try:
            tracker.resume(timeout=0.3)
            assert tracker.get_exit_code() is None
            assert tracker.pause_reason.type is PauseReasonType.INTERRUPT
            tracker.step()  # the session continues normally
            assert tracker.get_exit_code() is None
        finally:
            tracker.terminate()
