"""Asyncio-task inspection (:meth:`Tracker.get_tasks`).

A paused asyncio inferior exposes its task set: names, states, and the
await chain from each task's outermost coroutine to its suspension
point. The tool's own event loops (if any) are filtered out by keeping
only tasks whose coroutine stack touches the inferior program.
"""

import pytest

from repro.core.pause import PauseReasonType
from repro.pytracker.tracker import PythonTracker

ASYNC_PROGRAM = """\
import asyncio

async def tick(n):
    await asyncio.sleep(0)
    marker = n
    return marker

async def main():
    tasks = [
        asyncio.create_task(tick(i), name="tick-%d" % i) for i in range(2)
    ]
    results = await asyncio.gather(*tasks)
    print("sum", sum(results))

asyncio.run(main())
"""


@pytest.fixture
def paused_in_task(write_program):
    tracker = PythonTracker()
    tracker.load_program(write_program("aio.py", ASYNC_PROGRAM))
    tracker.break_before_line(5)  # marker = n, inside a running task
    tracker.start()
    tracker.resume(timeout=30.0)
    assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
    yield tracker
    tracker.terminate()


class TestGetTasks:
    def test_inferior_tasks_enumerated(self, paused_in_task):
        tasks = {info.name: info for info in paused_in_task.get_tasks()}
        assert {"tick-0", "tick-1"} <= set(tasks)
        for info in tasks.values():
            assert info.state in ("pending", "done", "cancelled")

    def test_await_chain_names_the_coroutines(self, paused_in_task):
        tasks = {info.name: info for info in paused_in_task.get_tasks()}
        tick = tasks["tick-0"]
        assert tick.coroutine == "tick"
        assert tick.awaiting and tick.awaiting[0] == "tick"
        main = next(
            (info for info in tasks.values() if info.coroutine == "main"),
            None,
        )
        assert main is not None  # the gathering task is an inferior task

    def test_run_continues_to_completion(self, paused_in_task, capsys):
        while paused_in_task.get_exit_code() is None:
            paused_in_task.resume(timeout=30.0)
        assert paused_in_task.get_exit_code() == 0

    def test_no_tasks_outside_async_code(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", "a = 1\nb = 2\n"))
        tracker.start()
        assert tracker.get_tasks() == []
        tracker.terminate()
