"""Tests for the Python tracker's inspection interface and snapshotter."""

import pytest

from repro.core.state import AbstractType, Location
from repro.pytracker.introspect import Snapshotter, build_variable
from repro.pytracker.tracker import PythonTracker

NESTED = """\
class Node:
    def __init__(self, value):
        self.value = value
        self.next = None

def build():
    head = Node(1)
    head.next = Node(2)
    shared = [10, 20]
    pair = (shared, shared)
    table = {"a": 1, 2: "b"}
    marker = None
    return head

result = build()
done = 1
"""


@pytest.fixture
def paused(write_program):
    """A tracker paused at the `return head` line inside build()."""
    tracker = PythonTracker()
    tracker.load_program(write_program("p.py", NESTED))
    tracker.break_before_line(13)
    tracker.start()
    tracker.resume()
    yield tracker
    tracker.terminate()


class TestFrames:
    def test_frame_chain_and_depths(self, paused):
        frame = paused.get_current_frame()
        assert frame.name == "build"
        assert frame.depth == 1
        assert frame.parent.name == "<module>"
        assert frame.parent.depth == 0
        assert frame.parent.parent is None

    def test_get_frames_lists_innermost_first(self, paused):
        names = [frame.name for frame in paused.get_frames()]
        assert names == ["build", "<module>"]

    def test_position(self, paused):
        filename, line = paused.get_position()
        assert filename.endswith("p.py")
        assert line == 13

    def test_source_lines(self, paused):
        lines = paused.get_source_lines()
        assert lines[0] == "class Node:"


class TestVariableModel:
    def test_every_variable_is_a_ref_into_the_heap(self, paused):
        frame = paused.get_current_frame()
        for variable in frame.variables.values():
            assert variable.value.abstract_type is AbstractType.REF
            assert variable.value.location is Location.STACK

    def test_instance_becomes_struct(self, paused):
        head = paused.get_current_frame().variables["head"].value.content
        assert head.abstract_type is AbstractType.STRUCT
        assert head.language_type == "Node"
        assert head.content["value"].content == 1
        assert head.content["next"].content["value"].content == 2

    def test_none_abstract_type(self, paused):
        marker = paused.get_current_frame().variables["marker"].value.content
        assert marker.abstract_type is AbstractType.NONE

    def test_list_and_tuple_language_types(self, paused):
        variables = paused.get_current_frame().variables
        shared = variables["shared"].value.content
        pair = variables["pair"].value.content
        assert shared.abstract_type is AbstractType.LIST
        assert shared.language_type == "list"
        assert pair.language_type == "tuple"

    def test_dict_keys_are_values(self, paused):
        table = paused.get_current_frame().variables["table"].value.content
        assert table.abstract_type is AbstractType.DICT
        rendered = {k.render(): v.render() for k, v in table.content.items()}
        assert rendered == {"'a'": "1", "2": "'b'"}

    def test_sharing_is_preserved_within_a_pause(self, paused):
        variables = paused.get_current_frame().variables
        pair = variables["pair"].value.content
        first, second = pair.content
        assert first is second  # same Value instance: aliasing is visible
        assert first is variables["shared"].value.content

    def test_addresses_come_from_id(self, paused):
        shared = paused.get_current_frame().variables["shared"].value.content
        assert isinstance(shared.address, int)
        assert shared.address > 0

    def test_argument_scope(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(
            write_program("p.py", "def f(a):\n    b = a\n    return b\nf(1)\n")
        )
        tracker.break_before_line(3)
        tracker.start()
        tracker.resume()
        variables = tracker.get_current_frame().variables
        assert variables["a"].scope == "argument"
        assert variables["b"].scope == "local"
        tracker.terminate()

    def test_globals_hide_plumbing_and_modules(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(
            write_program("p.py", "import os\nvalue = 5\npath = os.sep\n")
        )
        tracker.start()
        tracker.resume()  # run to completion? watch: no control points ->
        # resume runs to the end, so break first:
        tracker.terminate()
        tracker = PythonTracker()
        tracker.load_program(
            write_program("p2.py", "import os\nvalue = 5\npath = os.sep\n")
        )
        tracker.break_before_line(3)
        tracker.start()
        tracker.resume()
        names = set(tracker.get_global_variables())
        assert "value" in names
        assert "os" not in names  # modules are hidden
        assert "__name__" not in names
        tracker.terminate()

    def test_raw_object_extension(self, paused):
        shared = paused.get_current_frame().variables["shared"]
        assert shared.raw_object == [10, 20]  # the live Python object


class TestSnapshotter:
    def test_cycle_in_list(self):
        cyclic = []
        cyclic.append(cyclic)
        value = Snapshotter().snapshot(cyclic)
        assert value.abstract_type is AbstractType.LIST
        assert value.content[0] is value  # the cycle is represented

    def test_shared_object_memoized(self):
        shared = [1]
        snapshotter = Snapshotter()
        container = snapshotter.snapshot([shared, shared])
        assert container.content[0] is container.content[1]

    def test_bool_is_primitive_not_int_subclass_surprise(self):
        value = Snapshotter().snapshot(True)
        assert value.abstract_type is AbstractType.PRIMITIVE
        assert value.language_type == "bool"

    def test_set_renders_as_list(self):
        value = Snapshotter().snapshot({3, 1, 2})
        assert value.abstract_type is AbstractType.LIST
        assert value.language_type == "set"
        assert sorted(v.content for v in value.content) == [1, 2, 3]

    def test_function_value(self):
        def sample():
            pass

        value = Snapshotter().snapshot(sample)
        assert value.abstract_type is AbstractType.FUNCTION
        assert "sample" in value.content

    def test_class_is_function_like(self):
        value = Snapshotter().snapshot(int)
        assert value.abstract_type is AbstractType.FUNCTION

    def test_depth_cap_summarizes(self):
        deep = [[[[[1]]]]]
        value = Snapshotter(max_depth=2).snapshot(deep)
        # Depths 0..2 are real LISTs; depth 3 is replaced by a summary.
        innermost = value.content[0].content[0].content[0]
        assert innermost.abstract_type is AbstractType.PRIMITIVE
        assert isinstance(innermost.content, str)  # a summary, not the list

    def test_slots_instance(self):
        class Slotted:
            __slots__ = ("x",)

        instance = Slotted()
        instance.x = 9
        value = Snapshotter().snapshot(instance)
        assert value.abstract_type is AbstractType.STRUCT
        assert value.content["x"].content == 9

    def test_complex_encoded_as_primitive_repr(self):
        value = Snapshotter().snapshot(3 + 4j)
        assert value.abstract_type is AbstractType.PRIMITIVE
        assert value.content == "(3+4j)"

    def test_build_variable_wraps_in_ref(self):
        variable = build_variable("v", [1], "local", Snapshotter())
        assert variable.value.abstract_type is AbstractType.REF
        assert variable.value.content.abstract_type is AbstractType.LIST
        assert variable.raw_object == [1]
