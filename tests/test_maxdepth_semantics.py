"""Cross-tracker maxdepth semantics.

The paper's ``maxdepth`` extension must filter identically in every
backend: a control point fires only when the frame depth at the event is
at most ``maxdepth`` (the program entry frame is depth 0). This suite runs
the *same* recursive program — written once in Python and once in mini-C,
with the watched assignment on the same line number — under
``PythonTracker`` and under the MiniC interpreter (via ``GDBTracker`` and
the MI server), and asserts both produce the same pause sequence for line
breakpoints, function breakpoints, tracked functions, and watchpoints.
"""

import re

import pytest

from repro.core.pause import PauseReasonType

# rec(3) runs at depths 1..4 (module/main is depth 0); the x = n
# assignment sits on line 2 in both programs.
PY_PROGRAM = """\
def rec(n):
    x = n
    if n == 0:
        return 0
    return rec(n - 1)

rec(3)
"""

C_PROGRAM = """\
int rec(int n) {
    int x = n;
    if (n == 0) {
        return 0;
    }
    return rec(n - 1);
}

int main(void) {
    rec(3);
    return 0;
}
"""


def _drive(tracker, path, install):
    """Run to completion; collect (reason type, function, old, new) pauses."""
    tracker.load_program(path)
    install(tracker)
    tracker.start()
    pauses = []
    for _ in range(100):  # bounded: the programs are tiny
        tracker.resume()
        reason = tracker.pause_reason
        if reason.type is PauseReasonType.EXIT:
            break
        pauses.append(
            (
                reason.type.value,
                reason.function,
                reason.old_value,
                reason.new_value,
            )
        )
    else:
        pytest.fail("inferior did not terminate")
    tracker.terminate()
    return pauses


def _run_python(tmp_path, install):
    from repro.pytracker import PythonTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _drive(PythonTracker(capture_output=True), str(path), install)


def _run_minic(tmp_path, install):
    from repro.gdbtracker import GDBTracker

    path = tmp_path / "prog.c"
    path.write_text(C_PROGRAM)
    return _drive(GDBTracker(), str(path), install)


def _run_subproc(tmp_path, install):
    from repro.subproc import SubprocPythonTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _drive(SubprocPythonTracker(), str(path), install)


def _run_mon(tmp_path, install):
    from repro.pytracker import MonitoringTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _drive(MonitoringTracker(capture_output=True), str(path), install)


INSTALLERS = {
    "line-bp-capped": lambda t: t.break_before_line(2, maxdepth=2),
    "line-bp-unlimited": lambda t: t.break_before_line(2),
    "line-bp-depth-zero": lambda t: t.break_before_line(2, maxdepth=0),
    "function-bp-capped": lambda t: t.break_before_func("rec", maxdepth=2),
    "function-bp-unlimited": lambda t: t.break_before_func("rec"),
    "tracked-capped": lambda t: t.track_function("rec", maxdepth=2),
    "watch-capped": lambda t: t.watch("rec:x", maxdepth=2),
    "watch-unlimited": lambda t: t.watch("rec:x"),
}


def _normalize_value(value):
    """Backend renderings -> comparable ints.

    The Python tracker reports ``repr`` values; the MiniC server reports
    byte-level little-endian hex (its watchpoints are memory watches).
    """
    if value is None:
        return None
    if re.fullmatch(r"[0-9a-fA-F]{8}", value):
        return int.from_bytes(bytes.fromhex(value), "little")
    try:
        return int(value)
    except ValueError:
        return value


def _comparable(pauses):
    """Strip backend-specific detail before comparing pause sequences.

    Kept: the pause kind, its order, and the watch's *new* value. Dropped:
    the function name (MiniC attaches it to line-breakpoint hits, Python
    does not) and the watch's *old* value (entering a new ``rec`` frame
    makes Python's ``rec:x`` momentarily unbound, resetting its snapshot
    to None, while MiniC's memory watch still sees the outer frame — a
    seed divergence this suite inherits rather than hides elsewhere).
    """
    return [
        (kind, _normalize_value(new)) for kind, _function, _old, new in pauses
    ]


@pytest.mark.parametrize("kind", sorted(INSTALLERS))
def test_same_pauses_across_trackers(kind, tmp_path):
    install = INSTALLERS[kind]
    python_pauses = _run_python(tmp_path, install)
    minic_pauses = _run_minic(tmp_path, install)
    assert _comparable(python_pauses) == _comparable(minic_pauses)


@pytest.mark.parametrize("kind", sorted(INSTALLERS))
def test_monitoring_matches_settrace_exactly(kind, tmp_path):
    """The sys.monitoring backend shares everything above the
    instrumentation layer with the settrace one, so it must agree on the
    full pause tuples — function names and watch old/new values included."""
    from repro.pytracker.monitoring import HAVE_MONITORING, SKIP_REASON

    if not HAVE_MONITORING:
        pytest.skip(SKIP_REASON)
    install = INSTALLERS[kind]
    python_pauses = _run_python(tmp_path, install)
    mon_pauses = _run_mon(tmp_path, install)
    assert python_pauses == mon_pauses


@pytest.mark.parametrize("kind", sorted(INSTALLERS))
def test_subproc_matches_inprocess_exactly(kind, tmp_path):
    """The out-of-process Python backend hosts the *same* tracker, so it
    must agree with the in-process one on the full pause tuples — function
    names and watch old/new values included, not just the projection the
    Python/MiniC comparison tolerates."""
    install = INSTALLERS[kind]
    python_pauses = _run_python(tmp_path, install)
    subproc_pauses = _run_subproc(tmp_path, install)
    assert python_pauses == subproc_pauses


class TestExpectedFiltering:
    """Pin the exact sequences, not just cross-backend agreement."""

    def test_function_breakpoint_capped(self, tmp_path):
        pauses = _run_python(
            tmp_path, lambda t: t.break_before_func("rec", maxdepth=2)
        )
        assert pauses == [
            ("breakpoint", "rec", None, None),
            ("breakpoint", "rec", None, None),
        ]

    def test_function_breakpoint_unlimited(self, tmp_path):
        pauses = _run_python(tmp_path, lambda t: t.break_before_func("rec"))
        assert len(pauses) == 4  # depths 1..4

    def test_line_breakpoint_capped(self, tmp_path):
        pauses = _run_python(
            tmp_path, lambda t: t.break_before_line(2, maxdepth=2)
        )
        assert [p[0] for p in pauses] == ["breakpoint", "breakpoint"]

    def test_line_breakpoint_depth_zero_never_fires(self, tmp_path):
        # line 2 only executes inside rec (depth >= 1)
        assert (
            _run_python(tmp_path, lambda t: t.break_before_line(2, maxdepth=0))
            == []
        )

    def test_tracked_function_capped(self, tmp_path):
        pauses = _run_python(
            tmp_path, lambda t: t.track_function("rec", maxdepth=2)
        )
        assert [p[0] for p in pauses] == ["call", "call", "return", "return"]

    def test_watch_capped(self, tmp_path):
        pauses = _run_python(tmp_path, lambda t: t.watch("rec:x", maxdepth=2))
        # The old value is None both times: entering rec(2) makes the
        # innermost rec:x momentarily unbound, resetting the snapshot
        # (matching the seed trackers' change-detection semantics).
        assert [(p[0], p[2], p[3]) for p in pauses] == [
            ("watch", None, "3"),
            ("watch", None, "2"),
        ]
