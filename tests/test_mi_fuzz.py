"""Robustness fuzzing of the debug server.

The server sits on the other end of a pipe from the tracker; whatever
arrives, it must answer with a well-formed record and keep serving — a
crashed server kills the whole session. These property tests throw random
bytes, random commands, and random *valid-shaped* command sequences at a
live server and assert the contract: every input line yields parseable
records and never an unhandled exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ControlTimeout, ProtocolError, ServerCrashError
from repro.core.supervision import Deadline
from repro.mi.client import MIClient
from repro.mi.protocol import parse_record
from repro.mi.server import DebugServer
from repro.testing.faults import ScriptedTransport

C_PROGRAM = """\
int helper(int n) {
    return n + 1;
}

int main(void) {
    int total = 0;
    for (int i = 0; i < 3; i++) {
        total = helper(total);
    }
    return total;
}
"""

COMMANDS = [
    "-exec-run",
    "-exec-continue",
    "-exec-step",
    "-exec-next",
    "-exec-finish",
    "-break-insert",
    "-break-watch",
    "-track-function",
    "-break-delete",
    "-break-disable",
    "-break-enable",
    "-stack-list-frames",
    "-data-list-globals",
    "-data-list-register-values",
    "-data-read-memory",
    "-data-disassemble",
    "-data-evaluate-expression",
    "-inferior-position",
    "-list-functions",
    "-heap-blocks",
    "-file-exec-and-symbols",
]

ARGUMENTS = ["", " main", " helper", " 7", " total", " all", " *0x10000",
             " 0x1000 4", " --maxdepth 2", " ghost", " -1", " 99"]


def make_server(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(C_PROGRAM, encoding="utf-8")
    return DebugServer(str(path))


@given(
    st.lists(
        st.tuples(st.sampled_from(COMMANDS), st.sampled_from(ARGUMENTS)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_random_command_sequences_never_crash(tmp_path_factory, sequence):
    server = make_server(tmp_path_factory.mktemp("fuzz"))
    for command, argument in sequence:
        for line in server.handle(command + argument):
            record = parse_record(line)  # every reply line parses
            assert record.kind in ("done", "error", "running", "stopped",
                                   "stream", "notify")


@given(st.text(max_size=60))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_yields_error_records(tmp_path_factory, junk):
    server = make_server(tmp_path_factory.mktemp("junk"))
    for line in server.handle(junk):
        record = parse_record(line)
        assert record.kind in ("done", "error", "running", "stopped",
                               "stream", "notify")


def test_inspection_commands_after_crash_are_errors(tmp_path):
    path = tmp_path / "crash.c"
    path.write_text(
        "int main(void) { int *p = (int*)7; return *p; }", encoding="utf-8"
    )
    server = DebugServer(str(path))
    server.handle("-exec-run")
    server.handle("-exec-continue")
    for command in ("-stack-list-frames", "-data-list-globals",
                    "-exec-step", "-exec-continue"):
        record = parse_record(server.handle(command)[0])
        assert record.kind == "error"


# ---------------------------------------------------------------------------
# The client against scripted (malicious) server output
# ---------------------------------------------------------------------------

GREETING = '^done,{"loaded":"prog.c"}'


def scripted_client(lines, on_empty="eof"):
    """An MIClient wired to a transport replaying exactly ``lines``."""
    transport = ScriptedTransport([GREETING] + list(lines), on_empty=on_empty)
    client = MIClient("prog.c", transport_factory=lambda: transport)
    return client, transport


class TestTruncatedRecords:
    def test_truncated_done_payload_is_a_typed_error(self):
        client, _ = scripted_client(['^done,{"x": '])
        with pytest.raises(ProtocolError):
            client.execute("-stack-list-frames")

    def test_truncated_stopped_payload_is_a_typed_error(self):
        client, _ = scripted_client(["^running", '*stopped,{"reason"'])
        with pytest.raises(ProtocolError):
            client.run_control("-exec-continue")

    def test_unknown_record_marker_is_a_typed_error(self):
        client, _ = scripted_client(["!!! not MI at all"])
        with pytest.raises(ProtocolError):
            client.execute("-stack-list-frames")


class TestMidRecordEOF:
    def test_eof_instead_of_result_is_a_crash_error(self):
        client, _ = scripted_client([])
        with pytest.raises(ServerCrashError):
            client.execute("-stack-list-frames")

    def test_eof_while_running_is_a_crash_error(self):
        client, _ = scripted_client(["^running"])
        with pytest.raises(ServerCrashError):
            client.run_control("-exec-continue")

    def test_crash_error_reports_the_context(self):
        client, _ = scripted_client([])
        with pytest.raises(ServerCrashError, match="output pipe closed"):
            client.execute("-stack-list-frames")


class TestInterleavedRecords:
    def test_async_lines_before_the_result_are_absorbed(self):
        client, _ = scripted_client(
            [
                '~"hello\\n"',
                '=heap-alloc,{"address":16,"size":8}',
                '^done,{"ok":1}',
            ]
        )
        assert client.execute("-stack-list-frames") == {"ok": 1}
        assert client.console == ["hello\n"]
        assert [record.notify_name for record in client.notifications] == [
            "heap-alloc"
        ]

    def test_async_lines_while_running_are_absorbed(self):
        client, _ = scripted_client(
            [
                "^running",
                '~"output\\n"',
                '=heap-free,{"address":16}',
                '*stopped,{"reason":"breakpoint-hit","line":3}',
            ]
        )
        payload = client.run_control("-exec-continue")
        assert payload["line"] == 3
        assert client.console == ["output\n"]

    def test_stale_interrupt_ack_mid_run_is_tolerated(self):
        client, _ = scripted_client(
            [
                "^running",
                "^done",
                '*stopped,{"reason":"breakpoint-hit","line":3}',
            ]
        )
        assert client.run_control("-exec-continue")["line"] == 3


class TestSilentServerNeverHangs:
    def test_silent_result_read_times_out(self):
        client, _ = scripted_client([], on_empty="silence")
        with pytest.raises(ControlTimeout):
            client.execute("-stack-list-frames", deadline=Deadline(0.15))

    def test_silent_run_interrupts_then_times_out(self):
        client, transport = scripted_client(["^running"], on_empty="silence")
        with pytest.raises(ControlTimeout):
            client.run_control("-exec-continue", deadline=Deadline(0.15))
        assert transport.interrupts == 1  # the interrupt was attempted


@given(st.text(max_size=80))
@settings(max_examples=150, deadline=None)
def test_parse_record_raises_only_typed_errors(junk):
    try:
        parse_record(junk)
    except ProtocolError:
        pass  # the one allowed failure mode


# ---------------------------------------------------------------------------
# Session-id framing (the multiplexed-session wire format)
# ---------------------------------------------------------------------------

SESSION_IDS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.", min_size=1, max_size=8
)


@given(
    session=st.one_of(st.none(), SESSION_IDS),
    name=st.sampled_from(COMMANDS),
    argument=st.sampled_from(ARGUMENTS),
)
@settings(max_examples=100, deadline=None)
def test_command_session_id_round_trips(session, name, argument):
    from repro.mi import protocol

    line = protocol.format_command(
        name, argument.split(), session=session
    )
    command = protocol.parse_command(line)
    assert command.session == session
    assert command.name == name


@given(
    session=st.one_of(st.none(), SESSION_IDS),
    record=st.sampled_from(
        [
            "^done",
            '^done,{"n":1}',
            '^error,msg="boom"',
            "^running",
            '*stopped,{"reason":"exited","exitcode":0}',
            '~"hello\\n"',
            '=heap-alloc,{"address":16}',
        ]
    ),
)
@settings(max_examples=100, deadline=None)
def test_record_session_tag_round_trips(session, record):
    from repro.mi import protocol

    untagged = parse_record(record)
    tagged_line = (
        record if session is None else protocol.tag_record(record, session)
    )
    tagged = parse_record(tagged_line)
    assert tagged.session == session
    assert tagged.kind == untagged.kind
    assert tagged.payload == untagged.payload


@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), SESSION_IDS),
            st.sampled_from(COMMANDS),
            st.sampled_from(ARGUMENTS),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_mixed_session_and_legacy_commands_echo_their_framing(
    tmp_path_factory, sequence
):
    """Every reply record carries exactly the command's session id."""
    from repro.mi import protocol

    server = make_server(tmp_path_factory.mktemp("sessions"))
    for session, name, argument in sequence:
        line = protocol.format_command(
            name, argument.split(), session=session
        )
        for reply in server.handle(line):
            record = parse_record(reply)
            assert record.session == session
            assert record.kind in ("done", "error", "running", "stopped",
                                   "stream", "notify")


def test_legacy_single_session_wire_format_is_unchanged(tmp_path):
    """An id-less command produces byte-identical records to the seed."""
    server = make_server(tmp_path)
    plain = server.handle("-break-insert main")
    assert plain == ['^done,{"number":1}']
    tagged = server.handle("s1-break-insert helper")
    assert tagged == ['s1^done,{"number":2}']
