"""Robustness fuzzing of the debug server.

The server sits on the other end of a pipe from the tracker; whatever
arrives, it must answer with a well-formed record and keep serving — a
crashed server kills the whole session. These property tests throw random
bytes, random commands, and random *valid-shaped* command sequences at a
live server and assert the contract: every input line yields parseable
records and never an unhandled exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mi.protocol import parse_record
from repro.mi.server import DebugServer

C_PROGRAM = """\
int helper(int n) {
    return n + 1;
}

int main(void) {
    int total = 0;
    for (int i = 0; i < 3; i++) {
        total = helper(total);
    }
    return total;
}
"""

COMMANDS = [
    "-exec-run",
    "-exec-continue",
    "-exec-step",
    "-exec-next",
    "-exec-finish",
    "-break-insert",
    "-break-watch",
    "-track-function",
    "-break-delete",
    "-break-disable",
    "-break-enable",
    "-stack-list-frames",
    "-data-list-globals",
    "-data-list-register-values",
    "-data-read-memory",
    "-data-disassemble",
    "-data-evaluate-expression",
    "-inferior-position",
    "-list-functions",
    "-heap-blocks",
    "-file-exec-and-symbols",
]

ARGUMENTS = ["", " main", " helper", " 7", " total", " all", " *0x10000",
             " 0x1000 4", " --maxdepth 2", " ghost", " -1", " 99"]


def make_server(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(C_PROGRAM, encoding="utf-8")
    return DebugServer(str(path))


@given(
    st.lists(
        st.tuples(st.sampled_from(COMMANDS), st.sampled_from(ARGUMENTS)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_random_command_sequences_never_crash(tmp_path_factory, sequence):
    server = make_server(tmp_path_factory.mktemp("fuzz"))
    for command, argument in sequence:
        for line in server.handle(command + argument):
            record = parse_record(line)  # every reply line parses
            assert record.kind in ("done", "error", "running", "stopped",
                                   "stream", "notify")


@given(st.text(max_size=60))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_yields_error_records(tmp_path_factory, junk):
    server = make_server(tmp_path_factory.mktemp("junk"))
    for line in server.handle(junk):
        record = parse_record(line)
        assert record.kind in ("done", "error", "running", "stopped",
                               "stream", "notify")


def test_inspection_commands_after_crash_are_errors(tmp_path):
    path = tmp_path / "crash.c"
    path.write_text(
        "int main(void) { int *p = (int*)7; return *p; }", encoding="utf-8"
    )
    server = DebugServer(str(path))
    server.handle("-exec-run")
    server.handle("-exec-continue")
    for command in ("-stack-list-frames", "-data-list-globals",
                    "-exec-step", "-exec-continue"):
        record = parse_record(server.handle(command)[0])
        assert record.kind == "error"
