"""Stall detection: deadlocked inferiors pause instead of hanging the tool.

The crash-only contract extended to synchronization bugs: when every
inferior thread is blocked on a lock and a control call's deadline
expires, the tracker must NOT raise a bare ``ControlTimeout`` (the
inferior is not slow — it will never move again). Instead the
:class:`repro.core.supervision.StallDetector` double-samples the threads,
confirms none is making progress, and the control call returns a
``DEADLOCK_SUSPECTED`` pause whose ``details`` carry the lock-wait graph
(per-thread wait facts, ownership edges, and the cycle when one exists).
Further control calls re-report the same verdict immediately — paused or
terminated, never hung.

The inversion program uses ``RLock`` because CPython exposes ownership
(``owner=<ident>``) only on RLock reprs; plain ``Lock`` still classifies
as a deadlock but without edges. Workers are daemon threads so a wedged
inferior never outlives its test process.
"""

import time

import pytest

from repro.core.pause import PauseReasonType
from repro.pytracker.monitoring import (
    HAVE_MONITORING,
    SKIP_REASON,
    MonitoringTracker,
)
from repro.pytracker.tracker import PythonTracker
from repro.subproc.tracker import SubprocPythonTracker

LOCK_INVERSION = """\
import threading
import time

a = threading.RLock()
b = threading.RLock()

def one():
    with a:
        time.sleep(0.2)
        with b:
            pass

def two():
    with b:
        time.sleep(0.2)
        with a:
            pass

t1 = threading.Thread(name="w1", target=one, daemon=True)
t2 = threading.Thread(name="w2", target=two, daemon=True)
t1.start()
t2.start()
t1.join()
t2.join()
"""

SLOW_BUT_ALIVE = """\
import time

total = 0
for i in range(80):
    time.sleep(0.025)
    total += i
print("done", total)
"""


BACKENDS = [
    "python",
    pytest.param(
        "python-mon",
        marks=pytest.mark.skipif(not HAVE_MONITORING, reason=SKIP_REASON),
    ),
]


def make_tracker(backend):
    if backend == "python-mon":
        return MonitoringTracker()
    return PythonTracker()


def resume_until_deadlock(tracker, timeout=1.0, attempts=10):
    """Resume repeatedly until the stall verdict lands; returns elapsed
    seconds of the deciding control call."""
    for _ in range(attempts):
        start = time.monotonic()
        tracker.resume(timeout=timeout)
        elapsed = time.monotonic() - start
        reason = tracker.pause_reason
        if reason.type is PauseReasonType.DEADLOCK_SUSPECTED:
            return elapsed
    pytest.fail("deadlock verdict never delivered")


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeadlockVerdict:
    def deadlocked(self, backend, write_program):
        tracker = make_tracker(backend)
        tracker.load_program(write_program("dl.py", LOCK_INVERSION))
        tracker.start()
        return tracker

    def test_verdict_within_twice_the_deadline(self, backend, write_program):
        tracker = self.deadlocked(backend, write_program)
        try:
            elapsed = resume_until_deadlock(tracker, timeout=1.0)
            assert elapsed < 2.0
            reason = tracker.pause_reason
            assert reason.type is PauseReasonType.DEADLOCK_SUSPECTED
            assert reason.thread in (1, 2)
        finally:
            tracker.terminate()

    def test_details_carry_the_lock_wait_graph(self, backend, write_program):
        tracker = self.deadlocked(backend, write_program)
        try:
            resume_until_deadlock(tracker)
            details = tracker.pause_reason.details
            assert details is not None
            waiting = {
                entry["thread"]: entry for entry in details["threads"]
            }
            assert {1, 2} <= set(waiting)
            assert all(
                entry.get("waiting_on") for entry in waiting.values()
            )
            edges = {
                (edge["from"], edge["to"]) for edge in details["edges"]
            }
            assert {(1, 2), (2, 1)} <= edges
            assert set(details["cycle"]) == {1, 2}
        finally:
            tracker.terminate()

    def test_rereport_is_immediate(self, backend, write_program):
        """Once the verdict landed, every further control call re-reports
        it without burning another full deadline (crash-only: the state
        machine stays in its terminal-ish pause)."""
        tracker = self.deadlocked(backend, write_program)
        try:
            resume_until_deadlock(tracker)
            start = time.monotonic()
            tracker.resume(timeout=1.0)
            elapsed = time.monotonic() - start
            assert (
                tracker.pause_reason.type
                is PauseReasonType.DEADLOCK_SUSPECTED
            )
            assert elapsed < 0.5
        finally:
            tracker.terminate()

    def test_blocked_threads_visible_in_get_threads(
        self, backend, write_program
    ):
        tracker = self.deadlocked(backend, write_program)
        try:
            resume_until_deadlock(tracker)
            infos = {info.id: info for info in tracker.get_threads()}
            reporting = tracker.pause_reason.thread
            workers = {1, 2}
            assert infos[reporting].state == "paused"
            for index in workers - {reporting}:
                assert infos[index].state in ("blocked", "paused")
        finally:
            tracker.terminate()

    def test_terminate_after_deadlock_succeeds(self, backend, write_program):
        tracker = self.deadlocked(backend, write_program)
        try:
            resume_until_deadlock(tracker)
        finally:
            tracker.terminate()
        tracker.terminate()  # idempotent


class TestNoFalsePositives:
    def test_slow_inferior_interrupts_instead_of_deadlock_verdict(
        self, write_program
    ):
        """A slow-but-running inferior is NOT a deadlock: the deadline
        delivers a plain INTERRUPT pause (the thread is executing trace
        events, so the stall sampler never confirms), and the run can
        continue to completion."""
        tracker = PythonTracker()
        tracker.load_program(write_program("slow.py", SLOW_BUT_ALIVE))
        tracker.start()
        tracker.resume(timeout=0.4)
        assert tracker.pause_reason.type is PauseReasonType.INTERRUPT
        while tracker.get_exit_code() is None:
            tracker.resume(timeout=30.0)
        assert tracker.get_exit_code() == 0
        tracker.terminate()


class TestDeadlockOverThePipe:
    def test_subproc_backend_reports_the_same_verdict(self, write_program):
        """The MI boundary forwards the verdict: reason, reporting
        thread, and the full lock-wait graph cross the pipe."""
        tracker = SubprocPythonTracker()
        tracker.load_program(write_program("dl.py", LOCK_INVERSION))
        tracker.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            tracker.resume(timeout=1.5)
            if (
                tracker.pause_reason.type
                is PauseReasonType.DEADLOCK_SUSPECTED
            ):
                break
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.DEADLOCK_SUSPECTED
        assert reason.thread in (1, 2)
        details = reason.details
        assert details and set(details["cycle"]) == {1, 2}
        assert {(e["from"], e["to"]) for e in details["edges"]} >= {
            (1, 2),
            (2, 1),
        }
        tracker.terminate()
