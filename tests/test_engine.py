"""Unit tests for the shared ControlPointEngine decision core."""

import pytest

from repro.core.engine import (
    AddressBreakpoint,
    ControlPointEngine,
    TrackerStats,
)
from repro.core.pause import PauseReasonType
from repro.core.tracker import (
    FunctionBreakpoint,
    LineBreakpoint,
    TrackedFunction,
    Watchpoint,
)


def make_engine(**points):
    engine = ControlPointEngine()
    engine.line_breakpoints.extend(points.get("lines", []))
    engine.function_breakpoints.extend(points.get("functions", []))
    engine.tracked_functions.extend(points.get("tracked", []))
    engine.watchpoints.extend(points.get("watches", []))
    engine.address_breakpoints.extend(points.get("addresses", []))
    engine.refresh()
    return engine


class TestCompilation:
    def test_recompile_only_when_dirty(self):
        engine = make_engine(lines=[LineBreakpoint(line=3)])
        built = engine.stats.recompiles
        engine.refresh()
        engine.refresh()
        assert engine.stats.recompiles == built
        engine.mark_dirty()
        engine.refresh()
        assert engine.stats.recompiles == built + 1

    def test_line_set_fast_reject(self):
        engine = make_engine(lines=[LineBreakpoint(line=7)])
        assert engine.may_match_line(7)
        assert not engine.may_match_line(8)

    def test_registry_mutation_visible_after_mark_dirty(self):
        engine = make_engine()
        assert not engine.may_match_line(5)
        engine.line_breakpoints.append(LineBreakpoint(line=5))
        engine.mark_dirty()
        engine.refresh()
        assert engine.may_match_line(5)

    def test_clear_empties_every_registry(self):
        engine = make_engine(
            lines=[LineBreakpoint(line=1)],
            functions=[FunctionBreakpoint(function="f")],
            tracked=[TrackedFunction(function="g")],
            watches=[Watchpoint(variable_id="x")],
            addresses=[AddressBreakpoint(address=0x10)],
        )
        engine.clear()
        assert list(engine.all_points()) == []


class TestLineMatching:
    def test_first_match_in_install_order(self):
        first = LineBreakpoint(line=3, maxdepth=None)
        second = LineBreakpoint(line=3, maxdepth=None)
        engine = make_engine(lines=[first, second])
        assert engine.match_line(None, 3, 0) is first

    def test_disabled_skipped(self):
        off = LineBreakpoint(line=3, enabled=False)
        on = LineBreakpoint(line=3)
        engine = make_engine(lines=[off, on])
        assert engine.match_line(None, 3, 0) is on
        # enabled flips need no mark_dirty
        on.enabled = False
        assert engine.match_line(None, 3, 0) is None

    def test_maxdepth_filter(self):
        shallow = LineBreakpoint(line=3, maxdepth=1)
        engine = make_engine(lines=[shallow])
        assert engine.match_line(None, 3, 1) is shallow
        assert engine.match_line(None, 3, 2) is None

    def test_filename_matching_by_basename(self):
        scoped = LineBreakpoint(line=3, filename="prog.py")
        engine = make_engine(lines=[scoped])
        assert engine.match_line("/somewhere/prog.py", 3, 0) is scoped
        assert engine.match_line("/somewhere/other.py", 3, 0) is None

    def test_file_agnostic_backend_passes_none(self):
        scoped = LineBreakpoint(line=3, filename="prog.c")
        engine = make_engine(lines=[scoped])
        assert engine.match_line(None, 3, 0) is scoped


class TestFunctionMatching:
    def test_function_breakpoint_lookup(self):
        target = FunctionBreakpoint(function="f", maxdepth=2)
        engine = make_engine(functions=[target])
        assert engine.may_match_function("f")
        assert not engine.may_match_function("g")
        assert engine.match_function_breakpoint("f", 2) is target
        assert engine.match_function_breakpoint("f", 3) is None

    def test_tracked_lookup(self):
        tracked = TrackedFunction(function="g")
        engine = make_engine(tracked=[tracked])
        assert engine.may_match_function("g")
        assert engine.match_tracked("g", 9) is tracked
        assert engine.match_tracked("f", 0) is None

    def test_address_lookup(self):
        point = AddressBreakpoint(address=0x4000)
        engine = make_engine(addresses=[point])
        assert engine.has_address_breakpoints
        assert engine.match_address(0x4000, 0) is point
        assert engine.match_address(0x4004, 0) is None
        assert engine.match_address(None, 0) is None


class TestStepMachine:
    def test_step_always_pauses(self):
        engine = make_engine()
        engine.arm("step")
        assert engine.should_step_pause(0)
        assert engine.should_step_pause(9)

    def test_next_pauses_at_or_above_issue_depth(self):
        engine = make_engine()
        engine.arm("next", 2)
        assert engine.should_step_pause(2)
        assert engine.should_step_pause(1)
        assert not engine.should_step_pause(3)

    def test_finish_pauses_strictly_above(self):
        engine = make_engine()
        engine.arm("finish", 2)
        assert engine.should_step_pause(1)
        assert not engine.should_step_pause(2)

    def test_resume_never_step_pauses(self):
        engine = make_engine()
        engine.arm("resume")
        assert not engine.should_step_pause(0)


class TestFrameSkip:
    def test_skips_unrelated_file(self):
        engine = make_engine(
            lines=[LineBreakpoint(line=3, filename="/tmp/prog.py")]
        )
        engine.arm("resume")
        assert engine.can_skip_frame("/tmp/other.py", "helper")
        assert not engine.can_skip_frame("/tmp/prog.py", "helper")

    def test_basename_match_blocks_skip(self):
        engine = make_engine(lines=[LineBreakpoint(line=3, filename="prog.py")])
        engine.arm("resume")
        assert not engine.can_skip_frame("/elsewhere/prog.py", "helper")

    def test_no_control_points_skips_everything(self):
        engine = make_engine()
        engine.arm("resume")
        assert engine.can_skip_frame("/tmp/prog.py", "helper")

    def test_file_agnostic_breakpoint_blocks_skip(self):
        engine = make_engine(lines=[LineBreakpoint(line=3)])
        engine.arm("resume")
        assert not engine.can_skip_frame("/tmp/any.py", "helper")

    def test_stepping_blocks_skip(self):
        engine = make_engine()
        engine.arm("step")
        assert not engine.can_skip_frame("/tmp/prog.py", "helper")

    def test_watchpoints_block_skip(self):
        engine = make_engine(watches=[Watchpoint(variable_id="x")])
        engine.arm("resume")
        assert not engine.can_skip_frame("/tmp/prog.py", "helper")

    def test_function_points_block_skip_everywhere(self):
        # A function breakpoint in a nested call can re-arm stepping that
        # needs line events in this frame — never drop its tracing.
        engine = make_engine(functions=[FunctionBreakpoint(function="f")])
        engine.arm("resume")
        assert not engine.can_skip_frame("/tmp/prog.py", "g")


class TestWatchEvaluation:
    def test_fires_on_change_only(self):
        watch = Watchpoint(variable_id="x")
        engine = make_engine(watches=[watch])
        values = iter(["1", "1", "2"])
        fetch = lambda function, name: next(values)
        assert engine.evaluate_watches(0, fetch) == (watch, None, "1")
        assert engine.evaluate_watches(0, fetch) is None
        assert engine.evaluate_watches(0, fetch) == (watch, "1", "2")

    def test_baseline_suppresses_initial_value(self):
        watch = Watchpoint(variable_id="x")
        engine = make_engine(watches=[watch])
        engine.baseline_watches(lambda function, name: "1")
        assert engine.evaluate_watches(0, lambda f, n: "1") is None
        hit = engine.evaluate_watches(0, lambda f, n: "2")
        assert hit == (watch, "1", "2")

    def test_seed_watch_sets_baseline_for_one(self):
        watch = Watchpoint(variable_id="x")
        engine = make_engine(watches=[watch])
        engine.seed_watch(watch, "5")
        assert engine.evaluate_watches(0, lambda f, n: "5") is None

    def test_disabled_watch_keeps_stale_snapshot(self):
        watch = Watchpoint(variable_id="x", enabled=False)
        engine = make_engine(watches=[watch])
        assert engine.evaluate_watches(0, lambda f, n: "1") is None
        watch.enabled = True
        # first evaluation after re-enabling sees no baseline -> first sighting
        assert engine.evaluate_watches(0, lambda f, n: "1") == (
            watch,
            None,
            "1",
        )

    def test_missing_value_never_fires(self):
        watch = Watchpoint(variable_id="x")
        engine = make_engine(watches=[watch])
        assert engine.evaluate_watches(0, lambda f, n: None) is None

    def test_maxdepth_swallows_but_updates_snapshot(self):
        watch = Watchpoint(variable_id="x", maxdepth=0)
        engine = make_engine(watches=[watch])
        assert engine.evaluate_watches(5, lambda f, n: "1") is None
        # the change at depth 5 was swallowed, and is not re-reported later
        assert engine.evaluate_watches(0, lambda f, n: "1") is None


class TestSyncBookkeeping:
    def test_take_unsynced_is_incremental(self):
        first = LineBreakpoint(line=1)
        engine = make_engine(lines=[first])
        assert engine.take_unsynced() == [first]
        assert engine.take_unsynced() == []
        second = Watchpoint(variable_id="x")
        engine.watchpoints.append(second)
        assert engine.take_unsynced() == [second]

    def test_reset_sync_forgets(self):
        first = LineBreakpoint(line=1)
        engine = make_engine(lines=[first])
        engine.take_unsynced()
        engine.reset_sync()
        assert engine.take_unsynced() == [first]


class TestStats:
    def test_events_and_pauses_counted(self):
        engine = make_engine()
        engine.note_event("line")
        engine.note_event("line")
        engine.record_pause(PauseReasonType.BREAKPOINT)
        stats = engine.stats
        assert stats.events_seen["line"] == 2
        assert stats.events_paused["line"] == 1
        assert stats.events_suppressed["line"] == 1
        assert stats.pauses["breakpoint"] == 1
        assert stats.pause_count == 1
        assert stats.last_pause_latency_ns >= 0
        assert stats.total_pause_latency_ns >= stats.last_pause_latency_ns

    def test_round_trip_through_dict(self):
        engine = make_engine()
        engine.note_event("line")
        engine.record_pause(PauseReasonType.STEP)
        engine.note_event("call")
        restored = TrackerStats.from_dict(engine.stats.to_dict())
        assert restored.to_dict() == engine.stats.to_dict()

    def test_merged_sums_counters(self):
        left = TrackerStats(
            events_seen={"line": 2},
            events_paused={"line": 1},
            pauses={"step": 1},
            watch_evaluations=3,
        )
        right = TrackerStats(
            events_seen={"line": 1, "call": 4},
            pauses={"step": 2},
            watch_evaluations=1,
        )
        merged = left.merged(right)
        assert merged.events_seen == {"line": 3, "call": 4}
        assert merged.pauses == {"step": 3}
        assert merged.watch_evaluations == 4
        assert merged.events_suppressed == {"line": 2, "call": 4}


class TestEndToEndStats:
    def test_python_tracker_exposes_stats(self, tmp_path):
        from repro.pytracker import PythonTracker

        program = tmp_path / "prog.py"
        program.write_text(
            "total = 0\n"
            "for i in range(5):\n"
            "    total += i\n"
            "print(total)\n"
        )
        tracker = PythonTracker(capture_output=True)
        tracker.load_program(str(program))
        tracker.break_before_line(4)
        tracker.start()
        tracker.resume()
        stats = tracker.get_stats()
        assert stats.pauses.get("breakpoint") == 1
        assert stats.events_seen.get("line", 0) > 5
        assert stats.events_suppressed.get("line", 0) > 0
        tracker.terminate()

    def test_gdb_tracker_merges_server_stats(self, tmp_path):
        from repro.gdbtracker import GDBTracker

        program = tmp_path / "prog.c"
        program.write_text(
            "int main(void) {\n"
            "    int x = 0;\n"
            "    x = x + 1;\n"
            "    x = x + 2;\n"
            "    return 0;\n"
            "}\n"
        )
        tracker = GDBTracker()
        tracker.load_program(str(program))
        tracker.break_before_line(4)
        tracker.start()
        tracker.resume()
        stats = tracker.get_stats()
        assert stats.pauses.get("breakpoint") == 1
        assert stats.events_seen.get("line", 0) >= 2
        tracker.terminate()
