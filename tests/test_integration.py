"""Cross-backend integration tests.

The paper's central claim is that one language-agnostic API drives Python,
C and assembly inferiors: the same control loop and the same abstract state
model work against all trackers. These tests run identical tool logic over
multiple backends and compare the observable shapes.
"""

import pytest

from repro import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.state import AbstractType

PY_FACT = """\
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

result = fact(5)
done = True
"""

C_FACT = """\
int result = 0;

int fact(int n) {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}

int main(void) {
    result = fact(5);
    return 0;
}
"""

ASM_FACT = """\
    .globl main
    .globl fact
main:
    li a0, 5
    call fact
    li a7, 93
    ecall
fact:
    li t0, 2
    blt a0, t0, base
    addi sp, sp, -8
    sw ra, 0(sp)
    sw a0, 4(sp)
    addi a0, a0, -1
    call fact
    lw t1, 4(sp)
    mul a0, a0, t1
    lw ra, 0(sp)
    addi sp, sp, 8
    ret
base:
    li a0, 1
    ret
"""


def track_fact_events(program):
    """The paper's Listing 6 control loop, backend chosen by extension."""
    tracker = init_tracker("python" if program.endswith(".py") else "GDB")
    tracker.load_program(program)
    tracker.track_function("fact")
    tracker.start()
    events = []
    try:
        while tracker.get_exit_code() is None:
            tracker.resume()
            reason = tracker.pause_reason
            if reason.type is PauseReasonType.CALL:
                events.append("call")
            elif reason.type is PauseReasonType.RETURN:
                events.append("return")
    finally:
        tracker.terminate()
    return events


class TestLanguageAgnosticControl:
    def test_same_event_sequence_python_and_c(self, write_program):
        py_events = track_fact_events(write_program("fact.py", PY_FACT))
        c_events = track_fact_events(write_program("fact.c", C_FACT))
        assert py_events == c_events
        assert py_events.count("call") == 5

    def test_assembly_matches_via_ret_scan(self, write_program):
        asm_events = track_fact_events(write_program("fact.s", ASM_FACT))
        # The base case returns through its own ret, also breakpointed, so
        # the call/return pairing still matches 5 calls / 5 returns.
        assert asm_events.count("call") == 5
        assert asm_events.count("return") == 5

    def test_listing1_loop_is_identical_across_languages(
        self, write_program, tmp_path
    ):
        from repro.tools.stepper import generate_diagrams

        py_images = generate_diagrams(
            write_program("p.py", "x = 1\ny = 2\n"), str(tmp_path / "py")
        )
        c_images = generate_diagrams(
            write_program(
                "p.c", "int main(void) {\n    int x = 1;\n    int y = 2;\n    return 0;\n}\n"
            ),
            str(tmp_path / "c"),
        )
        assert len(py_images) == 2
        # C also pauses on `return 0;`, which the Python module's implicit
        # return does not have — 3 executed lines vs 2.
        assert len(c_images) == 3


class TestAbstractModelConsistency:
    def test_depths_agree(self, write_program):
        py_depths = self._call_depths(write_program("fact.py", PY_FACT))
        c_depths = self._call_depths(write_program("fact.c", C_FACT))
        # Python counts the module frame at depth 0, so fact's first call
        # is at depth 1; C's main is depth 0 with fact at depth 1. Equal.
        assert py_depths == c_depths == [1, 2, 3, 4, 5]

    @staticmethod
    def _call_depths(program):
        tracker = init_tracker("python" if program.endswith(".py") else "GDB")
        tracker.load_program(program)
        tracker.track_function("fact")
        tracker.start()
        depths = []
        try:
            while tracker.get_exit_code() is None:
                tracker.resume()
                if (
                    tracker.pause_reason is not None
                    and tracker.pause_reason.type is PauseReasonType.CALL
                ):
                    depths.append(tracker.get_current_frame().depth)
        finally:
            tracker.terminate()
        return depths

    def test_argument_values_agree(self, write_program):
        py_args = self._first_args(write_program("fact.py", PY_FACT))
        c_args = self._first_args(write_program("fact.c", C_FACT))
        assert py_args == c_args == [5, 4, 3, 2, 1]

    @staticmethod
    def _first_args(program):
        tracker = init_tracker("python" if program.endswith(".py") else "GDB")
        tracker.load_program(program)
        tracker.track_function("fact")
        tracker.start()
        arguments = []
        try:
            while tracker.get_exit_code() is None:
                tracker.resume()
                reason = tracker.pause_reason
                if reason is not None and reason.type is PauseReasonType.CALL:
                    value = tracker.get_current_frame().variables["n"].value
                    while value.abstract_type is AbstractType.REF:
                        value = value.content
                    arguments.append(value.content)
        finally:
            tracker.terminate()
        return arguments

    def test_watch_semantics_agree(self, write_program):
        py_hits = self._watch_result(write_program("fact.py", PY_FACT))
        c_hits = self._watch_result(write_program("fact.c", C_FACT))
        # Both languages: the single assignment to the global `result`.
        assert py_hits == c_hits == 1

    @staticmethod
    def _watch_result(program):
        tracker = init_tracker("python" if program.endswith(".py") else "GDB")
        tracker.load_program(program)
        tracker.watch("result")
        tracker.start()
        hits = 0
        try:
            while tracker.get_exit_code() is None:
                tracker.resume()
                if (
                    tracker.pause_reason is not None
                    and tracker.pause_reason.type is PauseReasonType.WATCH
                ):
                    hits += 1
        finally:
            tracker.terminate()
        return hits


class TestTraceInterop:
    def test_trace_recorded_from_live_run_replays_identically(
        self, write_program, tmp_path
    ):
        from repro.pytutor import PTTracker, record_trace

        program = write_program("fact.py", PY_FACT)
        trace = record_trace(program, mode="tracked", track=["fact"])
        path = str(tmp_path / "fact_trace.json")
        trace.save(path)

        # Collect depths from the live run...
        live_depths = TestAbstractModelConsistency._call_depths(program)

        # ...and from the replayed trace behind the same API.
        tracker = PTTracker()
        tracker.load_program(path)
        tracker.track_function("fact")
        tracker.start()
        replay_depths = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if (
                tracker.pause_reason is not None
                and tracker.pause_reason.type is PauseReasonType.CALL
            ):
                replay_depths.append(len(tracker.get_frames()))
        # The replay misses the first recorded step (consumed by start()).
        assert replay_depths == live_depths[1:]


class TestMultiInferior:
    def test_two_trackers_run_side_by_side(self, write_program):
        first = init_tracker("python")
        second = init_tracker("GDB")
        first.load_program(write_program("a.py", "x = 1\ny = 2\n"))
        second.load_program(
            write_program("b.c", "int main(void) {\n    int x = 1;\n    return 0;\n}\n")
        )
        first.start()
        second.start()
        steps = 0
        while first.get_exit_code() is None or second.get_exit_code() is None:
            if first.get_exit_code() is None:
                first.step()
            if second.get_exit_code() is None:
                second.step()
            steps += 1
            assert steps < 50
        first.terminate()
        second.terminate()
        assert first.get_exit_code() == 0
        assert second.get_exit_code() == 0
