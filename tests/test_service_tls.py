"""TLS for the tracker service: encrypted transport end to end.

The service refuses cleartext exposure (the CLI hard-stops a tokenless,
TLS-less non-loopback bind); with ``--tls-cert``/``--tls-key`` the
asyncio listener is ssl-wrapped and :class:`ServiceClient` verifies the
server against a pinned CA (``tls_ca``), which is how self-signed
deployments authenticate the server. Certificates for these tests are
minted on the fly with the ``openssl`` CLI; everything skips when the
binary is absent.
"""

import asyncio
import shutil
import ssl
import subprocess

import pytest

from repro.cli import main
from repro.core.errors import TrackerError
from repro.service import ServiceClient, ServiceConfig, TrackerService

OPENSSL = shutil.which("openssl")

requires_openssl = pytest.mark.skipif(
    OPENSSL is None, reason="openssl binary not available"
)

COUNTING_PY = """\
total = 0
for i in range(3):
    total = total + i
print("done", total)
"""


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(scope="module")
def certpair(tmp_path_factory):
    if OPENSSL is None:
        pytest.skip("openssl binary not available")
    directory = tmp_path_factory.mktemp("tls")
    cert = str(directory / "cert.pem")
    key = str(directory / "key.pem")
    subprocess.run(
        [
            OPENSSL, "req", "-x509", "-newkey", "rsa:2048",
            "-keyout", key, "-out", cert, "-days", "2", "-nodes",
            "-subj", "/CN=localhost",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key


@requires_openssl
class TestTlsEndToEnd:
    def test_session_over_tls(self, certpair, write_program):
        """Full debug session through an encrypted connection: open,
        run to exit, close."""
        cert, key = certpair
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = TrackerService(
                ServiceConfig(pool_size=1, port=0, tls_cert=cert, tls_key=key)
            )
            await service.start()
            try:
                host, port = service.address
                async with await ServiceClient.connect(
                    host, port, tls=True, tls_ca=cert
                ) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    while tracker.get_exit_code() is None:
                        await tracker.resume()
                    code = tracker.get_exit_code()
                    await tracker.close()
                    return code
            finally:
                await service.close()

        assert run(scenario()) == 0

    def test_plaintext_client_cannot_talk_to_tls_server(
        self, certpair, write_program
    ):
        cert, key = certpair

        async def scenario():
            service = TrackerService(
                ServiceConfig(pool_size=1, port=0, tls_cert=cert, tls_key=key)
            )
            await service.start()
            try:
                host, port = service.address
                with pytest.raises(
                    (TrackerError, ConnectionError, asyncio.TimeoutError)
                ):
                    await asyncio.wait_for(
                        ServiceClient.connect(host, port, reconnect=None),
                        timeout=5.0,
                    )
            finally:
                await service.close()

        run(scenario())

    def test_client_rejects_unpinned_self_signed_cert(
        self, certpair, write_program
    ):
        """Without ``tls_ca`` the client uses the system trust store,
        which does not contain the self-signed cert — the handshake must
        fail rather than silently trust it."""
        cert, key = certpair

        async def scenario():
            service = TrackerService(
                ServiceConfig(pool_size=1, port=0, tls_cert=cert, tls_key=key)
            )
            await service.start()
            try:
                host, port = service.address
                with pytest.raises(
                    (ssl.SSLError, TrackerError, ConnectionError)
                ):
                    await asyncio.wait_for(
                        ServiceClient.connect(
                            host, port, tls=True, reconnect=None
                        ),
                        timeout=5.0,
                    )
            finally:
                await service.close()

        run(scenario())


class TestTlsConfigValidation:
    def test_cert_without_key_fails_to_start(self, tmp_path):
        cert = tmp_path / "only.pem"
        cert.write_text("not really a cert")

        async def scenario():
            service = TrackerService(
                ServiceConfig(pool_size=1, port=0, tls_cert=str(cert))
            )
            with pytest.raises(TrackerError):
                await service.start()
            await service.close()

        run(scenario())

    def test_unreadable_cert_is_a_typed_error(self, tmp_path):
        async def scenario():
            service = TrackerService(
                ServiceConfig(
                    pool_size=1,
                    port=0,
                    tls_cert=str(tmp_path / "missing.pem"),
                    tls_key=str(tmp_path / "missing.key"),
                )
            )
            with pytest.raises(TrackerError):
                await service.start()
            await service.close()

        run(scenario())


class TestServeCliGuardrails:
    def test_tls_cert_without_key_exits_2(self, capsys):
        assert main(["serve", "--tls-cert", "/tmp/x.pem"]) == 2
        assert "--tls-key" in capsys.readouterr().err

    def test_nonloopback_bind_without_token_or_tls_refused(self, capsys):
        assert main(["serve", "--host", "0.0.0.0"]) == 2
        err = capsys.readouterr().err
        assert "refusing" in err
        assert "0.0.0.0" in err
