"""Unit tests for the ``sys.monitoring`` backend (``python-mon``).

The parity suites (maxdepth, timeline, crash matrix, equivalence) prove
the backend agrees with the settrace tracker on pause sequences; this
suite covers what is *specific* to the monitoring substrate: tool-id
lifecycle (acquisition, "already taken" fallback, release), the
DISABLE/``restart_events`` re-arm dance when the engine's indexes change
under live instrumentation, the steady-state claim that resume with no
matching control points stops receiving line events, and asynchronous
interrupt delivery through monitoring callbacks.

On interpreters without ``sys.monitoring`` (<3.12) every test here skips
with :data:`repro.pytracker.monitoring.SKIP_REASON`; the factory error
path and the unknown-backend message are tested on every version.
"""

import sys
import threading
import time

import pytest

from repro.core.errors import BackendUnavailableError, TrackerError
from repro.core.factory import available_trackers, init_tracker
from repro.core.pause import PauseReasonType
from repro.pytracker.monitoring import (
    HAVE_MONITORING,
    SKIP_REASON,
    MonitoringTracker,
)
from repro.testing.faults import NEVER_PAUSING_PY

requires_monitoring = pytest.mark.skipif(
    not HAVE_MONITORING, reason=SKIP_REASON
)

TWO_CALLS = """\
def work():
    a = 1
    b = 2
    return a + b

work()
work()
done = 1
"""

HOT_LOOP = """\
total = 0
for i in range(2000):
    total += i
done = total
"""


class TestFactory:
    def test_registered_under_python_mon(self):
        assert "python-mon" in available_trackers()

    @pytest.mark.skipif(
        HAVE_MONITORING, reason="needs an interpreter without sys.monitoring"
    )
    def test_unavailable_raises_backend_error(self):
        with pytest.raises(BackendUnavailableError) as excinfo:
            init_tracker("python-mon")
        assert "3.12" in str(excinfo.value)
        assert "sys.monitoring" in str(excinfo.value)

    def test_unknown_backend_error_lists_registered_names(self):
        """The unknown-backend error enumerates every registered factory
        name, so a typo'd ``python-mom`` shows the user what exists."""
        with pytest.raises(TrackerError) as excinfo:
            init_tracker("python-mom")
        message = str(excinfo.value)
        assert "python-mom" in message
        for name in available_trackers():
            assert name in message

    @requires_monitoring
    def test_factory_builds_a_monitoring_tracker(self):
        tracker = init_tracker("python-mon")
        assert isinstance(tracker, MonitoringTracker)
        assert tracker.backend == "python-mon"


def _run_to_exit(tracker):
    while tracker.get_exit_code() is None:
        tracker.resume()
    return tracker


@requires_monitoring
class TestToolIdLifecycle:
    def test_tool_id_acquired_while_running_released_after(
        self, write_program
    ):
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", TWO_CALLS))
        tracker.start()
        tool_id = tracker._tool_id
        assert tool_id is not None
        assert sys.monitoring.get_tool(tool_id) == tracker._tool_name
        _run_to_exit(tracker)
        tracker.terminate()
        assert tracker._tool_id is None
        assert sys.monitoring.get_tool(tool_id) is None

    def test_falls_back_when_debugger_id_taken(self, write_program):
        debugger_id = sys.monitoring.DEBUGGER_ID
        sys.monitoring.use_tool_id(debugger_id, "someone-else")
        try:
            tracker = MonitoringTracker()
            tracker.load_program(write_program("prog.py", TWO_CALLS))
            tracker.start()
            try:
                assert tracker._tool_id is not None
                assert tracker._tool_id != debugger_id
                _run_to_exit(tracker)
            finally:
                tracker.terminate()
            assert sys.monitoring.get_tool(debugger_id) == "someone-else"
        finally:
            sys.monitoring.free_tool_id(debugger_id)

    def test_all_tool_ids_taken_is_a_clear_error(self, write_program):
        claimed = []
        for tool_id in range(6):
            try:
                sys.monitoring.use_tool_id(tool_id, f"hog-{tool_id}")
            except ValueError:
                continue  # already held by a real tool; even better
            claimed.append(tool_id)
        try:
            tracker = MonitoringTracker()
            tracker.load_program(write_program("prog.py", TWO_CALLS))
            with pytest.raises(BackendUnavailableError) as excinfo:
                tracker.start()
            assert "tool ids" in str(excinfo.value)
        finally:
            for tool_id in claimed:
                sys.monitoring.free_tool_id(tool_id)

    def test_terminate_before_start_is_harmless(self, write_program):
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", TWO_CALLS))
        tracker.terminate()
        assert tracker._tool_id is None


@requires_monitoring
class TestDisableRearm:
    def test_breakpoint_added_at_disabled_location_still_fires(
        self, write_program
    ):
        """Resuming past line 2 DISABLEs it (nothing matches there); a
        breakpoint added at line 2 afterwards must still fire on the next
        resume — the recompile hook restarts disabled locations."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", TWO_CALLS))
        tracker.break_before_line(3)
        tracker.start()
        try:
            tracker.resume()  # first work() call: line 2 seen, DISABLEd
            assert tracker.get_position()[1] == 3
            tracker.break_before_line(2)
            tracker.resume()  # second work() call
            assert tracker.get_position()[1] == 2
            assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        finally:
            tracker.terminate()

    def test_watchpoint_added_mid_run_turns_line_events_back_on(
        self, write_program
    ):
        """Watchpoints need every line event; adding one mid-run must
        reverse both the lean event mask and the DISABLEd locations."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", TWO_CALLS))
        tracker.break_before_line(3)
        tracker.start()
        try:
            tracker.resume()
            assert tracker.get_position()[1] == 3
            tracker.watch("work:b")
            tracker.resume()
            assert tracker.pause_reason.type is PauseReasonType.WATCH
            assert tracker.pause_reason.new_value == "2"
        finally:
            tracker.terminate()

    def test_steady_state_resume_stops_receiving_line_events(
        self, write_program
    ):
        """The performance claim, asserted structurally: a 2000-iteration
        loop with no matching control points delivers only a handful of
        line events (each location fires once, then DISABLE) instead of
        one per executed line."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", HOT_LOOP))
        tracker.start()
        try:
            _run_to_exit(tracker)
            lines_seen = tracker.engine.stats.events_seen.get("line", 0)
            assert lines_seen < 100, (
                f"expected DISABLE to silence the loop, saw {lines_seen} "
                "line events"
            )
        finally:
            tracker.terminate()

    def test_stepping_after_resume_rearms_disabled_lines(self, write_program):
        """step must revisit locations that resume DISABLEd."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("prog.py", TWO_CALLS))
        tracker.break_before_line(3)
        tracker.start()
        try:
            tracker.resume()  # DISABLEs line 2 and others on the way
            lines = []
            for _ in range(4):
                tracker.step()
                lines.append(tracker.get_position()[1])
            # return -> second work() call -> its line 2 (was DISABLEd)
            assert 2 in lines
        finally:
            tracker.terminate()


@requires_monitoring
class TestInterrupts:
    def test_interrupt_lands_while_resumed_uninstrumented(
        self, write_program
    ):
        """With everything DISABLEd mid-spin, the deadline interrupt must
        force events back on, land as a pause, and leave the session
        steppable."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("spin.py", NEVER_PAUSING_PY))
        tracker.start()
        try:
            tracker.resume(timeout=0.3)
            assert tracker.get_exit_code() is None
            assert tracker.pause_reason.type is PauseReasonType.INTERRUPT
            tracker.step()
            assert tracker.get_exit_code() is None
        finally:
            tracker.terminate()

    def test_kill_lands_while_resumed_uninstrumented(self, write_program):
        """terminate must reach a spinning inferior whose every location
        was DISABLEd — the kill path forces events back on."""
        tracker = MonitoringTracker()
        tracker.load_program(write_program("spin.py", NEVER_PAUSING_PY))
        tracker.start()

        def resume_until_killed():
            try:
                tracker.resume(timeout=30)
            except TrackerError:
                pass  # the kill ends the control call either way

        resumer = threading.Thread(target=resume_until_killed, daemon=True)
        resumer.start()
        time.sleep(0.3)  # let the spin run and DISABLE its locations
        tracker.terminate()
        resumer.join(timeout=10)
        assert not resumer.is_alive()
        assert tracker.health != "invalid"


@requires_monitoring
class TestDynamicCode:
    def test_breakpoint_fires_in_compiled_exec_code(self, write_program):
        """Code the inferior compiles at runtime is still inferior code.

        sys.monitoring registers instrumentation per code object; a
        function born from ``exec(compile(...))`` never existed when the
        program was loaded, so the backend must instrument it on first
        sight (the code-object filter has to classify by filename, not
        by a pre-start registry)."""
        source = """\
source = '''
def dyn_fn(n):
    doubled = n + 2
    return doubled
'''
code = compile(source, __file__, "exec")
ns = {}
exec(code, ns)
result = ns["dyn_fn"](40)
print("result", result)
"""
        tracker = MonitoringTracker(capture_output=True)
        tracker.load_program(write_program("dyn.py", source))
        tracker.break_before_func("dyn_fn")
        tracker.start()
        try:
            tracker.resume(timeout=30.0)
            assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
            frames = tracker.get_frames()
            assert frames[0].name == "dyn_fn"
            while tracker.get_exit_code() is None:
                tracker.resume(timeout=30.0)
            assert tracker.get_exit_code() == 0
            assert "result 42" in tracker.get_output()
        finally:
            tracker.terminate()
