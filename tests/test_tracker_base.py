"""Tests for the abstract tracker base: lifecycle, registries, factory."""

import pytest

from repro.core.errors import (
    AlreadyTerminatedError,
    NotPausedError,
    NotStartedError,
    TrackerError,
)
from repro.core.factory import available_trackers, init_tracker, register_tracker
from repro.core.tracker import Tracker, Watchpoint


class _FakeTracker(Tracker):
    """A minimal concrete tracker for exercising the base-class logic."""

    backend = "fake"

    def __init__(self):
        super().__init__()
        self.calls = []

    def _load_program(self, path, args):
        self.calls.append(("load", path, args))

    def _start(self):
        self.calls.append(("start",))

    def _resume(self):
        self.calls.append(("resume",))

    def _next(self):
        self.calls.append(("next",))

    def _step(self):
        self.calls.append(("step",))

    def _finish(self):
        self.calls.append(("finish",))

    def _terminate(self):
        self.calls.append(("terminate",))

    def _get_current_frame(self):
        from repro.core.state import Frame

        return Frame(name="main", depth=0)

    def _get_global_variables(self):
        return {}

    def _get_position(self):
        return "prog", 1


class TestLifecycle:
    def test_start_requires_load(self):
        tracker = _FakeTracker()
        with pytest.raises(NotStartedError):
            tracker.start()

    def test_double_start_rejected(self):
        tracker = _FakeTracker()
        tracker.load_program("p")
        tracker.start()
        with pytest.raises(NotStartedError):
            tracker.start()

    def test_control_requires_start(self):
        tracker = _FakeTracker()
        tracker.load_program("p")
        for control in (tracker.resume, tracker.next, tracker.step, tracker.finish):
            with pytest.raises(NotStartedError):
                control()

    def test_control_rejected_after_exit(self):
        tracker = _FakeTracker()
        tracker.load_program("p")
        tracker.start()
        tracker._exit_code = 0
        with pytest.raises(AlreadyTerminatedError):
            tracker.resume()

    def test_inspection_requires_pause(self):
        tracker = _FakeTracker()
        with pytest.raises(NotStartedError):
            tracker.get_current_frame()
        tracker.load_program("p")
        tracker.start()
        tracker._exit_code = 0
        with pytest.raises(NotPausedError):
            tracker.get_current_frame()

    def test_terminate_is_idempotent(self):
        tracker = _FakeTracker()
        tracker.load_program("p")
        tracker.start()
        tracker.terminate()
        tracker.terminate()
        assert tracker.calls.count(("terminate",)) == 1

    def test_exit_code_initially_none(self):
        assert _FakeTracker().get_exit_code() is None


class TestControlPointRegistries:
    def test_break_before_line_records_parameters(self):
        tracker = _FakeTracker()
        breakpoint_ = tracker.break_before_line(10, filename="f.py", maxdepth=2)
        assert breakpoint_.line == 10
        assert breakpoint_.filename == "f.py"
        assert breakpoint_.maxdepth == 2
        assert tracker.line_breakpoints == [breakpoint_]

    def test_break_before_func_and_track(self):
        tracker = _FakeTracker()
        tracker.break_before_func("f")
        tracker.track_function("g", maxdepth=3)
        assert tracker.function_breakpoints[0].function == "f"
        assert tracker.tracked_functions[0].maxdepth == 3

    def test_watch_registers(self):
        tracker = _FakeTracker()
        tracker.watch("main:x")
        assert tracker.watchpoints[0].variable_id == "main:x"

    def test_clear_control_points(self):
        tracker = _FakeTracker()
        tracker.break_before_line(1)
        tracker.break_before_func("f")
        tracker.watch("x")
        tracker.track_function("g")
        tracker.clear_control_points()
        assert not tracker.line_breakpoints
        assert not tracker.function_breakpoints
        assert not tracker.watchpoints
        assert not tracker.tracked_functions

    #: The shared split table: every tracker resolves watch identifiers
    #: through repro.core.engine.split_variable_id, so one table covers
    #: them all.
    SPLIT_CASES = [
        # plain names
        ("x", (None, "x")),
        ("counter", (None, "counter")),
        # function-scoped
        ("f:x", ("f", "x")),
        ("main:total", ("main", "total")),
        # method-qualified (dotted) function part
        ("Stack.push:item", ("Stack.push", "item")),
        ("a.b.c:x", ("a.b.c", "x")),
        # empty function part means "no scope"
        (":x", (None, "x")),
        # only the first scope colon splits
        ("f:x:y", ("f", "x:y")),
        # colons inside brackets/quotes belong to the variable path
        ('d[":k"]', (None, 'd[":k"]')),
        ("f:d[':k']", ("f", "d[':k']")),
        # a non-identifier prefix is not a function scope
        ("d[0]:x", (None, "d[0]:x")),
        # paths survive unscoped and scoped
        ("obj.attr[0]", (None, "obj.attr[0]")),
        ("f:obj.attr[0]", ("f", "obj.attr[0]")),
    ]

    @pytest.mark.parametrize("variable_id,expected", SPLIT_CASES)
    def test_watchpoint_split(self, variable_id, expected):
        assert Watchpoint(variable_id).split() == expected

    @pytest.mark.parametrize("variable_id,expected", SPLIT_CASES)
    def test_split_variable_id_matches_watchpoint_split(
        self, variable_id, expected
    ):
        from repro.core.engine import split_variable_id

        assert split_variable_id(variable_id) == expected

    def test_depth_allows(self):
        assert Tracker._depth_allows(None, 99)
        assert Tracker._depth_allows(2, 2)
        assert not Tracker._depth_allows(2, 3)


class TestGetVariable:
    def test_lookup_in_current_frame(self):
        from repro.core.state import AbstractType, Frame, Value, Variable

        tracker = _FakeTracker()
        tracker.load_program("p")
        tracker.start()
        frame = Frame(name="main", depth=0)
        frame.variables["x"] = Variable("x", Value(AbstractType.PRIMITIVE, 1))
        tracker._get_current_frame = lambda: frame
        assert tracker.get_variable("x").value.content == 1
        assert tracker.get_variable("missing") is None

    def test_lookup_by_function(self):
        from repro.core.state import AbstractType, Frame, Value, Variable

        tracker = _FakeTracker()
        tracker.load_program("p")
        tracker.start()
        outer = Frame(name="main", depth=0)
        outer.variables["y"] = Variable("y", Value(AbstractType.PRIMITIVE, 2))
        inner = Frame(name="g", depth=1, parent=outer)
        tracker._get_current_frame = lambda: inner
        assert tracker.get_variable("y", function="main").value.content == 2
        assert tracker.get_variable("y", function="nowhere") is None


class TestFactory:
    def test_builtin_backends_registered(self):
        names = available_trackers()
        assert "python" in names
        assert "gdb" in names
        assert "pt" in names

    def test_init_tracker_is_case_insensitive(self):
        assert init_tracker("GDB").backend == "GDB"
        assert init_tracker("Python").backend == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(TrackerError, match="unknown tracker"):
            init_tracker("rr")

    def test_custom_backend_registration(self):
        register_tracker("fake-test", _FakeTracker)
        assert init_tracker("fake-test").backend == "fake"
