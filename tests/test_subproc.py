"""Unit tests for the out-of-process Python backend.

The server half (:class:`repro.subproc.server.PythonDebugServer`) is
driven through its pure ``handle()`` interface — same idiom as
``tests/test_mi_server.py`` — so protocol behavior is tested without
spawning a child. The resource-limit plumbing and the client's
exit-code mapping are pure functions and tested directly. End-to-end
child-process behavior lives in ``tests/test_hostile_inferiors.py`` and
the parity suites.
"""

import pytest

from repro.mi.protocol import parse_record
from repro.subproc.limits import ResourceLimits
from repro.subproc.server import PythonDebugServer
from repro.subproc.tracker import _process_exit_code

PY_PROGRAM = """\
total = 0

def square(v):
    r = v * v
    return r

for i in range(1, 4):
    total = total + square(i)
print("total", total)
"""


def make_server(write_program, source, name="prog.py"):
    return PythonDebugServer(write_program(name, source))


def records(lines):
    return [parse_record(line) for line in lines]


def last_stopped(lines):
    stopped = [r for r in records(lines) if r.kind == "stopped"]
    assert stopped, f"no *stopped in {lines}"
    return stopped[-1].payload


@pytest.fixture
def server(write_program):
    return make_server(write_program, PY_PROGRAM)


class TestLifecycle:
    def test_run_pauses_at_first_line(self, server):
        lines = server.handle("-exec-run")
        assert records(lines)[0].kind == "running"
        payload = last_stopped(lines)
        assert payload["reason"] == "end-stepping-range"
        assert payload["line"] == 1

    def test_double_run_is_error(self, server):
        server.handle("-exec-run")
        assert records(server.handle("-exec-run"))[0].kind == "error"

    def test_continue_to_exit(self, server):
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "exited"
        assert payload["exitcode"] == 0

    def test_control_before_run_is_error(self, server):
        assert records(server.handle("-exec-continue"))[0].kind == "error"

    def test_control_after_exit_is_error(self, server):
        server.handle("-exec-run")
        server.handle("-exec-continue")
        assert records(server.handle("-exec-continue"))[0].kind == "error"

    def test_crash_reports_error_in_stopped(self, write_program):
        server = make_server(
            write_program, "raise ValueError('boom')\n", "crash.py"
        )
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["exitcode"] == 1
        assert "ValueError: boom" in payload["error"]

    def test_gdb_exit_sets_finished(self, server):
        assert records(server.handle("-gdb-exit"))[0].kind == "done"
        assert server._finished

    def test_stale_interrupt_emits_nothing(self, server):
        server.handle("-exec-run")
        assert server.handle("-exec-interrupt") == []


class TestControlPoints:
    def test_function_breakpoint_and_output_stream(self, server):
        number = records(server.handle("-break-insert square"))[0]
        assert number.payload == {"number": 1}
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["func"] == "square"
        # run to exit: prints cross as ~stream records
        for _ in range(10):
            lines = server.handle("-exec-continue")
            payload = last_stopped(lines)
            if payload["reason"] == "exited":
                break
        streams = [r for r in records(lines) if r.kind == "stream"]
        assert any("total 14" in s.payload for s in streams)

    def test_line_breakpoint_with_filename(self, server):
        path = server.path
        records(server.handle(f"-break-insert {path}:4"))
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["line"] == 4

    def test_address_breakpoint_is_rejected(self, server):
        record = records(server.handle("-break-insert *0x400000"))[0]
        assert record.kind == "error"
        assert "address" in record.payload

    def test_tracked_function_return_value_is_serialized(self, server):
        server.handle("-track-function square")
        server.handle("-exec-run")
        server.handle("-exec-continue")  # entry
        payload = last_stopped(server.handle("-exec-continue"))  # exit
        assert payload["reason"] == "function-exit"
        assert payload["retval"]["content"] == 1
        assert payload["retval"]["language_type"] == "int"

    def test_watchpoint(self, server):
        server.handle("-break-watch total")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "watchpoint-trigger"
        assert payload["var"] == "total"
        assert payload["new"] == "0"  # the initial total = 0 assignment

    def test_break_delete_all(self, server):
        server.handle("-break-insert square")
        server.handle("-break-delete all")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "exited"

    def test_maxdepth_option_rides_along(self, write_program):
        source = (
            "def rec(n):\n"
            "    if n == 0:\n"
            "        return 0\n"
            "    return rec(n - 1)\n"
            "rec(3)\n"
        )
        server = make_server(write_program, source, "rec.py")
        server.handle('-break-insert rec --maxdepth "2"')
        server.handle("-exec-run")
        hits = 0
        for _ in range(20):
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
            hits += 1
        assert hits == 2


class TestInspection:
    def test_position_and_globals(self, server):
        server.handle("-exec-run")
        record = records(server.handle("-inferior-position"))[0]
        assert record.payload["line"] == 1
        server.handle("-break-insert 9")
        server.handle("-exec-continue")
        globals_record = records(server.handle("-data-list-globals"))[0]
        total = globals_record.payload["total"]["value"]
        assert total["abstract_type"] == "ref"  # global -> heap int
        assert total["content"]["content"] == 14

    def test_list_functions(self, server):
        record = records(server.handle("-list-functions"))[0]
        assert record.payload == ["square"]

    def test_tracker_stats_cross_the_pipe(self, server):
        server.handle("-exec-run")
        record = records(server.handle("-tracker-stats"))[0]
        assert "events_seen" in record.payload


class TestTimeline:
    def test_timeline_requires_start(self, server):
        record = records(server.handle("-timeline-length"))[0]
        assert record.kind == "error"
        assert "-timeline-start" in record.payload

    def test_timeline_records_pauses(self, server):
        server.handle("-timeline-start")
        server.handle("-break-insert square")
        server.handle("-exec-run")
        for _ in range(10):
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
        length = records(server.handle("-timeline-length"))[0]
        # entry + 3 breakpoint hits + exit
        assert length.payload["length"] == 5
        dump = records(server.handle("-timeline-dump"))[0]
        assert dump.payload["start_index"] == 0
        assert dump.payload["segments"]  # serialized delta segments


class TestResourceLimits:
    def test_argv_round_trip(self):
        limits = ResourceLimits(
            address_space=123, cpu_seconds=4, file_size=56
        )
        argv = limits.to_argv() + ["prog.py", "arg1"]
        parsed, rest = ResourceLimits.consume_argv(argv)
        assert parsed == limits
        assert rest == ["prog.py", "arg1"]

    def test_unset_limits_add_no_flags(self):
        assert ResourceLimits().to_argv() == []

    def test_missing_value_raises(self):
        with pytest.raises(ValueError):
            ResourceLimits.consume_argv(["--limit-cpu"])

    def test_unknown_flags_pass_through(self):
        _, rest = ResourceLimits.consume_argv(["--limit-other", "prog.py"])
        assert rest == ["--limit-other", "prog.py"]


class TestExitCodeMapping:
    def test_signal_death_maps_to_shell_convention(self):
        assert _process_exit_code(-11) == 139  # SIGSEGV
        assert _process_exit_code(-24) == 152  # SIGXCPU

    def test_plain_codes_pass_through(self):
        assert _process_exit_code(0) == 0
        assert _process_exit_code(7) == 7

    def test_unknown_death_is_nonzero(self):
        assert _process_exit_code(None) == 1


class TestIdleBootAndReload:
    """The pooled-child life: boot idle, bind via load, taint via limits."""

    def test_idle_server_reports_unloaded(self):
        server = PythonDebugServer()
        info = records(server.handle("-server-info"))[0].payload
        assert info["loaded"] is None
        assert info["started"] is False
        assert info["limits_applied"] is False
        assert info["pid"]

    def test_run_before_load_is_error(self):
        server = PythonDebugServer()
        record = records(server.handle("-exec-run"))[0]
        assert record.kind == "error"

    def test_load_binds_an_idle_server(self, write_program):
        server = PythonDebugServer()
        path = write_program("late.py", "print('hi')\n")
        done = records(server.handle(f"-file-exec-and-symbols {path}"))[0]
        assert done.kind == "done"
        lines = server.handle("-exec-run")
        assert records(lines)[0].kind == "running"

    def test_reload_resets_state(self, server, write_program):
        server.handle("-break-insert square")
        server.handle("-exec-run")
        other = write_program("other.py", "y = 2\nprint('other', y)\n")
        done = records(server.handle(f"-file-exec-and-symbols {other}"))[0]
        assert done.kind == "done"
        # numbering, run state, and control points all start over
        info = records(server.handle("-server-info"))[0].payload
        assert info["started"] is False
        number = records(server.handle("-break-insert 2"))[0].payload
        assert number == {"number": 1}
        lines = server.handle("-exec-run")
        assert records(lines)[0].kind == "running"
        server.handle("-exec-continue")
        final = server.handle("-exec-continue")
        assert last_stopped(final)["reason"] == "exited"

    def test_failed_reload_leaves_server_idle(self, server):
        error = records(
            server.handle("-file-exec-and-symbols /no/such/prog.py")
        )[0]
        assert error.kind == "error"
        info = records(server.handle("-server-info"))[0].payload
        assert info["loaded"] is None

    def test_load_report_without_args_still_works(self, server):
        done = records(server.handle("-file-exec-and-symbols"))[0]
        assert done.kind == "done"
        assert done.payload["file"].endswith("prog.py")

    def test_apply_limits_taints_the_server(self):
        server = PythonDebugServer()
        # an enormous fsize cap: harmless to the test process, but the
        # taint flag must flip regardless of the cap's size
        done = records(
            server.handle("-apply-limits --fsize 10000000000")
        )[0]
        assert done.payload == {"limits_applied": True}
        info = records(server.handle("-server-info"))[0].payload
        assert info["limits_applied"] is True

    def test_empty_apply_limits_is_a_no_op(self):
        server = PythonDebugServer()
        done = records(server.handle("-apply-limits"))[0]
        assert done.payload == {"limits_applied": False}


PY_SERIAL_THREADS = """\
import threading

def worker(tag):
    value = tag * 2
    return value

t1 = threading.Thread(name="w1", target=worker, args=(1,))
t1.start()
t1.join()
t2 = threading.Thread(name="w2", target=worker, args=(2,))
t2.start()
t2.join()
print("done")
"""


class TestThreadsOverMi:
    """The thread dimension crossing the MI boundary.

    Workers run strictly serially so stable indexes are deterministic
    (first worker = 1, second = 2) regardless of scheduler whims.
    """

    def test_thread_info_lists_the_main_thread(self, server):
        server.handle("-exec-run")
        payload = records(server.handle("-thread-info"))[0].payload
        threads = {t["id"]: t for t in payload["threads"]}
        assert 0 in threads
        assert threads[0]["state"] == "paused"

    def test_stop_payload_names_the_pausing_thread(self, write_program):
        server = make_server(write_program, PY_SERIAL_THREADS, "thr.py")
        server.handle("-break-insert worker")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["thread"] == 1
        assert payload["thread-name"] == "w1"

    def test_thread_scoped_breakpoint_option(self, write_program):
        server = make_server(write_program, PY_SERIAL_THREADS, "thr.py")
        server.handle('-break-insert worker --thread "2"')
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["thread"] == 2
        assert payload["thread-name"] == "w2"
        # Exactly one hit: the next continue runs to exit.
        for _ in range(5):
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
        assert payload["reason"] == "exited"

    def test_thread_info_while_paused_on_a_worker(self, write_program):
        server = make_server(write_program, PY_SERIAL_THREADS, "thr.py")
        server.handle("-break-insert worker")
        server.handle("-exec-run")
        server.handle("-exec-continue")  # breakpoint on w1
        payload = records(server.handle("-thread-info"))[0].payload
        threads = {t["id"]: t for t in payload["threads"]}
        assert {0, 1} <= set(threads)
        assert threads[1]["name"] == "w1"
        assert threads[1]["state"] == "paused"
        assert threads[0]["state"] in ("running", "blocked", "parked")
