"""Tests for the server-side C state renderer (the inspection command)."""

import pytest

from repro.core.state import AbstractType, Location
from repro.minic.events import LineEvent
from repro.minic.interpreter import Interpreter
from repro.minic.parser import parse
from repro.mi.staterender import CStateRenderer, render_watch


def paused_at(source, line):
    """Run until the first LineEvent at `line`; return the live interpreter."""
    interpreter = Interpreter(parse(source, "prog.c"))
    generator = interpreter.run()
    for event in generator:
        if isinstance(event, LineEvent) and event.line == line:
            return interpreter, generator
    raise AssertionError(f"line {line} never reached")


class TestScalars:
    SOURCE = """\
int g = 7;

int main(void) {
    int i = -5;
    double d = 2.5;
    char c = 'Z';
    long l = 123456789012;
    return 0;                 /* line 9 */
}
"""

    def test_locals_and_types(self):
        interpreter, _ = paused_at(self.SOURCE, 8)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.name == "main"
        values = {n: v.value for n, v in frame.variables.items()}
        assert values["i"].content == -5
        assert values["i"].language_type == "int"
        assert values["d"].content == 2.5
        assert values["c"].content == "Z"
        assert values["l"].content == 123456789012
        assert all(v.location is Location.STACK for v in values.values())

    def test_addresses_are_real(self):
        interpreter, _ = paused_at(self.SOURCE, 8)
        frame = CStateRenderer(interpreter).frame_chain()
        address = frame.variables["i"].value.address
        assert interpreter.memory.segment_of(address) == "stack"

    def test_globals(self):
        interpreter, _ = paused_at(self.SOURCE, 8)
        globals_map = CStateRenderer(interpreter).globals()
        assert globals_map["g"].value.content == 7
        assert globals_map["g"].value.location is Location.GLOBAL
        assert globals_map["g"].scope == "global"


class TestPointers:
    def test_pointer_to_stack_is_ref(self):
        source = (
            "int main(void) {\n"
            "    int a = 5;\n"
            "    int *p = &a;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        pointer = frame.variables["p"].value
        assert pointer.abstract_type is AbstractType.REF
        assert pointer.content.content == 5
        assert pointer.content.location is Location.STACK

    def test_null_pointer_is_invalid(self):
        source = "int main(void) {\n    int *p = NULL;\n    return 0;\n}\n"
        interpreter, _ = paused_at(source, 3)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["p"].value.abstract_type is AbstractType.INVALID

    def test_uninitialized_pointer_is_invalid(self):
        source = "int main(void) {\n    int *p;\n    int q = 0;\n    return 0;\n}\n"
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["p"].value.abstract_type is AbstractType.INVALID

    def test_dangling_pointer_is_invalid(self):
        source = (
            "int main(void) {\n"
            "    int *p = malloc(4);\n"
            "    free(p);\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["p"].value.abstract_type is AbstractType.INVALID

    def test_char_pointer_is_primitive_string(self):
        source = (
            "int main(void) {\n"
            '    char *msg = "hello";\n'
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 3)
        frame = CStateRenderer(interpreter).frame_chain()
        msg = frame.variables["msg"].value
        assert msg.abstract_type is AbstractType.PRIMITIVE
        assert msg.content == "hello"
        assert msg.language_type == "char*"

    def test_function_pointer(self):
        source = (
            "int twice(int x) { return 2 * x; }\n"
            "int main(void) {\n"
            "    int (*op)(int) = twice;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        op = frame.variables["op"].value
        assert op.abstract_type is AbstractType.FUNCTION
        assert op.content == "twice"


class TestHeap:
    def test_malloc_block_renders_as_list(self):
        source = (
            "int main(void) {\n"
            "    int *data = malloc(3 * sizeof(int));\n"
            "    data[0] = 10; data[1] = 20; data[2] = 30;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        pointer = frame.variables["data"].value
        assert pointer.abstract_type is AbstractType.REF
        block = pointer.content
        assert block.abstract_type is AbstractType.LIST
        assert [v.content for v in block.content] == [10, 20, 30]
        assert block.location is Location.HEAP

    def test_single_element_block_renders_scalar(self):
        source = (
            "int main(void) {\n"
            "    int *one = malloc(sizeof(int));\n"
            "    *one = 9;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["one"].value.content.content == 9

    def test_shared_heap_target_is_same_value(self):
        source = (
            "int main(void) {\n"
            "    int *a = malloc(2 * sizeof(int));\n"
            "    int *b = a;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 4)
        frame = CStateRenderer(interpreter).frame_chain()
        first = frame.variables["a"].value.content
        second = frame.variables["b"].value.content
        assert first is second


class TestAggregates:
    def test_array_renders_as_list(self):
        source = (
            "int main(void) {\n"
            "    int arr[3] = {1, 2, 3};\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 3)
        frame = CStateRenderer(interpreter).frame_chain()
        arr = frame.variables["arr"].value
        assert arr.abstract_type is AbstractType.LIST
        assert [v.content for v in arr.content] == [1, 2, 3]
        assert arr.language_type == "int[3]"

    def test_char_array_is_string(self):
        source = (
            "int main(void) {\n"
            '    char buf[8] = "ok";\n'
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 3)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["buf"].value.content == "ok"

    def test_struct_renders_fields(self):
        source = (
            "struct point { int x; int y; };\n"
            "int main(void) {\n"
            "    struct point p;\n"
            "    p.x = 3; p.y = 4;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 5)
        frame = CStateRenderer(interpreter).frame_chain()
        p = frame.variables["p"].value
        assert p.abstract_type is AbstractType.STRUCT
        assert p.content["x"].content == 3
        assert p.content["y"].content == 4
        assert p.language_type == "struct point"

    def test_linked_list_cycle_terminates(self):
        source = (
            "struct node { int v; struct node *next; };\n"
            "int main(void) {\n"
            "    struct node a;\n"
            "    a.v = 1;\n"
            "    a.next = &a;\n"  # self-cycle
            "    int done = 1;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 7)
        frame = CStateRenderer(interpreter).frame_chain()
        a = frame.variables["a"].value
        # The next pointer refers back to the same struct Value.
        assert a.content["next"].content is a

    def test_frame_chain_depths(self):
        source = (
            "int inner(int k) {\n"
            "    return k;\n"
            "}\n"
            "int main(void) {\n"
            "    return inner(1);\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 2)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.name == "inner"
        assert frame.depth == 1
        assert frame.parent.name == "main"
        assert frame.parent.depth == 0

    def test_argument_scope_marked(self):
        source = "int f(int a) {\n    return a;\n}\nint main(void) { return f(1); }\n"
        interpreter, _ = paused_at(source, 2)
        frame = CStateRenderer(interpreter).frame_chain()
        assert frame.variables["a"].scope == "argument"


class TestComplexShapes:
    def test_double_pointer(self):
        source = (
            "int main(void) {\n"
            "    int a = 5;\n"
            "    int *p = &a;\n"
            "    int **pp = &p;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 5)
        frame = CStateRenderer(interpreter).frame_chain()
        pp = frame.variables["pp"].value
        assert pp.abstract_type is AbstractType.REF
        inner = pp.content
        assert inner.abstract_type is AbstractType.REF
        assert inner.content.content == 5

    def test_array_of_structs(self):
        source = (
            "struct point { int x; int y; };\n"
            "int main(void) {\n"
            "    struct point pts[2];\n"
            "    pts[0].x = 1; pts[0].y = 2;\n"
            "    pts[1].x = 3; pts[1].y = 4;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 6)
        frame = CStateRenderer(interpreter).frame_chain()
        pts = frame.variables["pts"].value
        assert pts.abstract_type is AbstractType.LIST
        assert pts.content[1].content["y"].content == 4

    def test_struct_with_pointer_into_heap_array(self):
        source = (
            "struct holder { int *data; int count; };\n"
            "int main(void) {\n"
            "    struct holder h;\n"
            "    h.count = 2;\n"
            "    h.data = malloc(2 * sizeof(int));\n"
            "    h.data[0] = 10; h.data[1] = 20;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 7)
        frame = CStateRenderer(interpreter).frame_chain()
        holder = frame.variables["h"].value
        data = holder.content["data"]
        assert data.abstract_type is AbstractType.REF
        assert [v.content for v in data.content.content] == [10, 20]

    def test_pointer_into_middle_of_heap_block(self):
        source = (
            "int main(void) {\n"
            "    int *base = malloc(4 * sizeof(int));\n"
            "    base[2] = 77;\n"
            "    int *mid = base + 2;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 5)
        frame = CStateRenderer(interpreter).frame_chain()
        mid = frame.variables["mid"].value
        # Not at the block start: renders the single pointee, not the array.
        assert mid.abstract_type is AbstractType.REF
        assert mid.content.content == 77

    def test_linked_list_chain_renders_fully(self):
        source = (
            "struct node { int v; struct node *next; };\n"
            "int main(void) {\n"
            "    struct node c; c.v = 3; c.next = NULL;\n"
            "    struct node b; b.v = 2; b.next = &c;\n"
            "    struct node a; a.v = 1; a.next = &b;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, _ = paused_at(source, 6)
        frame = CStateRenderer(interpreter).frame_chain()
        a = frame.variables["a"].value
        b = a.content["next"].content
        c = b.content["next"].content
        assert (a.content["v"].content, b.content["v"].content,
                c.content["v"].content) == (1, 2, 3)
        assert c.content["next"].abstract_type is AbstractType.INVALID


class TestRenderWatch:
    def test_watch_tracks_bytes(self):
        source = (
            "int main(void) {\n"
            "    int x = 1;\n"
            "    x = 2;\n"
            "    return 0;\n"
            "}\n"
        )
        interpreter, generator = paused_at(source, 3)
        before = render_watch(interpreter, None, "x")
        for event in generator:
            if isinstance(event, LineEvent) and event.line == 4:
                break
        after = render_watch(interpreter, None, "x")
        assert before != after

    def test_watch_missing_variable_is_none(self):
        source = "int main(void) {\n    return 0;\n}\n"
        interpreter, _ = paused_at(source, 2)
        assert render_watch(interpreter, None, "ghost") is None
        assert render_watch(interpreter, "nowhere", "x") is None

    def test_watch_global_fallback(self):
        source = "int g = 3;\nint main(void) {\n    return 0;\n}\n"
        interpreter, _ = paused_at(source, 3)
        assert render_watch(interpreter, None, "g") is not None
