"""Tests for the RISC-V assembler."""

import pytest

from repro.riscv.assembler import (
    AsmError,
    DATA_BASE,
    TEXT_BASE,
    assemble,
)


class TestLayout:
    def test_instructions_are_4_bytes_apart(self):
        program = assemble("main:\n  addi t0, x0, 1\n  addi t1, x0, 2\n")
        addresses = [i.address for i in program.instructions]
        assert addresses == [TEXT_BASE, TEXT_BASE + 4]

    def test_text_labels_resolve(self):
        program = assemble("main:\n  nop\nloop:\n  j loop\n")
        assert program.symbols["main"] == TEXT_BASE
        assert program.symbols["loop"] == TEXT_BASE + 4
        jump = program.instructions[1]
        assert jump.operands == (0, TEXT_BASE + 4)

    def test_data_labels_resolve(self):
        program = assemble(".data\nvalue: .word 42\nmain:\n")
        assert program.symbols["value"] == DATA_BASE
        assert program.data[:4] == (42).to_bytes(4, "little")

    def test_entry_defaults_to_main(self):
        program = assemble("helper:\n  nop\nmain:\n  nop\n")
        assert program.entry == program.symbols["main"]

    def test_duplicate_label_raises(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("a:\n  nop\na:\n  nop\n")


class TestDirectives:
    def test_word_list(self):
        program = assemble(".data\narr: .word 1, 2, -1\n")
        assert len(program.data) == 12
        assert program.data[8:12] == b"\xff\xff\xff\xff"

    def test_byte_and_half(self):
        program = assemble(".data\nx: .byte 1, 2\ny: .half 0x1234\n")
        assert program.data == b"\x01\x02\x34\x12"

    def test_asciz_appends_nul(self):
        program = assemble('.data\nmsg: .asciz "hi"\n')
        assert program.data == b"hi\x00"

    def test_string_escapes(self):
        program = assemble('.data\nmsg: .asciz "a\\nb"\n')
        assert program.data == b"a\nb\x00"

    def test_space_and_align(self):
        program = assemble(".data\na: .byte 1\n.align 2\nb: .word 5\n")
        assert program.symbols["b"] % 4 == 0

    def test_globl_ignored(self):
        program = assemble(".globl main\nmain:\n  nop\n")
        assert program.symbols["main"] == TEXT_BASE

    def test_unknown_directive_raises(self):
        with pytest.raises(AsmError, match="directive"):
            assemble(".bogus 1\n")

    def test_instruction_in_data_section_raises(self):
        with pytest.raises(AsmError, match="outside"):
            assemble(".data\n  addi t0, x0, 1\n")


class TestRegisters:
    def test_abi_and_numeric_names_agree(self):
        program = assemble("main:\n  add a0, x10, a0\n")
        rd, rs1, rs2 = program.instructions[0].operands
        assert rd == rs1 == rs2 == 10

    def test_fp_is_s0(self):
        program = assemble("main:\n  mv fp, s0\n")
        assert program.instructions[0].operands[:2] == (8, 8)

    def test_unknown_register_raises(self):
        with pytest.raises(AsmError, match="register"):
            assemble("main:\n  add q7, x0, x0\n")


class TestPseudoInstructions:
    def expand(self, text):
        return assemble(f"main:\n  {text}\n").instructions[0]

    def test_nop(self):
        instruction = self.expand("nop")
        assert instruction.mnemonic == "addi"
        assert instruction.operands == (0, 0, 0)

    def test_mv(self):
        assert self.expand("mv t0, t1").operands == (5, 6, 0)

    def test_not_neg(self):
        assert self.expand("not t0, t1").mnemonic == "xori"
        assert self.expand("neg t0, t1").mnemonic == "sub"

    def test_ret_is_jalr_zero_ra(self):
        instruction = self.expand("ret")
        assert instruction.mnemonic == "jalr"
        assert instruction.operands == (0, 1, 0)
        assert instruction.is_return()

    def test_call_links_ra(self):
        program = assemble("main:\n  call f\nf:\n  ret\n")
        assert program.instructions[0].mnemonic == "jal"
        assert program.instructions[0].operands[0] == 1

    def test_branch_pseudos(self):
        program = assemble(
            "main:\nx:\n  beqz t0, x\n  bnez t0, x\n  ble t0, t1, x\n  bgt t0, t1, x\n"
        )
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics == ["beq", "bne", "bge", "blt"]
        # ble swaps operands: bge t1, t0
        assert program.instructions[2].operands[:2] == (6, 5)

    def test_seqz_snez(self):
        assert self.expand("seqz t0, t1").mnemonic == "sltiu"
        assert self.expand("snez t0, t1").mnemonic == "sltu"

    def test_li_small_is_addi(self):
        instruction = self.expand("li t0, -5")
        assert instruction.mnemonic == "addi"
        assert instruction.operands == (5, 0, -5)

    def test_li_large_is_lui_addi_pair(self):
        program = assemble("main:\n  li t0, 100000\n")
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics == ["lui", "addi"]
        hi = program.instructions[0].operands[1]
        lo = program.instructions[1].operands[2]
        assert ((hi << 12) + lo) & 0xFFFFFFFF == 100000

    def test_la_is_lui_addi_pair(self):
        program = assemble(".data\nv: .word 0\n.text\nmain:\n  la t0, v\n")
        mnemonics = [i.mnemonic for i in program.instructions]
        assert mnemonics == ["lui", "addi"]
        hi = program.instructions[0].operands[1]
        lo = program.instructions[1].operands[2]
        assert ((hi << 12) + lo) & 0xFFFFFFFF == DATA_BASE
        # Both halves carry the original source line and text.
        assert program.instructions[0].line == program.instructions[1].line

    def test_char_immediate(self):
        instruction = self.expand("li a0, 'A'")
        assert instruction.mnemonic == "addi"
        assert instruction.operands == (10, 0, 65)


class TestOperandForms:
    def test_memory_operand(self):
        program = assemble("main:\n  lw t0, -8(sp)\n")
        assert program.instructions[0].operands == (5, 2, -8)

    def test_bare_symbol_load(self):
        program = assemble(".data\nv: .word 3\n.text\nmain:\n  lw t0, v\n")
        assert program.instructions[0].operands == (5, 0, DATA_BASE)

    def test_hex_immediates(self):
        program = assemble("main:\n  addi t0, x0, 0x7f\n")
        assert program.instructions[0].operands[2] == 127

    def test_unknown_label_raises(self):
        with pytest.raises(AsmError, match="unknown label"):
            assemble("main:\n  j nowhere\n")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AsmError):
            assemble("main:\n  add t0, t1\n")

    def test_unknown_instruction_raises(self):
        with pytest.raises(AsmError, match="unknown instruction"):
            assemble("main:\n  frobnicate t0\n")

    def test_comments_stripped(self):
        program = assemble("main: # entry\n  nop # do nothing\n  nop ; also\n")
        assert len(program.instructions) == 2


class TestFunctionQueries:
    SOURCE = (
        "main:\n  call f\n  li a7, 10\n  ecall\n"
        "f:\n  addi a0, a0, 1\n  ret\n"
        "g:\n  ret\n"
    )

    def test_function_of(self):
        program = assemble(self.SOURCE)
        assert program.function_of(program.symbols["f"]) == "f"
        assert program.function_of(program.symbols["f"] + 4) == "f"
        assert program.function_of(program.symbols["g"]) == "g"
        assert program.function_of(TEXT_BASE) == "main"

    def test_function_body_bounds(self):
        program = assemble(self.SOURCE)
        body = program.function_body("f")
        assert len(body) == 2
        assert body[-1].is_return()

    def test_function_body_unknown_raises(self):
        with pytest.raises(AsmError):
            assemble(self.SOURCE).function_body("missing")

    def test_ret_scan_finds_single_return(self):
        program = assemble(self.SOURCE)
        returns = [i for i in program.function_body("f") if i.is_return()]
        assert len(returns) == 1

    def test_instruction_at(self):
        program = assemble(self.SOURCE)
        assert program.instruction_at(TEXT_BASE).mnemonic == "jal"
        assert program.instruction_at(TEXT_BASE - 4) is None
        assert program.instruction_at(TEXT_BASE + 4000) is None

    def test_lines_recorded(self):
        program = assemble(self.SOURCE)
        # "main:" is line 1; the first instruction is on line 2.
        assert program.instructions[0].line == 2
