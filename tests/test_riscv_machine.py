"""Tests for the RISC-V machine simulator."""

import pytest

from repro.minic.events import (
    CallEvent,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
)
from repro.riscv.assembler import DATA_BASE, assemble
from repro.riscv.machine import Machine, MachineFault, STACK_TOP


def run_asm(source, max_steps=100000):
    machine = Machine(assemble(source), max_steps=max_steps)
    events = list(machine.run())
    return machine, events


EXIT = "  li a7, 93\n  ecall\n"


class TestArithmetic:
    def test_addi_and_exit_code(self):
        machine, _ = run_asm("main:\n  li a0, 42\n" + EXIT)
        assert machine.exit_code == 42

    def test_register_zero_is_immutable(self):
        machine, _ = run_asm(
            "main:\n  addi x0, x0, 99\n  addi a0, x0, 0\n" + EXIT
        )
        assert machine.exit_code == 0

    def test_rtype_operations(self):
        machine, _ = run_asm(
            "main:\n"
            "  li t0, 6\n  li t1, 3\n"
            "  add s0, t0, t1\n"
            "  sub s1, t0, t1\n"
            "  mul s2, t0, t1\n"
            "  and s3, t0, t1\n"
            "  or s4, t0, t1\n"
            "  xor s5, t0, t1\n"
            "  li a0, 0\n" + EXIT
        )
        regs = machine.register_map()
        assert regs["s0"] == 9
        assert regs["s1"] == 3
        assert regs["s2"] == 18
        assert regs["s3"] == 2
        assert regs["s4"] == 7
        assert regs["s5"] == 5

    def test_div_rem_signs(self):
        machine, _ = run_asm(
            "main:\n  li t0, -7\n  li t1, 2\n"
            "  div s0, t0, t1\n  rem s1, t0, t1\n  li a0, 0\n" + EXIT
        )
        regs = machine.registers
        assert regs[8] == -3  # s0: truncation toward zero
        assert regs[9] == -1  # s1

    def test_division_by_zero_riscv_semantics(self):
        machine, _ = run_asm(
            "main:\n  li t0, 5\n  div s0, t0, x0\n  rem s1, t0, x0\n  li a0, 0\n"
            + EXIT
        )
        assert machine.registers[8] == -1
        assert machine.registers[9] == 5

    def test_shifts_and_sra(self):
        machine, _ = run_asm(
            "main:\n  li t0, -8\n"
            "  srai s0, t0, 1\n"
            "  srli s1, t0, 28\n"
            "  slli s2, t0, 1\n  li a0, 0\n" + EXIT
        )
        assert machine.registers[8] == -4
        assert machine.registers[9] == 15
        assert machine.registers[10 + 8] == -16

    def test_slt_and_sltu(self):
        machine, _ = run_asm(
            "main:\n  li t0, -1\n  li t1, 1\n"
            "  slt s0, t0, t1\n"
            "  sltu s1, t0, t1\n  li a0, 0\n" + EXIT  # -1 unsigned is huge
        )
        assert machine.registers[8] == 1
        assert machine.registers[9] == 0

    def test_lui_builds_upper_bits(self):
        machine, _ = run_asm("main:\n  lui t0, 0x12345\n  li a0, 0\n" + EXIT)
        assert machine.registers[5] == 0x12345000


class TestMemory:
    def test_data_segment_load_store(self):
        machine, _ = run_asm(
            ".data\nv: .word 7\nw: .word 0\n"
            ".text\nmain:\n"
            "  lw t0, v\n"
            "  addi t0, t0, 1\n"
            "  la t1, w\n"
            "  sw t0, 0(t1)\n"
            "  lw a0, w\n" + EXIT
        )
        assert machine.exit_code == 8

    def test_stack_push_pop(self):
        machine, _ = run_asm(
            "main:\n"
            "  addi sp, sp, -8\n"
            "  li t0, 123\n"
            "  sw t0, 4(sp)\n"
            "  lw a0, 4(sp)\n"
            "  addi sp, sp, 8\n" + EXIT
        )
        assert machine.exit_code == 123

    def test_byte_and_half_access(self):
        machine, _ = run_asm(
            ".data\nbuf: .space 8\n"
            ".text\nmain:\n"
            "  la t0, buf\n"
            "  li t1, -2\n"
            "  sb t1, 0(t0)\n"
            "  lbu s0, 0(t0)\n"
            "  lb s1, 0(t0)\n"
            "  li a0, 0\n" + EXIT
        )
        assert machine.registers[8] == 254
        assert machine.registers[9] == -2

    def test_invalid_access_faults_gracefully(self):
        machine, events = run_asm("main:\n  lw t0, 64(x0)\n" + EXIT)
        assert machine.exit_code == 139
        assert "invalid read" in machine.error
        assert isinstance(events[-1], ExitEvent)

    def test_sbrk_heap(self):
        machine, _ = run_asm(
            "main:\n"
            "  li a0, 16\n  li a7, 9\n  ecall\n"  # sbrk(16)
            "  li t0, 77\n  sw t0, 0(a0)\n  lw a0, 0(a0)\n" + EXIT
        )
        assert machine.exit_code == 77


class TestControlFlow:
    def test_loop_sums(self):
        machine, _ = run_asm(
            "main:\n"
            "  li t0, 0\n  li t1, 5\n"
            "loop:\n"
            "  beqz t1, done\n"
            "  add t0, t0, t1\n"
            "  addi t1, t1, -1\n"
            "  j loop\n"
            "done:\n  mv a0, t0\n" + EXIT
        )
        assert machine.exit_code == 15

    def test_branch_variants(self):
        machine, _ = run_asm(
            "main:\n  li t0, 3\n  li t1, 5\n  li a0, 0\n"
            "  blt t0, t1, ok1\n  j fail\n"
            "ok1:\n  bge t1, t0, ok2\n  j fail\n"
            "ok2:\n  bne t0, t1, ok3\n  j fail\n"
            "ok3:\n  beq t0, t0, ok4\n  j fail\n"
            "fail:\n  li a0, 1\n" + EXIT
            + "ok4:\n  li a0, 42\n" + EXIT
        )
        assert machine.exit_code == 42

    def test_fib_function_calls(self):
        machine, events = run_asm(
            "main:\n"
            "  li a0, 9\n"
            "  call fib\n" + EXIT +
            "fib:\n"
            "  li t0, 2\n"
            "  blt a0, t0, base\n"
            "  addi sp, sp, -12\n"
            "  sw ra, 0(sp)\n"
            "  sw a0, 4(sp)\n"
            "  addi a0, a0, -1\n"
            "  call fib\n"
            "  sw a0, 8(sp)\n"
            "  lw a0, 4(sp)\n"
            "  addi a0, a0, -2\n"
            "  call fib\n"
            "  lw t1, 8(sp)\n"
            "  add a0, a0, t1\n"
            "  lw ra, 0(sp)\n"
            "  addi sp, sp, 12\n"
            "base:\n"
            "  ret\n",
            max_steps=1_000_000,
        )
        assert machine.exit_code == 34  # fib(9)
        calls = [e for e in events if isinstance(e, CallEvent)]
        returns = [e for e in events if isinstance(e, ReturnEvent)]
        assert len(calls) == len(returns)
        assert all(c.function == "fib" for c in calls)

    def test_call_stack_depth_tracking(self):
        machine, events = run_asm(
            "main:\n  call outer\n" + EXIT +
            "outer:\n"
            "  addi sp, sp, -4\n  sw ra, 0(sp)\n"
            "  call inner\n"
            "  lw ra, 0(sp)\n  addi sp, sp, 4\n  ret\n"
            "inner:\n  ret\n"
        )
        depths = {
            event.function: event.depth
            for event in events
            if isinstance(event, CallEvent)
        }
        assert depths == {"outer": 1, "inner": 2}

    def test_step_budget(self):
        machine, _ = run_asm("main:\n  j main\n", max_steps=100)
        assert machine.exit_code == 139
        assert "budget" in machine.error

    def test_pc_out_of_text_faults(self):
        machine, _ = run_asm("main:\n  nop\n")  # falls off the end
        assert machine.exit_code == 139
        assert "out of text" in machine.error


class TestEcalls:
    def test_print_services(self):
        machine, events = run_asm(
            '.data\nmsg: .asciz "n="\n'
            ".text\nmain:\n"
            "  la a0, msg\n  li a7, 4\n  ecall\n"
            "  li a0, 7\n  li a7, 1\n  ecall\n"
            "  li a0, 10\n  li a7, 11\n  ecall\n"
            "  li a7, 10\n  ecall\n"
        )
        assert "".join(machine.output) == "n=7\n"
        assert machine.exit_code == 0
        assert any(isinstance(e, OutputEvent) for e in events)

    def test_unknown_service_faults(self):
        machine, _ = run_asm("main:\n  li a7, 999\n  ecall\n")
        assert machine.exit_code == 139

    def test_ebreak_faults(self):
        machine, _ = run_asm("main:\n  ebreak\n")
        assert "ebreak" in machine.error


class TestInspection:
    def test_register_map_has_abi_names_and_pc(self):
        machine = Machine(assemble("main:\n  nop\n" + EXIT))
        registers = machine.register_map()
        assert set(["zero", "ra", "sp", "a0", "t6", "pc"]) <= set(registers)
        assert registers["sp"] == STACK_TOP

    def test_line_events_match_source_lines(self):
        machine, events = run_asm("main:\n  li a0, 1\n  li a7, 93\n  ecall\n")
        lines = [e.line for e in events if isinstance(e, LineEvent)]
        assert lines == [2, 3, 4]

    def test_read_memory_spans_data(self):
        machine, _ = run_asm(".data\nv: .word 0x11223344\n.text\nmain:\n" + EXIT)
        assert machine.read_memory(DATA_BASE, 4) == b"\x44\x33\x22\x11"

    def test_text_segment_readable_as_machine_words(self):
        from repro.riscv.assembler import TEXT_BASE
        from repro.riscv.encoding import decode

        machine = Machine(assemble("main:\n  addi t0, x0, 5\n  ecall\n"))
        word = machine.read_word(TEXT_BASE)
        assert decode(word, TEXT_BASE) == ("addi", (5, 0, 5))

    def test_text_segment_not_writable(self):
        from repro.riscv.assembler import TEXT_BASE

        machine = Machine(assemble("main:\n  nop\n"))
        with pytest.raises(MachineFault):
            machine.write_word(TEXT_BASE, 0)

    def test_get_register_by_names(self):
        machine = Machine(assemble("main:\n  nop\n"))
        assert machine.get_register("sp") == machine.get_register("x2")
        assert machine.get_register("pc") == machine.pc
        with pytest.raises(MachineFault):
            machine.get_register("nope")
