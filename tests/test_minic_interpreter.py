"""Tests for the mini-C interpreter: semantics, events, runtime errors."""

import pytest

from repro.minic.events import (
    AllocEvent,
    CallEvent,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
    WriteEvent,
)
from repro.minic.interpreter import Interpreter
from repro.minic.parser import parse


def run_program(source, args=None):
    """Execute source; return (exit_code, stdout, events, interpreter)."""
    interpreter = Interpreter(parse(source), args=args)
    output = []
    events = []
    for event in interpreter.run():
        events.append(event)
        if isinstance(event, OutputEvent):
            output.append(event.text)
    return interpreter.exit_code, "".join(output), events, interpreter


def run_main(body, prelude=""):
    source = f"{prelude}\nint main(void) {{ {body} }}\n"
    return run_program(source)


class TestArithmetic:
    def test_exit_code_is_main_return(self):
        code, _, _, _ = run_main("return 7;")
        assert code == 7

    def test_integer_operations(self):
        code, out, _, _ = run_main(
            'printf("%d %d %d %d %d", 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);'
            "return 0;"
        )
        assert out == "10 4 21 2 1"

    def test_c_division_truncates_toward_zero(self):
        _, out, _, _ = run_main('printf("%d %d", -7 / 2, -7 % 2); return 0;')
        assert out == "-3 -1"

    def test_division_by_zero_is_runtime_error(self):
        code, _, _, interpreter = run_main("int z = 0; return 1 / z;")
        assert code == 136
        assert "division by zero" in interpreter.error

    def test_bitwise_and_shifts(self):
        _, out, _, _ = run_main(
            'printf("%d %d %d %d %d", 6 & 3, 6 | 3, 6 ^ 3, 1 << 4, 32 >> 2);'
            "return 0;"
        )
        assert out == "2 7 5 16 8"

    def test_comparisons_yield_int(self):
        _, out, _, _ = run_main(
            'printf("%d%d%d%d%d%d", 1 < 2, 2 <= 2, 3 > 2, 3 >= 4, 1 == 1, 1 != 1);'
            "return 0;"
        )
        assert out == "111010"

    def test_short_circuit_evaluation(self):
        # The right operand would divide by zero if evaluated.
        code, out, _, _ = run_main(
            "int z = 0;\n"
            'if (z != 0 && 1 / z) { printf("bad"); }\n'
            'if (z == 0 || 1 / z) { printf("ok"); }\n'
            "return 0;"
        )
        assert code == 0
        assert out == "ok"

    def test_float_arithmetic_and_printf(self):
        _, out, _, _ = run_main(
            'double d = 1.5; float f = 2.5; printf("%.2f", d * f); return 0;'
        )
        assert out == "3.75"

    def test_int_overflow_wraps_at_store(self):
        _, out, _, _ = run_main(
            "int big = 2147483647; big = big + 1;\n"
            'printf("%d", big); return 0;'
        )
        assert out == "-2147483648"

    def test_char_arithmetic(self):
        _, out, _, _ = run_main("char c = 'A'; c = c + 1; printf(\"%c\", c); return 0;")
        assert out == "B"

    def test_ternary_and_comma(self):
        _, out, _, _ = run_main(
            'int x = (1, 2, 3); printf("%d %d", x, x > 2 ? 10 : 20); return 0;'
        )
        assert out == "3 10"

    def test_increment_decrement_semantics(self):
        _, out, _, _ = run_main(
            'int i = 5; printf("%d %d %d %d %d", i++, i, ++i, i--, --i);'
            "return 0;"
        )
        assert out == "5 6 7 7 5"

    def test_compound_assignment(self):
        _, out, _, _ = run_main(
            "int x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4;\n"
            'printf("%d", x); return 0;'
        )
        assert out == "2"

    def test_sizeof(self):
        _, out, _, _ = run_main(
            'printf("%zu %zu %zu %zu", sizeof(int), sizeof(long), '
            "sizeof(double), sizeof(int*)); return 0;"
        )
        assert out == "4 8 8 8"

    def test_casts(self):
        _, out, _, _ = run_main(
            'printf("%d %.1f %d", (int)3.9, (double)7 / 2, (char)321); return 0;'
        )
        assert out == "3 3.5 65"


class TestControlFlow:
    def test_while_loop(self):
        _, out, _, _ = run_main(
            "int i = 0; int s = 0; while (i < 5) { s += i; i++; }\n"
            'printf("%d", s); return 0;'
        )
        assert out == "10"

    def test_for_with_break_continue(self):
        _, out, _, _ = run_main(
            "int s = 0;\n"
            "for (int i = 0; i < 10; i++) {\n"
            "    if (i == 7) break;\n"
            "    if (i % 2) continue;\n"
            "    s += i;\n"
            "}\n"
            'printf("%d", s); return 0;'
        )
        assert out == "12"  # 0+2+4+6

    def test_do_while_runs_at_least_once(self):
        _, out, _, _ = run_main(
            'int i = 100; do { printf("x"); i++; } while (i < 100); return 0;'
        )
        assert out == "x"

    def test_nested_loops(self):
        _, out, _, _ = run_main(
            "int count = 0;\n"
            "for (int i = 0; i < 3; i++)\n"
            "    for (int j = 0; j < 3; j++)\n"
            "        if (i == j) count++;\n"
            'printf("%d", count); return 0;'
        )
        assert out == "3"

    def test_step_budget_catches_infinite_loop(self):
        interpreter = Interpreter(
            parse("int main(void) { while (1) {} return 0; }"), max_steps=1000
        )
        for _ in interpreter.run():
            pass
        assert interpreter.exit_code == 1
        assert "budget" in interpreter.error


class TestFunctions:
    def test_recursion(self):
        _, out, _, _ = run_program(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
            'int main(void) { printf("%d", fib(12)); return 0; }'
        )
        assert out == "144"

    def test_mutual_recursion(self):
        _, out, _, _ = run_program(
            "int is_odd(int n);\n"
            "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n"
            "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n"
            'int main(void) { printf("%d%d", is_even(10), is_odd(10)); return 0; }'
        )
        assert out == "10"

    def test_void_function(self):
        _, out, _, _ = run_program(
            "int counter = 0;\n"
            "void bump(void) { counter++; }\n"
            "int main(void) { bump(); bump(); return counter; }"
        )
        code, _, _, _ = run_program(
            "int counter = 0;\n"
            "void bump(void) { counter++; }\n"
            "int main(void) { bump(); bump(); return counter; }"
        )
        assert code == 2

    def test_arguments_passed_by_value(self):
        code, _, _, _ = run_program(
            "void try_change(int x) { x = 99; }\n"
            "int main(void) { int a = 1; try_change(a); return a; }"
        )
        assert code == 1

    def test_wrong_arity_is_runtime_error(self):
        code, _, _, interpreter = run_program(
            "int f(int a) { return a; }\n"
            "int main(void) { return f(1, 2); }"
        )
        assert code == 1
        assert "expects" in interpreter.error

    def test_undefined_function_is_error(self):
        code, _, _, interpreter = run_program("int main(void) { return ghost(); }")
        assert code == 1
        assert "undefined function" in interpreter.error

    def test_missing_main_is_error(self):
        code, _, _, interpreter = run_program("int helper(void) { return 1; }")
        assert code == 1
        assert "main" in interpreter.error

    def test_runaway_recursion_is_stack_overflow(self):
        code, _, _, interpreter = run_program(
            "int f(int n) { return f(n + 1); }\n"
            "int main(void) { return f(0); }"
        )
        assert code == 139  # the SIGSEGV analog, as on real hardware
        assert "stack overflow" in interpreter.error

    def test_deep_but_bounded_recursion_ok(self):
        code, _, _, _ = run_program(
            "int down(int n) { if (n == 0) { return 0; } return down(n - 1); }\n"
            "int main(void) { return down(150); }"
        )
        assert code == 0

    def test_function_pointers(self):
        _, out, _, _ = run_program(
            "int twice(int x) { return 2 * x; }\n"
            "int thrice(int x) { return 3 * x; }\n"
            "int main(void) {\n"
            "    int (*op)(int) = twice;\n"
            '    printf("%d ", op(10));\n'
            "    op = thrice;\n"
            '    printf("%d", op(10));\n'
            "    return 0;\n"
            "}"
        )
        assert out == "20 30"

    def test_exit_builtin(self):
        code, out, _, _ = run_main('printf("before"); exit(5); printf("after");')
        assert code == 5
        assert out == "before"

    def test_main_argc_argv(self):
        code, out, _, _ = run_program(
            "int main(int argc, char **argv) {\n"
            '    printf("%d %s", argc, argv[1]);\n'
            "    return 0;\n"
            "}",
            args=["hello"],
        )
        assert out.endswith("2 hello") or out.startswith("2 ")


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        code, _, _, _ = run_main("int a = 5; int *p = &a; *p = 9; return a;")
        assert code == 9

    def test_pointer_arithmetic_scales(self):
        _, out, _, _ = run_main(
            "int arr[4] = {10, 20, 30, 40};\n"
            "int *p = arr;\n"
            'printf("%d %d %d", *p, *(p + 2), p[3]); return 0;'
        )
        assert out == "10 30 40"

    def test_pointer_difference(self):
        _, out, _, _ = run_main(
            "int arr[8]; printf(\"%ld\", &arr[6] - &arr[1]); return 0;"
        )
        assert out == "5"

    def test_array_write_through_index(self):
        code, _, _, _ = run_main(
            "int arr[3] = {0, 0, 0}; arr[1] = 42; return arr[1];"
        )
        assert code == 42

    def test_out_of_segment_access_is_segfault(self):
        code, _, _, interpreter = run_main(
            "int *p = (int*)99999999; return *p;"
        )
        assert code == 139
        assert "invalid" in interpreter.error

    def test_use_after_free_is_segfault(self):
        code, _, _, _ = run_main(
            "int *p = malloc(sizeof(int)); *p = 1; free(p); return *p;"
        )
        assert code == 139

    def test_null_deref_is_segfault(self):
        code, _, _, _ = run_main("int *p = NULL; return *p;")
        assert code == 139

    def test_string_functions(self):
        _, out, _, _ = run_main(
            "char buf[16];\n"
            'strcpy(buf, "abc");\n'
            'printf("%zu %d %s", strlen(buf), strcmp(buf, "abc"), buf);'
            "return 0;"
        )
        assert out == "3 0 abc"

    def test_char_array_string_initializer(self):
        _, out, _, _ = run_main('char msg[] = "hey"; printf("%s", msg); return 0;')
        assert out == "hey"

    def test_two_dimensional_indexing(self):
        _, out, _, _ = run_main(
            "int m[2][3] = {{1, 2, 3}, {4, 5, 6}};\n"
            'printf("%d %d", m[0][2], m[1][0]); return 0;'
        )
        assert out == "3 4"

    def test_memset_memcpy(self):
        _, out, _, _ = run_main(
            "int a[2]; int b[2];\n"
            "memset(a, 0, sizeof(a)); a[1] = 7;\n"
            "memcpy(b, a, sizeof(a));\n"
            'printf("%d %d", b[0], b[1]); return 0;'
        )
        assert out == "0 7"


class TestStructs:
    PRELUDE = "struct point { int x; int y; };\n"

    def test_member_access_and_assignment(self):
        code, _, _, _ = run_main(
            "struct point p; p.x = 3; p.y = 4; return p.x + p.y;",
            prelude=self.PRELUDE,
        )
        assert code == 7

    def test_struct_copy_semantics(self):
        code, _, _, _ = run_main(
            "struct point a; a.x = 1; a.y = 2;\n"
            "struct point b = a; b.x = 99;\n"
            "return a.x;",
            prelude=self.PRELUDE,
        )
        assert code == 1

    def test_arrow_through_pointer(self):
        code, _, _, _ = run_main(
            "struct point p; struct point *q = &p; q->x = 11; return p.x;",
            prelude=self.PRELUDE,
        )
        assert code == 11

    def test_heap_allocated_struct(self):
        code, _, _, _ = run_main(
            "struct point *p = malloc(sizeof(struct point));\n"
            "p->x = 20; p->y = 22;\n"
            "int s = p->x + p->y; free(p); return s;",
            prelude=self.PRELUDE,
        )
        assert code == 42

    def test_linked_list(self):
        code, _, _, _ = run_program(
            "struct node { int value; struct node *next; };\n"
            "int main(void) {\n"
            "    struct node c; c.value = 3; c.next = NULL;\n"
            "    struct node b; b.value = 2; b.next = &c;\n"
            "    struct node a; a.value = 1; a.next = &b;\n"
            "    int total = 0;\n"
            "    struct node *cur = &a;\n"
            "    while (cur != NULL) { total += cur->value; cur = cur->next; }\n"
            "    return total;\n"
            "}"
        )
        assert code == 6

    def test_struct_by_value_argument(self):
        code, _, _, _ = run_program(
            self.PRELUDE
            + "int norm1(struct point p) { p.x = 0; return p.x + p.y; }\n"
            "int main(void) {\n"
            "    struct point p; p.x = 5; p.y = 7;\n"
            "    int n = norm1(p);\n"
            "    return p.x + n;\n"  # p.x unchanged: 5 + 7
            "}"
        )
        assert code == 12

    def test_nested_struct_initializer(self):
        code, _, _, _ = run_main(
            "struct point p = {8, 9}; return p.x * 10 + p.y;",
            prelude=self.PRELUDE,
        )
        assert code == 89


class TestEvents:
    def test_line_events_carry_function_and_depth(self):
        _, _, events, _ = run_program(
            "int f(void) { return 1; }\n"
            "int main(void) { int a = f(); return a; }"
        )
        line_events = [e for e in events if isinstance(e, LineEvent)]
        assert any(e.function == "f" and e.depth == 1 for e in line_events)
        assert any(e.function == "main" and e.depth == 0 for e in line_events)

    def test_call_and_return_events(self):
        _, _, events, _ = run_program(
            "int f(int x) { return x + 1; }\n"
            "int main(void) { return f(41); }"
        )
        calls = [e for e in events if isinstance(e, CallEvent)]
        returns = [e for e in events if isinstance(e, ReturnEvent)]
        assert [c.function for c in calls] == ["main", "f"]
        assert returns[0].function == "f"
        assert returns[0].value == "42"

    def test_alloc_events(self):
        _, _, events, _ = run_main(
            "int *p = malloc(8); p = realloc(p, 16); free(p); return 0;"
        )
        kinds = [e.kind for e in events if isinstance(e, AllocEvent)]
        assert kinds == ["malloc", "realloc", "free"]

    def test_write_events_for_named_assignments(self):
        _, _, events, _ = run_main("int a = 1; a = 2; a++; return a;")
        writes = [e.name for e in events if isinstance(e, WriteEvent)]
        assert writes == ["a", "a", "a"]

    def test_exit_event_is_last(self):
        _, _, events, _ = run_main("return 3;")
        assert isinstance(events[-1], ExitEvent)
        assert events[-1].code == 3

    def test_loop_re_emits_header_line(self):
        _, _, events, _ = run_program(
            "int main(void) {\n"
            "    int s = 0;\n"
            "    for (int i = 0; i < 3; i++) {\n"
            "        s += i;\n"
            "    }\n"
            "    return s;\n"
            "}"
        )
        header_hits = [
            e for e in events if isinstance(e, LineEvent) and e.line == 3
        ]
        assert len(header_hits) == 4  # once per iteration + final test


class TestEnumSwitchTypedef:
    def test_enum_values_usable_everywhere(self):
        _, out, _, _ = run_program(
            "enum color { RED, GREEN = 5, BLUE };\n"
            "int initial = BLUE;\n"
            'int main(void) { printf("%d %d %d", RED, initial, GREEN); return 0; }'
        )
        assert out == "0 6 5"

    def test_switch_dispatch_and_break(self):
        _, out, _, _ = run_main(
            "for (int i = 0; i < 4; i++) {\n"
            "    switch (i) {\n"
            '    case 0: printf("a"); break;\n'
            '    case 2: printf("c"); break;\n'
            '    default: printf("?");\n'
            "    }\n"
            "}\n"
            "return 0;"
        )
        assert out == "a?c?"

    def test_switch_fallthrough(self):
        _, out, _, _ = run_main(
            "switch (1) {\n"
            'case 1: printf("1");\n'
            'case 2: printf("2"); break;\n'
            'case 3: printf("3");\n'
            "}\n"
            "return 0;"
        )
        assert out == "12"

    def test_switch_no_match_no_default(self):
        code, out, _, _ = run_main(
            'switch (9) { case 1: printf("x"); } return 5;'
        )
        assert out == ""
        assert code == 5

    def test_switch_on_enum_like_the_papers_level(self):
        _, out, _, _ = run_program(
            "typedef enum { UP, DOWN, LEFT, RIGHT } orientation;\n"
            "orientation dir = LEFT;\n"
            "int main(void) {\n"
            "    switch (dir) {\n"
            '    case UP: printf("up"); break;\n'
            '    case LEFT: printf("left"); break;\n'
            '    default: printf("other");\n'
            "    }\n"
            "    return 0;\n"
            "}"
        )
        assert out == "left"

    def test_typedef_in_function_signatures(self):
        code, _, _, _ = run_program(
            "typedef int number;\n"
            "number add(number a, number b) { return a + b; }\n"
            "int main(void) { return add(20, 22); }"
        )
        assert code == 42

    def test_continue_inside_switch_inside_loop(self):
        _, out, _, _ = run_main(
            "for (int i = 0; i < 3; i++) {\n"
            "    switch (i) { case 1: continue; }\n"
            '    printf("%d", i);\n'
            "}\n"
            "return 0;"
        )
        assert out == "02"


class TestPrintf:
    def test_width_and_precision(self):
        _, out, _, _ = run_main('printf("[%5d][%-4d][%05.1f]", 42, 7, 3.14); return 0;')
        assert out == "[   42][7   ][003.1]"

    def test_hex_and_pointer(self):
        _, out, _, _ = run_main('printf("%x %X", 255, 255); return 0;')
        assert out == "ff FF"

    def test_percent_literal(self):
        _, out, _, _ = run_main('printf("100%%"); return 0;')
        assert out == "100%"

    def test_string_and_char(self):
        _, out, _, _ = run_main('printf("%s|%c", "ab", 99); return 0;')
        assert out == "ab|c"

    def test_puts_and_putchar(self):
        _, out, _, _ = run_main('puts("line"); putchar(33); return 0;')
        assert out == "line\n!"

    def test_missing_argument_is_error(self):
        code, _, _, interpreter = run_main('printf("%d"); return 0;')
        assert code == 1
        assert "missing argument" in interpreter.error


class TestExtraStdlib:
    def test_sprintf(self):
        _, out, _, _ = run_main(
            'char buf[32]; int n = sprintf(buf, "%d-%s", 42, "ok");\n'
            'printf("%s %d", buf, n); return 0;'
        )
        assert out == "42-ok 5"

    def test_strcat(self):
        _, out, _, _ = run_main(
            'char buf[32] = "foo"; strcat(buf, "bar");\n'
            'printf("%s", buf); return 0;'
        )
        assert out == "foobar"

    def test_strncmp(self):
        _, out, _, _ = run_main(
            'printf("%d %d", strncmp("abcdef", "abcxyz", 3),\n'
            '       strncmp("abcdef", "abcxyz", 4)); return 0;'
        )
        # glibc-style result: 0 when the prefix matches, else the byte
        # difference at the first mismatch ('d' - 'x' = -20).
        assert out == "0 -20"

    def test_atoi(self):
        _, out, _, _ = run_main(
            'printf("%d %d %d", atoi("123"), atoi("-45xyz"), atoi("junk"));'
            "return 0;"
        )
        assert out == "123 -45 0"


class TestDeterministicRand:
    def test_rand_sequence_is_reproducible(self):
        source = (
            "int main(void) { srand(7);\n"
            'printf("%d %d", rand() % 100, rand() % 100); return 0; }'
        )
        _, first, _, _ = run_program(source)
        _, second, _, _ = run_program(source)
        assert first == second
