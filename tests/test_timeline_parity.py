"""Cross-backend timeline parity.

The reverse control calls are backend-agnostic by construction — they
replay recorded snapshots instead of driving the inferior — so the same
program recorded under ``PythonTracker`` and under the MiniC debug server
(``GDBTracker``, where snapshots are captured *server-side* and fetched
over ``-timeline-dump``) must yield equivalent timelines: same pause
kinds, lines, depths, and variable values at every recorded pause, and
identical reverse-navigation behavior over them.

Mirrors :mod:`tests.test_maxdepth_semantics`: one recursive program
written twice with aligned line numbers. On a parity mismatch the two
timelines are saved as ``.timeline.json`` files under ``ARTIFACTS_DIR``
(default ``tests/_artifacts``) so CI can upload them for inspection.
"""

import os

import pytest

from repro.core.errors import NotPausedError
from repro.core.factory import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.timeline import StateSnapshot

# rec(3) runs at depths 1..4 (module/main is depth 0); the x = n
# assignment sits on line 2 in both programs.
PY_PROGRAM = """\
def rec(n):
    x = n
    if n == 0:
        return 0
    return rec(n - 1)

rec(3)
"""

C_PROGRAM = """\
int rec(int n) {
    int x = n;
    if (n == 0) {
        return 0;
    }
    return rec(n - 1);
}

int main(void) {
    rec(3);
    return 0;
}
"""


def _record(tracker, path, keyframe_interval=16):
    """Record every breakpoint pause at line 2 until exit; keep paused
    trackers out: returns the tracker still alive, rewindable."""
    tracker.load_program(path)
    tracker.break_before_line(2)
    tracker.enable_recording(keyframe_interval=keyframe_interval)
    tracker.start()
    for _ in range(50):
        if tracker.get_exit_code() is not None:
            return tracker
        tracker.resume()
    pytest.fail("inferior did not terminate")


def _record_python(tmp_path, **kwargs):
    from repro.pytracker import PythonTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _record(PythonTracker(capture_output=True), str(path), **kwargs)


def _record_minic(tmp_path, **kwargs):
    from repro.gdbtracker import GDBTracker

    path = tmp_path / "prog.c"
    path.write_text(C_PROGRAM)
    return _record(GDBTracker(), str(path), **kwargs)


def _record_subproc(tmp_path, **kwargs):
    from repro.subproc import SubprocPythonTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _record(SubprocPythonTracker(), str(path), **kwargs)


def _record_mon(tmp_path, **kwargs):
    from repro.pytracker import MonitoringTracker
    from repro.pytracker.monitoring import HAVE_MONITORING, SKIP_REASON

    if not HAVE_MONITORING:
        pytest.skip(SKIP_REASON)
    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    return _record(MonitoringTracker(capture_output=True), str(path), **kwargs)


def _int_or(value):
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


def _render(variable):
    if variable is None:
        return None
    value = variable.value
    while value.abstract_type.value == "ref" and value.content is not None:
        value = value.content
    return value.render()


def _normalize(snapshot: StateSnapshot):
    """Backend-independent projection of one recorded snapshot.

    The entry pause is collapsed to a marker: Python pauses on the first
    module line, MiniC inside ``main``, and that difference is inherent to
    the backends, not to the timeline machinery under test.
    """
    if snapshot.frame is None:
        return ("exit", snapshot.exit_code)
    if snapshot.depth == 0 and (
        snapshot.reason is None
        or snapshot.reason.type is PauseReasonType.STEP
    ):
        return ("entry",)
    kind = snapshot.reason.type.value if snapshot.reason else "step"
    value = _render(snapshot.lookup("x") or snapshot.lookup("n"))
    return (kind, snapshot.line, snapshot.depth, _int_or(value))


def _dump_artifacts(py_timeline, c_timeline):
    directory = os.environ.get(
        "ARTIFACTS_DIR", os.path.join(os.path.dirname(__file__), "_artifacts")
    )
    os.makedirs(directory, exist_ok=True)
    py_path = os.path.join(directory, "parity_python.timeline.json")
    c_path = os.path.join(directory, "parity_minic.timeline.json")
    py_timeline.save(py_path)
    c_timeline.save(c_path)
    return py_path, c_path


def _assert_parity(py_timeline, c_timeline):
    py_states = [_normalize(s) for s in py_timeline.snapshots()]
    c_states = [_normalize(s) for s in c_timeline.snapshots()]
    if py_states != c_states:
        py_path, c_path = _dump_artifacts(py_timeline, c_timeline)
        pytest.fail(
            "timeline parity mismatch (artifacts saved to "
            f"{py_path} and {c_path}):\n"
            f"  python: {py_states}\n"
            f"  minic:  {c_states}"
        )


def test_recorded_timelines_agree(tmp_path):
    python = _record_python(tmp_path)
    minic = _record_minic(tmp_path)
    try:
        # entry pause + 4 breakpoint hits (depths 1..4) + exit snapshot
        assert python.timeline.retained == 6
        assert minic.timeline.retained == 6
        _assert_parity(python.timeline, minic.timeline)
    finally:
        python.terminate()
        minic.terminate()


def test_reverse_navigation_parity(tmp_path):
    """backward_step walks both backends through identical states."""
    python = _record_python(tmp_path)
    minic = _record_minic(tmp_path)
    try:
        rewound = {"python": [], "minic": []}
        for name, tracker in (("python", python), ("minic", minic)):
            for _ in range(tracker.timeline.retained - 1):
                tracker.backward_step()
                rewound[name].append(_normalize(tracker.snapshot()))
            with pytest.raises(NotPausedError):
                tracker.backward_step()
        assert rewound["python"] == rewound["minic"]
    finally:
        python.terminate()
        minic.terminate()


def test_goto_and_backward_resume_on_minic(tmp_path):
    """The GDB backend (remote recording) services the reverse calls."""
    tracker = _record_minic(tmp_path)
    try:
        timeline = tracker.timeline
        assert tracker.get_exit_code() is not None
        # Jump to the first breakpoint hit; inspection serves history.
        landed = tracker.goto(timeline.start_index + 1)
        assert landed.reason.type is PauseReasonType.BREAKPOINT
        assert tracker.get_position()[1] == 2
        variable = tracker.get_variable("x") or tracker.get_variable("n")
        assert variable is not None
        # backward_resume from live lands on the last breakpoint hit.
        tracker.goto(-1)
        tracker.backward_resume()
        assert tracker.snapshot().reason.type is PauseReasonType.BREAKPOINT
        assert tracker.snapshot().depth == 4
    finally:
        tracker.terminate()


def test_recorded_timeline_agrees_on_subproc(tmp_path):
    """The isolated Python backend records server-side (the hosted
    tracker's own recorder), yet the timeline must match the in-process
    one snapshot for snapshot."""
    python = _record_python(tmp_path)
    subproc = _record_subproc(tmp_path)
    try:
        assert subproc.timeline.retained == 6
        _assert_parity(python.timeline, subproc.timeline)
    finally:
        python.terminate()
        subproc.terminate()


def test_reverse_navigation_parity_on_subproc(tmp_path):
    python = _record_python(tmp_path)
    subproc = _record_subproc(tmp_path)
    try:
        rewound = {"python": [], "subproc": []}
        for name, tracker in (("python", python), ("subproc", subproc)):
            for _ in range(tracker.timeline.retained - 1):
                tracker.backward_step()
                rewound[name].append(_normalize(tracker.snapshot()))
            with pytest.raises(NotPausedError):
                tracker.backward_step()
        assert rewound["python"] == rewound["subproc"]
    finally:
        python.terminate()
        subproc.terminate()


def test_goto_and_backward_resume_on_subproc(tmp_path):
    """Reverse control calls are served from the child's recording."""
    tracker = _record_subproc(tmp_path)
    try:
        timeline = tracker.timeline
        assert tracker.get_exit_code() is not None
        landed = tracker.goto(timeline.start_index + 1)
        assert landed.reason.type is PauseReasonType.BREAKPOINT
        assert tracker.get_position()[1] == 2
        variable = tracker.get_variable("x") or tracker.get_variable("n")
        assert variable is not None
        tracker.goto(-1)
        tracker.backward_resume()
        assert tracker.snapshot().reason.type is PauseReasonType.BREAKPOINT
        assert tracker.snapshot().depth == 4
    finally:
        tracker.terminate()


def test_record_false_suppresses_on_subproc(tmp_path):
    """``record=False`` reaches the child as ``-timeline-drop-last``."""
    from repro.subproc import SubprocPythonTracker

    path = tmp_path / "prog.py"
    path.write_text(PY_PROGRAM)
    tracker = SubprocPythonTracker()
    tracker.load_program(str(path))
    tracker.enable_recording()
    tracker.start()
    length = len(tracker.timeline)
    tracker.step(record=False)
    assert len(tracker.timeline) == length
    tracker.step()
    assert len(tracker.timeline) == length + 1
    tracker.terminate()


def test_record_false_suppresses_on_minic(tmp_path):
    """``record=False`` reaches the server as ``-timeline-drop-last``."""
    from repro.gdbtracker import GDBTracker

    path = tmp_path / "prog.c"
    path.write_text(C_PROGRAM)
    tracker = GDBTracker()
    tracker.load_program(str(path))
    tracker.enable_recording()
    tracker.start()
    length = len(tracker.timeline)
    tracker.step(record=False)
    assert len(tracker.timeline) == length
    tracker.step()
    assert len(tracker.timeline) == length + 1
    tracker.terminate()


def test_recorded_timeline_agrees_on_monitoring(tmp_path):
    """The sys.monitoring backend reuses the settrace tracker's recorder
    wholesale, so its timeline must match snapshot for snapshot."""
    mon = _record_mon(tmp_path)
    python = _record_python(tmp_path)
    try:
        assert mon.timeline.retained == 6
        _assert_parity(python.timeline, mon.timeline)
    finally:
        python.terminate()
        mon.terminate()


def test_reverse_navigation_parity_on_monitoring(tmp_path):
    mon = _record_mon(tmp_path)
    python = _record_python(tmp_path)
    try:
        rewound = {"python": [], "mon": []}
        for name, tracker in (("python", python), ("mon", mon)):
            for _ in range(tracker.timeline.retained - 1):
                tracker.backward_step()
                rewound[name].append(_normalize(tracker.snapshot()))
            with pytest.raises(NotPausedError):
                tracker.backward_step()
        assert rewound["python"] == rewound["mon"]
    finally:
        python.terminate()
        mon.terminate()


_RECORDERS = {
    "python": _record_python,
    "minic": _record_minic,
    "subproc": _record_subproc,
    "mon": _record_mon,
}


@pytest.mark.parametrize("recorder", sorted(_RECORDERS))
def test_replay_tracker_replays_either_backend(recorder, tmp_path):
    """Acceptance: a saved timeline from any backend drives the shared
    ReplayTracker — breakpoints re-fire and reverse calls work."""
    live = _RECORDERS[recorder](tmp_path)
    saved = str(tmp_path / f"{recorder}.timeline.json")
    try:
        live.timeline.save(saved)
    finally:
        live.terminate()

    replay = init_tracker("replay")
    replay.load_program(saved)
    replay.break_before_line(2)
    replay.start()
    hits = []
    while replay.get_exit_code() is None:
        replay.resume()
        if replay.get_exit_code() is None:
            reason = replay.pause_reason
            hits.append((reason.type.value, replay.get_position()[1]))
    assert hits == [("breakpoint", 2)] * 4
    replay.backward_step()
    assert replay.get_exit_code() is None
    replay.goto(replay.timeline.start_index)
    assert replay.step_index == replay.timeline.start_index
    replay.terminate()
