"""Tests for the mini-C parser."""

import pytest

from repro.minic import ast
from repro.minic.ctypes import ArrayType, PointerType, StructType
from repro.minic.parser import ParseError, parse


def parse_expr(text):
    """Parse `text` as the returned expression of a wrapper function."""
    program = parse(f"int main(void) {{ return {text}; }}")
    return program.functions[0].body.body[0].value


def parse_body(text):
    program = parse(f"int main(void) {{ {text} }}")
    return program.functions[0].body.body


class TestTopLevel:
    def test_function_definition(self):
        program = parse("int add(int a, int b) { return a + b; }")
        function = program.functions[0]
        assert function.name == "add"
        assert [p.name for p in function.params] == ["a", "b"]
        assert function.return_type.name == "int"

    def test_void_parameter_list(self):
        program = parse("int main(void) { return 0; }")
        assert program.functions[0].params == []

    def test_global_declarations_with_initializers(self):
        program = parse("int a = 1, b = 2;\ndouble d;\n")
        assert [g.name for g in program.globals] == ["a", "b", "d"]
        assert program.globals[0].init.value == 1

    def test_global_array_with_braces(self):
        program = parse("int arr[3] = {1, 2, 3};")
        declaration = program.globals[0]
        assert isinstance(declaration.ctype, ArrayType)
        assert len(declaration.init) == 3

    def test_struct_definition_and_use(self):
        program = parse(
            "struct point { int x; int y; };\n"
            "struct point origin;\n"
        )
        assert "point" in program.structs
        assert isinstance(program.globals[0].ctype, StructType)

    def test_unknown_struct_raises(self):
        with pytest.raises(ParseError, match="unknown struct"):
            parse("struct missing m;")

    def test_forward_declaration_then_definition(self):
        program = parse("int f(int x);\nint f(int x) { return x; }")
        assert len([fn for fn in program.functions if fn.name == "f"]) == 2

    def test_typedef_basic(self):
        program = parse("typedef int number;\nnumber x = 5;")
        assert program.globals[0].ctype.name == "int"

    def test_typedef_struct(self):
        program = parse(
            "typedef struct pair { int a; int b; } pair_t;\npair_t p;"
        )
        assert program.globals[0].ctype.name == "struct pair"

    def test_typedef_pointer(self):
        program = parse("typedef char *string;\nstring s;")
        assert program.globals[0].ctype.name == "char*"

    def test_enum_constants_and_values(self):
        program = parse("enum color { RED, GREEN = 5, BLUE };\nint c = 0;")
        assert program.enum_constants == {"RED": 0, "GREEN": 5, "BLUE": 6}

    def test_typedef_enum_like_the_papers_level(self):
        program = parse(
            "typedef enum { UP, DOWN, LEFT, RIGHT } orientation;\n"
            "orientation facing = RIGHT;\n"
        )
        assert program.enum_constants["RIGHT"] == 3
        assert program.globals[0].ctype.name == "int"

    def test_function_pointer_declarator(self):
        program = parse("int (*handler)(int);")
        ctype = program.globals[0].ctype
        assert isinstance(ctype, PointerType)
        assert "(*)" in ctype.name


class TestDeclarators:
    def test_pointer_levels(self):
        program = parse("int **pp;")
        ctype = program.globals[0].ctype
        assert ctype.name == "int**"

    def test_array_of_pointers(self):
        program = parse("int *arr[4];")
        ctype = program.globals[0].ctype
        assert isinstance(ctype, ArrayType)
        assert ctype.element.name == "int*"

    def test_two_dimensional_array(self):
        program = parse("int m[2][3];")
        ctype = program.globals[0].ctype
        assert ctype.size == 24
        assert ctype.element.name == "int[3]"

    def test_unsized_array_with_initializer(self):
        body = parse_body("int a[] = {1, 2, 3, 4}; return 0;")
        assert isinstance(body[0], ast.Declaration)

    def test_array_parameter_decays_to_pointer(self):
        program = parse("int first(int arr[], int n) { return arr[0]; }")
        assert isinstance(program.functions[0].params[0].ctype, PointerType)

    def test_const_and_static_absorbed(self):
        program = parse("static const int limit = 10;")
        assert program.globals[0].name == "limit"


class TestStatements:
    def test_if_else_chain(self):
        body = parse_body("if (1) return 1; else if (2) return 2; else return 3;")
        statement = body[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.other, ast.If)

    def test_while_and_do_while(self):
        body = parse_body("while (1) break; do continue; while (0);")
        assert isinstance(body[0], ast.While)
        assert isinstance(body[1], ast.DoWhile)

    def test_for_with_declaration(self):
        body = parse_body("for (int i = 0; i < 10; i++) {} return 0;")
        loop = body[0]
        assert isinstance(loop.init, ast.Declaration)
        assert loop.cond is not None
        assert loop.step is not None

    def test_for_all_clauses_empty(self):
        body = parse_body("for (;;) break; return 0;")
        loop = body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_empty_statement(self):
        body = parse_body("; return 0;")
        assert isinstance(body[0], ast.Compound)

    def test_multi_declarator_line_splits(self):
        body = parse_body("int a = 1, b = 2; return 0;")
        assert isinstance(body[0], ast.Compound)
        assert len(body[0].body) == 2

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("int main(void) { return 0;")

    def test_switch_with_cases_and_default(self):
        body = parse_body(
            "switch (x) { case 1: break; case 2: case 3: break; default: ; }"
            " return 0;"
        )
        switch = body[0]
        assert isinstance(switch, ast.Switch)
        assert len(switch.cases) == 4
        assert switch.cases[-1].match is None
        assert switch.cases[1].body == []  # fallthrough arm

    def test_switch_statement_before_case_raises(self):
        with pytest.raises(ParseError, match="case"):
            parse_body("switch (x) { x = 1; } return 0;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_lowest(self):
        expr = parse_expr("1 == 2 && 3 | 4")
        assert expr.op == "&&"

    def test_assignment_right_associative(self):
        body = parse_body("int a; int b; a = b = 1; return 0;")
        assignment = body[2].expr
        assert isinstance(assignment.value, ast.Assign)

    def test_compound_assignment(self):
        body = parse_body("int a = 1; a += 2; return a;")
        assert body[1].expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Conditional)

    def test_unary_chain(self):
        expr = parse_expr("-!~x")
        assert expr.op == "-"
        assert expr.operand.op == "!"
        assert expr.operand.operand.op == "~"

    def test_prefix_and_postfix_increment(self):
        body = parse_body("int i = 0; ++i; i++; return i;")
        assert isinstance(body[1].expr, ast.Unary)
        assert isinstance(body[2].expr, ast.Postfix)

    def test_address_of_and_deref(self):
        expr = parse_expr("*&x")
        assert expr.op == "*"
        assert expr.operand.op == "&"

    def test_member_and_arrow(self):
        expr = parse_expr("p.x + q->y")
        assert expr.left.arrow is False
        assert expr.right.arrow is True

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, g(2), h())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3

    def test_index_chain(self):
        expr = parse_expr("m[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_cast(self):
        expr = parse_expr("(double)5")
        assert isinstance(expr, ast.Cast)
        assert expr.ctype.name == "double"

    def test_cast_to_pointer(self):
        expr = parse_expr("(int*)0")
        assert expr.ctype.name == "int*"

    def test_sizeof_type_and_expr(self):
        assert isinstance(parse_expr("sizeof(int)"), ast.SizeofType)
        assert isinstance(parse_expr("sizeof x"), ast.SizeofExpr)

    def test_string_concatenation(self):
        expr = parse_expr('"ab" "cd"')
        assert expr.value == "abcd"

    def test_null_literal(self):
        assert isinstance(parse_expr("NULL"), ast.NullLiteral)

    def test_comma_operator(self):
        expr = parse_expr("(1, 2)")
        assert expr.op == ","

    def test_parenthesized_is_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert expr.op == "+"

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match=":2:"):
            parse("int x;\nint main(void) { return +; }")


class TestLineNumbers:
    def test_statements_carry_their_line(self):
        program = parse("int main(void) {\n  int a = 1;\n  return a;\n}")
        body = program.functions[0].body.body
        assert body[0].line == 2
        assert body[1].line == 3

    def test_function_end_line(self):
        program = parse("int f(void)\n{\n  return 0;\n}\n")
        assert program.functions[0].end_line == 4
