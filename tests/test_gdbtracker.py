"""End-to-end tests for the GDB tracker (tool process <-> server subprocess)."""

import pytest

from repro.core.errors import TrackerError
from repro.core.pause import PauseReasonType
from repro.core.state import AbstractType
from repro.gdbtracker.tracker import GDBTracker

C_PROGRAM = """\
int total = 0;

int square(int v) {
    int r = v * v;
    return r;
}

int main(void) {
    int *data = malloc(2 * sizeof(int));
    data[0] = square(3);
    data[1] = square(4);
    total = data[0] + data[1];
    free(data);
    return 0;
}
"""

ASM_PROGRAM = """\
main:
    li a0, 3
    call double_it
    call double_it
    li a7, 93
    ecall
double_it:
    add a0, a0, a0
    ret
"""


@pytest.fixture
def c_tracker(write_program):
    tracker = GDBTracker()
    tracker.load_program(write_program("prog.c", C_PROGRAM))
    yield tracker
    tracker.terminate()


@pytest.fixture
def asm_tracker(write_program):
    tracker = GDBTracker()
    tracker.load_program(write_program("prog.s", ASM_PROGRAM))
    yield tracker
    tracker.terminate()


class TestCControl:
    def test_start_pauses_at_first_line(self, c_tracker):
        c_tracker.start()
        assert c_tracker.get_exit_code() is None
        assert c_tracker.pause_reason.type is PauseReasonType.STEP

    def test_run_to_completion(self, c_tracker):
        c_tracker.start()
        c_tracker.resume()
        assert c_tracker.get_exit_code() == 0
        assert c_tracker.pause_reason.type is PauseReasonType.EXIT

    def test_track_function_events(self, c_tracker):
        c_tracker.track_function("square")
        c_tracker.start()
        events = []
        while c_tracker.get_exit_code() is None:
            c_tracker.resume()
            reason = c_tracker.pause_reason
            if reason.type is PauseReasonType.CALL:
                events.append(("call", None))
            elif reason.type is PauseReasonType.RETURN:
                events.append(("return", reason.return_value))
        assert events == [
            ("call", None), ("return", "9"),
            ("call", None), ("return", "16"),
        ]

    def test_watch_global(self, c_tracker):
        c_tracker.watch("total")
        c_tracker.start()
        c_tracker.resume()
        reason = c_tracker.pause_reason
        assert reason.type is PauseReasonType.WATCH
        assert reason.variable == "total"

    def test_break_before_line(self, c_tracker):
        c_tracker.break_before_line(12)
        c_tracker.start()
        c_tracker.resume()
        assert c_tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        assert c_tracker.next_lineno == 12

    def test_control_points_added_while_running(self, c_tracker):
        c_tracker.start()
        c_tracker.break_before_func("square")  # added after start
        c_tracker.resume()
        assert c_tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        assert c_tracker.pause_reason.function == "square"

    def test_step_and_next(self, c_tracker):
        c_tracker.start()
        c_tracker.next()
        assert c_tracker.get_current_frame().name == "main"
        # Stepping from the call line eventually enters square.
        for _ in range(10):
            c_tracker.step()
            if c_tracker.get_current_frame().name == "square":
                break
        assert c_tracker.get_current_frame().name == "square"


class TestCInspection:
    def test_frames_cross_pipe(self, c_tracker):
        c_tracker.break_before_func("square")
        c_tracker.start()
        c_tracker.resume()
        frame = c_tracker.get_current_frame()
        assert frame.name == "square"
        assert frame.depth == 1
        assert frame.parent.name == "main"
        assert frame.variables["v"].value.content == 3

    def test_globals_cross_pipe(self, c_tracker):
        c_tracker.start()
        globals_map = c_tracker.get_global_variables()
        assert globals_map["total"].value.content == 0

    def test_heap_blocks(self, c_tracker):
        c_tracker.break_before_line(12)
        c_tracker.start()
        c_tracker.resume()
        blocks = c_tracker.get_heap_blocks()
        assert list(blocks.values()) == [8]

    def test_malloc_pointer_renders_as_list(self, c_tracker):
        c_tracker.break_before_line(12)
        c_tracker.start()
        c_tracker.resume()
        data = c_tracker.get_current_frame().variables["data"].value
        assert data.abstract_type is AbstractType.REF
        assert [v.content for v in data.content.content] == [9, 16]

    def test_get_position(self, c_tracker):
        c_tracker.start()
        filename, line = c_tracker.get_position()
        assert filename.endswith("prog.c")
        assert line == 9

    def test_get_variable(self, c_tracker):
        c_tracker.break_before_func("square")
        c_tracker.start()
        c_tracker.resume()
        assert c_tracker.get_variable("v").value.content == 3
        assert c_tracker.get_variable("total").value.content == 0

    def test_output_collected(self, write_program):
        tracker = GDBTracker()
        tracker.load_program(
            write_program("hello.c",
                          'int main(void) { printf("hi %d\\n", 9); return 0; }')
        )
        tracker.start()
        tracker.resume()
        assert tracker.get_output() == "hi 9\n"
        tracker.terminate()

    def test_list_functions(self, c_tracker):
        assert c_tracker.list_functions() == ["main", "square"]

    def test_load_error_propagates(self, write_program):
        tracker = GDBTracker()
        with pytest.raises(TrackerError):
            tracker.load_program(write_program("bad.c", "int main( {"))


class TestAssemblyRetScan:
    def test_track_function_via_ret_scan(self, asm_tracker):
        asm_tracker.track_function("double_it")
        asm_tracker.start()
        events = []
        while asm_tracker.get_exit_code() is None:
            asm_tracker.resume()
            reason = asm_tracker.pause_reason
            if reason.type in (PauseReasonType.CALL, PauseReasonType.RETURN):
                events.append(reason.type)
        # Two calls, each with an entry and a (ret-scan) exit pause.
        assert events == [
            PauseReasonType.CALL, PauseReasonType.RETURN,
            PauseReasonType.CALL, PauseReasonType.RETURN,
        ]
        assert asm_tracker.get_exit_code() == 12

    def test_ret_scan_fails_for_function_without_ret(self, write_program):
        tracker = GDBTracker()
        tracker.load_program(
            write_program(
                "noret.s",
                "main:\n  j spin\nspin:\n  li a7, 93\n  ecall\n",
            )
        )
        with pytest.raises(TrackerError, match="no return instruction"):
            tracker.track_function("spin")
            tracker.start()
        tracker.terminate()

    def test_registers_and_memory(self, asm_tracker):
        asm_tracker.start()
        registers = asm_tracker.get_registers_gdb()
        assert registers["sp"] == 0x7FFF_F000
        raw = asm_tracker.get_value_at_gdb(0x7FFF_F000 - 8, 8)
        assert len(raw) == 8

    def test_disassemble(self, asm_tracker):
        listing = asm_tracker.disassemble("double_it")
        assert [entry["mnemonic"] for entry in listing] == ["add", "jalr"]
        assert listing[-1]["is_return"]

    def test_asm_exit_code(self, asm_tracker):
        asm_tracker.start()
        asm_tracker.resume()
        assert asm_tracker.get_exit_code() == 12
