"""Tests for the Section III tools (excluding the debug game, tested apart)."""

import os

import pytest

from repro.pytracker.tracker import PythonTracker
from repro.gdbtracker.tracker import GDBTracker
from repro.tools.array_invariant import (
    ArrayInvariantTool,
    draw_array_state,
    extract_array,
)
from repro.tools.recursion_tree import draw_call_tree, record_call_tree
from repro.tools.riscv_viewer import (
    RiscvViewer,
    render_memory_text,
    render_registers_text,
)
from repro.tools.stack_diagram import draw_stack, draw_stack_heap
from repro.tools.stepper import generate_diagrams

PY_PROGRAM = """\
def make_pair(n):
    left = [n]
    right = (n, n)
    return left, right

pair = make_pair(3)
"""

C_PROGRAM = """\
#include <stdlib.h>
int main(void) {
    int a = 5;
    int *p = &a;
    int *h = malloc(2 * sizeof(int));
    h[0] = 1; h[1] = 2;
    int *bad;
    free(h);
    return 0;
}
"""

SORT_PROGRAM = """\
def insertion_sort(arr):
    for i in range(1, len(arr)):
        j = i
        while j > 0 and arr[j - 1] > arr[j]:
            arr[j - 1], arr[j] = arr[j], arr[j - 1]
            j -= 1
    return arr

data = [3, 1, 2]
insertion_sort(data)
"""

FIB_PROGRAM = """\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

answer = fib(4)
"""

ASM_PROGRAM = """\
    .data
v:  .word 9
    .text
main:
    lw t0, v
    addi t0, t0, 1
    li a7, 93
    li a0, 0
    ecall
"""


def paused_python_tracker(write_program, source, line):
    tracker = PythonTracker()
    tracker.load_program(write_program("p.py", source))
    tracker.break_before_line(line)
    tracker.start()
    tracker.resume()
    return tracker


class TestStackDiagrams:
    def test_plain_stack_inlines_lists_and_tuples(self, write_program):
        tracker = paused_python_tracker(write_program, PY_PROGRAM, 4)
        canvas = draw_stack(tracker.get_current_frame(),
                            tracker.get_global_variables())
        rendered = canvas.render()
        assert "left = [3]" in rendered
        assert "right = (3, 3)" in rendered  # the inlining PT cannot do
        tracker.terminate()

    def test_stack_heap_has_frames_and_arrows(self, write_program):
        tracker = paused_python_tracker(write_program, PY_PROGRAM, 4)
        canvas = draw_stack_heap(tracker.get_current_frame(),
                                 tracker.get_global_variables())
        rendered = canvas.render()
        assert "make_pair (depth 1)" in rendered
        assert "&lt;module&gt; (depth 0)" in rendered
        assert "globals" in rendered
        assert "line" in rendered  # at least one arrow segment
        tracker.terminate()

    def test_c_stack_heap_shows_invalid_pointer_cross(self, write_program):
        tracker = GDBTracker()
        tracker.load_program(write_program("p.c", C_PROGRAM))
        tracker.break_before_line(9)  # after free(h)
        tracker.start()
        tracker.resume()
        canvas = draw_stack_heap(
            tracker.get_current_frame(),
            tracker.get_global_variables(),
            tracker.get_heap_blocks(),
        )
        rendered = canvas.render()
        # bad and the dangling h draw as crosses: red stroke present.
        assert "#c0392b" in rendered
        tracker.terminate()

    def test_c_heap_block_size_annotation(self, write_program):
        tracker = GDBTracker()
        tracker.load_program(write_program("p.c", C_PROGRAM))
        tracker.break_before_line(7)
        tracker.start()
        tracker.resume()
        canvas = draw_stack_heap(
            tracker.get_current_frame(),
            tracker.get_global_variables(),
            tracker.get_heap_blocks(),
        )
        assert "(8 bytes)" in canvas.render()
        tracker.terminate()


class TestStepper:
    def test_python_one_image_per_line(self, write_program, output_dir):
        images = generate_diagrams(
            write_program("p.py", "a = 1\nb = 2\n"), output_dir
        )
        assert len(images) == 2
        assert all(os.path.exists(path) for path in images)
        assert images[0].endswith("001-stack_heap.svg")

    def test_stack_mode(self, write_program, output_dir):
        images = generate_diagrams(
            write_program("p.py", "a = 1\n"), output_dir, mode="stack"
        )
        assert images[0].endswith("001-stack.svg")

    def test_c_program(self, write_program, output_dir):
        images = generate_diagrams(
            write_program("p.c", "int main(void) {\n    int x = 1;\n    return 0;\n}\n"),
            output_dir,
        )
        assert len(images) >= 2

    def test_max_images_bound(self, write_program, output_dir):
        images = generate_diagrams(
            write_program("p.py", "\n".join(f"x{i} = {i}" for i in range(50))),
            output_dir,
            max_images=5,
        )
        assert len(images) == 5


class TestArrayInvariant:
    def test_extract_array(self, write_program):
        tracker = paused_python_tracker(write_program, SORT_PROGRAM, 7)
        variable = tracker.get_variable("arr", "insertion_sort")
        assert extract_array(variable.value) == [1, 2, 3]
        tracker.terminate()

    def test_draw_array_state(self):
        canvas = draw_array_state(
            [5, 2, 8], {"i": 1, "j": None}, sorted_prefix=1, title="arr"
        )
        rendered = canvas.render()
        assert "arr" in rendered
        assert "#9fc5e8" in rendered  # sorted-prefix fill
        assert ">i</text>" in rendered

    def test_marker_out_of_range_skipped(self):
        canvas = draw_array_state([1, 2], {"i": 99})
        assert ">i<" not in canvas.render()

    def test_tool_end_to_end(self, write_program, output_dir):
        tool = ArrayInvariantTool(
            write_program("p.py", SORT_PROGRAM),
            array_name="arr",
            index_names=["i", "j"],
            sorted_upto="i",
            function="insertion_sort",
        )
        images = tool.run(output_dir)
        assert images
        source_images = [
            name for name in os.listdir(output_dir) if name.startswith("source")
        ]
        assert len(source_images) == len(images)


class TestRecursionTree:
    def test_tree_shape_matches_fib(self, write_program):
        recording = record_call_tree(
            write_program("p.py", FIB_PROGRAM), "fib", ["n"]
        )
        root = recording.roots[0]
        assert root.label("fib") == "fib(4)"
        assert root.retval == "3"
        assert [child.label("fib") for child in root.children] == [
            "fib(3)",
            "fib(2)",
        ]
        assert not root.active  # everything returned

    def test_total_events(self, write_program):
        recording = record_call_tree(
            write_program("p.py", FIB_PROGRAM), "fib", ["n"]
        )
        # fib(4) makes 9 calls -> 18 call/return events.
        assert recording.events == 18

    def test_images_written_per_event(self, write_program, output_dir):
        recording = record_call_tree(
            write_program("p.py", FIB_PROGRAM), "fib", ["n"],
            output_dir=output_dir,
        )
        assert len(recording.images) == recording.events
        assert os.path.exists(recording.images[-1])

    def test_draw_contains_nodes_and_backedge_values(self, write_program):
        recording = record_call_tree(
            write_program("p.py", FIB_PROGRAM), "fib", ["n"]
        )
        canvas = draw_call_tree(recording.roots[0], "fib")
        rendered = canvas.render()
        assert "fib(4)" in rendered
        assert "fib(0)" in rendered
        assert "#2980b9" in rendered  # return-value back edges

    def test_args_snapshotted_at_call_time(self, write_program):
        source = (
            "def rec(arr, n):\n"
            "    arr.append(n)\n"
            "    if n > 0:\n"
            "        rec(arr, n - 1)\n"
            "\n"
            "rec([], 2)\n"
        )
        recording = record_call_tree(
            write_program("p.py", source), "rec", ["arr"]
        )
        root = recording.roots[0]
        # At call time the list was empty even though it mutates later.
        assert root.args["arr"] == "[]"
        assert root.children[0].args["arr"] == "[2]"

    def test_works_on_c_inferior(self, write_program):
        source = (
            "int fact(int n) {\n"
            "    if (n <= 1) { return 1; }\n"
            "    return n * fact(n - 1);\n"
            "}\n"
            "int main(void) { return fact(4); }\n"
        )
        recording = record_call_tree(write_program("p.c", source), "fact", ["n"])
        root = recording.roots[0]
        assert root.label("fact") == "fact(4)"
        assert root.retval == "24"
        assert len(root.children) == 1


class TestRiscvViewer:
    def test_states_per_instruction(self, write_program):
        from repro.riscv.assembler import DATA_BASE

        viewer = RiscvViewer(
            write_program("p.s", ASM_PROGRAM), DATA_BASE, 8
        )
        states = viewer.run()
        assert len(states) == 5
        assert states[0]["registers"]["pc"] > 0

    def test_changed_registers_flagged(self, write_program):
        from repro.riscv.assembler import DATA_BASE

        viewer = RiscvViewer(write_program("p.s", ASM_PROGRAM), DATA_BASE, 8)
        states = viewer.run()
        assert "t0" in states[1]["changed"]  # lw t0, v just executed

    def test_svg_output(self, write_program, output_dir):
        from repro.riscv.assembler import DATA_BASE

        viewer = RiscvViewer(write_program("p.s", ASM_PROGRAM), DATA_BASE, 8)
        viewer.run(output_dir)
        files = os.listdir(output_dir)
        assert any(name.startswith("riscv_001") for name in files)

    def test_text_rendering_helpers(self):
        registers = {"pc": 0x10000, "sp": 0x7FFFF000, "t0": 5}
        text = render_registers_text(registers, changed={"t0"})
        assert "pc = 0x00010000" in text
        assert "*" in text
        memory = render_memory_text(b"\x01\x00\x00\x00\x02\x00\x00\x00", 0x100)
        assert "0x00000100:" in memory
        assert "0x00000001 0x00000002" in memory

    def test_run_text_produces_panes(self, write_program):
        from repro.riscv.assembler import DATA_BASE

        viewer = RiscvViewer(write_program("p.s", ASM_PROGRAM), DATA_BASE, 8)
        text = viewer.run_text()
        assert "=>" in text
        assert "memory" not in text  # text mode has raw panes, not headings
        assert text.count("=" * 72) == 5
