"""Tests for the language-agnostic state model (Section II-B2)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.state import (
    AbstractType,
    Frame,
    Location,
    Value,
    Variable,
    frame_from_dict,
    frame_to_dict,
    value_from_dict,
    value_to_dict,
    variable_from_dict,
    variable_to_dict,
)


def prim(content, language_type="int", address=None):
    return Value(
        abstract_type=AbstractType.PRIMITIVE,
        content=content,
        location=Location.HEAP,
        address=address,
        language_type=language_type,
    )


class TestValueConstruction:
    def test_primitive_accepts_python_primitives(self):
        for content in (1, 1.5, "x", True, b"raw"):
            value = prim(content)
            assert value.content == content

    def test_primitive_rejects_containers(self):
        with pytest.raises(TypeError):
            Value(AbstractType.PRIMITIVE, [1, 2])

    def test_ref_requires_value_content(self):
        target = prim(1)
        ref = Value(AbstractType.REF, target)
        assert ref.content is target
        with pytest.raises(TypeError):
            Value(AbstractType.REF, 42)

    def test_list_requires_tuple_of_values(self):
        value = Value(AbstractType.LIST, (prim(1), prim(2)))
        assert len(value.content) == 2
        with pytest.raises(TypeError):
            Value(AbstractType.LIST, [prim(1)])  # list, not tuple
        with pytest.raises(TypeError):
            Value(AbstractType.LIST, (1, 2))

    def test_dict_requires_value_keys_and_values(self):
        with pytest.raises(TypeError):
            Value(AbstractType.DICT, {"k": prim(1)})

    def test_struct_requires_str_keys(self):
        value = Value(AbstractType.STRUCT, {"x": prim(1)})
        assert "x" in value.content
        with pytest.raises(TypeError):
            Value(AbstractType.STRUCT, {1: prim(1)})

    def test_none_and_invalid_require_none_content(self):
        assert Value(AbstractType.NONE, None).content is None
        assert Value(AbstractType.INVALID, None).content is None
        with pytest.raises(TypeError):
            Value(AbstractType.NONE, 0)
        with pytest.raises(TypeError):
            Value(AbstractType.INVALID, "x")

    def test_function_content_is_name(self):
        value = Value(AbstractType.FUNCTION, "main")
        assert value.content == "main"
        with pytest.raises(TypeError):
            Value(AbstractType.FUNCTION, 123)


class TestValueAccessors:
    def test_deref_follows_ref(self):
        target = prim(7)
        assert Value(AbstractType.REF, target).deref() is target

    def test_deref_rejects_non_ref(self):
        with pytest.raises(ValueError):
            prim(7).deref()

    def test_elements_and_fields(self):
        lst = Value(AbstractType.LIST, (prim(1),))
        assert lst.elements() == lst.content
        struct = Value(AbstractType.STRUCT, {"a": prim(1)})
        assert struct.fields() == struct.content
        with pytest.raises(ValueError):
            lst.fields()
        with pytest.raises(ValueError):
            struct.elements()

    def test_is_valid(self):
        assert prim(1).is_valid()
        assert not Value(AbstractType.INVALID, None).is_valid()

    def test_walk_visits_all_nested_values(self):
        inner = prim(1)
        lst = Value(AbstractType.LIST, (inner, prim(2)))
        ref = Value(AbstractType.REF, lst)
        visited = list(ref.walk())
        assert ref in visited and lst in visited and inner in visited
        assert len(visited) == 4

    def test_walk_handles_cycles(self):
        lst = Value(AbstractType.LIST, ())
        ref = Value(AbstractType.REF, lst)
        lst.content = (ref,)  # the list contains a ref back to itself
        visited = list(lst.walk())
        assert len(visited) == 2  # no infinite loop

    def test_walk_dict_visits_keys_and_values(self):
        key, val = prim("k", "str"), prim(1)
        dct = Value(AbstractType.DICT, {key: val})
        visited = list(dct.walk())
        assert key in visited and val in visited


class TestRender:
    def test_primitive_render(self):
        assert prim(5).render() == "5"
        assert prim("hi", "str").render() == "'hi'"

    def test_list_render(self):
        value = Value(AbstractType.LIST, (prim(1), prim(2)))
        assert value.render() == "[1, 2]"

    def test_struct_render(self):
        value = Value(AbstractType.STRUCT, {"x": prim(1), "y": prim(2)})
        assert value.render() == "{.x=1, .y=2}"

    def test_invalid_and_none_render(self):
        assert Value(AbstractType.INVALID, None).render() == "<invalid>"
        assert Value(AbstractType.NONE, None).render() == "None"

    def test_ref_render_uses_target_address(self):
        target = prim(5, address=0x1000)
        assert Value(AbstractType.REF, target).render() == "&0x1000"

    def test_function_render(self):
        assert Value(AbstractType.FUNCTION, "f").render() == "<function f>"

    def test_cyclic_graph_renders_finitely(self):
        """Cyclic value graphs are legal (walk and value_to_dict cut the
        back-edge); render must terminate on them too, not recurse until
        the interpreter dies. Cross-thread sampling can capture genuinely
        cyclic object graphs, which is how this used to blow up."""
        lst = Value(AbstractType.LIST, ())
        ref = Value(AbstractType.REF, lst)
        lst.content = (ref, prim(1))
        assert lst.render() == "[&(<...>), 1]"

        struct = Value(AbstractType.STRUCT, {})
        struct.content = {"self": struct, "x": prim(2)}
        assert struct.render() == "{.self=<...>, .x=2}"

    def test_shared_but_acyclic_values_render_fully(self):
        shared = prim(7)
        value = Value(AbstractType.LIST, (shared, shared))
        assert value.render() == "[7, 7]"


class TestFrame:
    def make_chain(self):
        outer = Frame(name="main", depth=0)
        inner = Frame(name="helper", depth=1, parent=outer)
        inner.variables["x"] = Variable("x", prim(1))
        return inner, outer

    def test_stack_returns_innermost_first(self):
        inner, outer = self.make_chain()
        assert inner.stack() == [inner, outer]

    def test_lookup(self):
        inner, _ = self.make_chain()
        assert inner.lookup("x").name == "x"
        assert inner.lookup("missing") is None

    def test_iteration_yields_variables(self):
        inner, _ = self.make_chain()
        assert [v.name for v in inner] == ["x"]


class TestSerialization:
    def test_primitive_round_trip(self):
        value = prim(42, "int", address=0xBEEF)
        decoded = value_from_dict(json.loads(json.dumps(value_to_dict(value))))
        assert decoded.content == 42
        assert decoded.address == 0xBEEF
        assert decoded.language_type == "int"
        assert decoded.location is Location.HEAP

    def test_bytes_round_trip(self):
        value = prim(b"\x00\xff", "bytes")
        decoded = value_from_dict(json.loads(json.dumps(value_to_dict(value))))
        assert decoded.content == b"\x00\xff"

    def test_nested_round_trip(self):
        value = Value(
            AbstractType.STRUCT,
            {
                "items": Value(AbstractType.LIST, (prim(1), prim(2))),
                "next": Value(AbstractType.REF, prim(3)),
                "nothing": Value(AbstractType.NONE, None),
            },
        )
        decoded = value_from_dict(value_to_dict(value))
        assert decoded.content["items"].content[1].content == 2
        assert decoded.content["next"].content.content == 3
        assert decoded.content["nothing"].abstract_type is AbstractType.NONE

    def test_dict_round_trip_preserves_pairs(self):
        key = prim("k", "str")
        value = Value(AbstractType.DICT, {_keyed(key): prim(9)})
        decoded = value_from_dict(value_to_dict(value))
        pairs = [(k.content, v.content) for k, v in decoded.content.items()]
        assert pairs == [("k", 9)]

    def test_variable_round_trip(self):
        variable = Variable("x", prim(1), scope="argument")
        decoded = variable_from_dict(variable_to_dict(variable))
        assert decoded.name == "x"
        assert decoded.scope == "argument"

    def test_frame_round_trip_preserves_parents(self):
        outer = Frame(name="main", depth=0, line=10, filename="f.py")
        inner = Frame(name="g", depth=1, parent=outer, line=3)
        inner.variables["v"] = Variable("v", prim(5))
        decoded = frame_from_dict(frame_to_dict(inner))
        assert decoded.name == "g"
        assert decoded.parent.name == "main"
        assert decoded.parent.line == 10
        assert decoded.variables["v"].value.content == 5

    def test_serialized_form_is_json_safe(self):
        value = Value(AbstractType.LIST, (prim(1), prim(b"\x80", "bytes")))
        text = json.dumps(value_to_dict(value))
        assert isinstance(text, str)


def _keyed(value):
    from repro.core.state import _HashableValueKey

    return _HashableValueKey.wrap(value)


class TestValueToPython:
    def test_primitives_pass_through(self):
        from repro.core.state import value_to_python

        assert value_to_python(prim(5)) == 5
        assert value_to_python(prim("x", "str")) == "x"
        assert value_to_python(Value(AbstractType.NONE, None)) is None
        assert value_to_python(Value(AbstractType.INVALID, None)) == "<invalid>"

    def test_refs_are_chased(self):
        from repro.core.state import value_to_python

        nested = Value(AbstractType.REF, Value(AbstractType.REF, prim(9)))
        assert value_to_python(nested) == 9

    def test_containers_project_to_python_data(self):
        from repro.core.state import value_to_python

        struct = Value(
            AbstractType.STRUCT,
            {
                "items": Value(AbstractType.LIST, (prim(1), prim(2))),
                "name": prim("box", "str"),
            },
        )
        assert value_to_python(struct) == {"items": [1, 2], "name": "box"}

    def test_dict_keys_projected_and_frozen(self):
        from repro.core.state import value_to_python

        key = Value(AbstractType.LIST, (prim(1),))
        table = Value(AbstractType.DICT, {key: prim(2)})
        assert value_to_python(table) == {(1,): 2}

    def test_cycles_collapse(self):
        from repro.core.state import value_to_python

        lst = Value(AbstractType.LIST, ())
        lst.content = (Value(AbstractType.REF, lst), prim(1))
        projected = value_to_python(lst)
        assert projected[1] == 1
        assert projected[0] == "..."

    def test_language_agnostic_comparison(self):
        from repro.core.state import value_to_python

        # A "C view" (REF to heap LIST) equals a "Python view" (REF to the
        # same logical list) after projection — the equivalence-tool basis.
        c_view = Value(
            AbstractType.REF,
            Value(AbstractType.LIST, (prim(1), prim(2)), address=100),
        )
        py_view = Value(
            AbstractType.REF,
            Value(AbstractType.LIST, (prim(1), prim(2)), address=999),
        )
        assert value_to_python(c_view) == value_to_python(py_view)


# ---------------------------------------------------------------------------
# Property-based: arbitrary value trees survive the JSON round trip
# ---------------------------------------------------------------------------

primitives = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
)


def value_strategy():
    base = st.one_of(
        primitives.map(lambda c: prim(c, type(c).__name__)),
        st.just(Value(AbstractType.NONE, None)),
        st.just(Value(AbstractType.INVALID, None)),
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=6,
        ).map(lambda n: Value(AbstractType.FUNCTION, n)),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.lists(children, max_size=4).map(
                lambda items: Value(AbstractType.LIST, tuple(items))
            ),
            st.dictionaries(
                st.text(
                    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                    min_size=1,
                    max_size=5,
                ),
                children,
                max_size=3,
            ).map(lambda fields: Value(AbstractType.STRUCT, fields)),
            children.map(lambda target: Value(AbstractType.REF, target)),
        ),
        max_leaves=12,
    )


@given(value_strategy())
@settings(max_examples=60, deadline=None)
def test_value_json_round_trip_property(value):
    encoded = json.dumps(value_to_dict(value))
    decoded = value_from_dict(json.loads(encoded))
    assert decoded.render() == value.render()
    assert decoded.abstract_type is value.abstract_type


@given(value_strategy())
@settings(max_examples=40, deadline=None)
def test_walk_terminates_and_includes_root(value):
    visited = list(value.walk())
    assert value in visited
    assert len(visited) < 10_000
