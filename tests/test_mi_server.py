"""Tests for the debug server, driven through its pure handle() interface."""

import json

import pytest

from repro.mi.protocol import parse_record
from repro.mi.server import DebugServer

C_PROGRAM = """\
int total = 0;

int square(int v) {
    int r = v * v;
    return r;
}

int main(void) {
    int i;
    for (i = 1; i <= 3; i++) {
        total = total + square(i);
    }
    return total;
}
"""

C_RECURSIVE = """\
int down(int n) {
    if (n == 0) {
        return 0;
    }
    return down(n - 1);
}

int main(void) {
    return down(3);
}
"""

ASM_PROGRAM = """\
main:
    li t0, 5
    li t1, 7
    call add2
    li a7, 93
    ecall
add2:
    add a0, t0, t1
    ret
"""


def make_server(write_program, source, name="prog.c"):
    return DebugServer(write_program(name, source))


def records(lines):
    return [parse_record(line) for line in lines]


def last_stopped(lines):
    stopped = [r for r in records(lines) if r.kind == "stopped"]
    assert stopped, f"no *stopped in {lines}"
    return stopped[-1].payload


@pytest.fixture
def server(write_program):
    return make_server(write_program, C_PROGRAM)


class TestLifecycle:
    def test_run_pauses_at_first_line(self, server):
        lines = server.handle("-exec-run")
        assert records(lines)[0].kind == "running"
        payload = last_stopped(lines)
        assert payload["reason"] == "end-stepping-range"
        assert payload["func"] == "main"

    def test_double_run_is_error(self, server):
        server.handle("-exec-run")
        record = records(server.handle("-exec-run"))[0]
        assert record.kind == "error"

    def test_continue_to_exit(self, server):
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "exited"
        assert payload["exitcode"] == 1 + 4 + 9

    def test_control_after_exit_is_error(self, server):
        server.handle("-exec-run")
        server.handle("-exec-continue")
        record = records(server.handle("-exec-continue"))[0]
        assert record.kind == "error"

    def test_control_before_run_is_error(self, server):
        record = records(server.handle("-exec-continue"))[0]
        assert record.kind == "error"

    def test_unknown_command(self, server):
        record = records(server.handle("-frobnicate"))[0]
        assert record.kind == "error"
        assert "undefined command" in record.payload

    def test_gdb_exit_sets_finished(self, server):
        assert records(server.handle("-gdb-exit"))[0].kind == "done"
        assert server._finished

    def test_crash_reports_error_in_stopped(self, write_program):
        server = make_server(
            write_program,
            "int main(void) { int *p = (int*)5; return *p; }",
            "crash.c",
        )
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["exitcode"] == 139
        assert "invalid" in payload["error"]


class TestStepping:
    def test_step_enters_function(self, server):
        server.handle("-exec-run")
        seen = set()
        for _ in range(40):
            payload = last_stopped(server.handle("-exec-step"))
            if payload["reason"] == "exited":
                break
            seen.add(payload["func"])
        assert "square" in seen

    def test_next_stays_in_main(self, server):
        server.handle("-exec-run")
        for _ in range(40):
            payload = last_stopped(server.handle("-exec-next"))
            if payload["reason"] == "exited":
                break
            assert payload["func"] == "main"

    def test_finish_returns_to_caller(self, server):
        server.handle("-break-insert square")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["func"] == "square"
        payload = last_stopped(server.handle("-exec-finish"))
        assert payload["func"] == "main"


class TestBreakpoints:
    def test_line_breakpoint(self, server):
        done = records(server.handle("-break-insert 4"))[0]
        assert done.kind == "done"
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["line"] == 4
        assert payload["bkptno"] == done.payload["number"]

    def test_file_line_form(self, server):
        server.handle("-break-insert prog.c:4")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["line"] == 4

    def test_function_breakpoint(self, server):
        server.handle("-break-insert square")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["func"] == "square"

    def test_breakpoint_maxdepth(self, write_program):
        server = make_server(write_program, C_RECURSIVE, "rec.c")
        server.handle("-break-insert down --maxdepth 2")
        server.handle("-exec-run")
        depths = []
        while True:
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
            depths.append(payload["depth"])
        assert depths == [1, 2]

    def test_break_delete_clears_all(self, server):
        server.handle("-break-insert 4")
        server.handle("-break-delete all")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "exited"

    def test_break_delete_by_number(self, server):
        first = records(server.handle("-break-insert 4"))[0].payload["number"]
        records(server.handle("-break-insert 13"))
        assert records(server.handle(f"-break-delete {first}"))[0].kind == "done"
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["line"] == 13  # only the second breakpoint remains

    def test_break_delete_unknown_number(self, server):
        assert records(server.handle("-break-delete 99"))[0].kind == "error"

    def test_break_disable_enable(self, server):
        number = records(server.handle("-break-insert 4"))[0].payload["number"]
        server.handle(f"-break-disable {number}")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "exited"  # disabled: never hit

    def test_enable_restores_watch(self, write_program):
        server = make_server(write_program, C_PROGRAM, "p2.c")
        number = records(server.handle("-break-watch total"))[0].payload["number"]
        server.handle(f"-break-disable {number}")
        server.handle(f"-break-enable {number}")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "watchpoint-trigger"

    def test_missing_location_is_error(self, server):
        assert records(server.handle("-break-insert"))[0].kind == "error"


class TestWatchAndTrack:
    def test_watch_global(self, server):
        server.handle("-break-watch total")
        server.handle("-exec-run")
        values = []
        while True:
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
            assert payload["reason"] == "watchpoint-trigger"
            values.append(payload["new"])
        assert len(values) == 3  # 1, 5, 14

    def test_watch_does_not_fire_on_initial_value(self, server):
        server.handle("-break-watch total")
        lines = server.handle("-exec-run")
        assert last_stopped(lines)["reason"] == "end-stepping-range"

    def test_watch_function_scoped_local(self, server):
        server.handle("-break-watch square:r")
        server.handle("-exec-run")
        payload = last_stopped(server.handle("-exec-continue"))
        assert payload["reason"] == "watchpoint-trigger"
        assert payload["var"] == "square:r"

    def test_track_function_entry_exit(self, server):
        server.handle("-track-function square")
        server.handle("-exec-run")
        events = []
        while True:
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
            events.append(payload["reason"])
            if payload["reason"] == "function-exit":
                assert payload["retval"] in ("1", "4", "9")
        assert events == ["function-entry", "function-exit"] * 3

    def test_track_maxdepth(self, write_program):
        server = make_server(write_program, C_RECURSIVE, "rec.c")
        server.handle("-track-function down --maxdepth 1")
        server.handle("-exec-run")
        events = []
        while True:
            payload = last_stopped(server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
            events.append(payload["reason"])
        assert events == ["function-entry", "function-exit"]


class TestInspection:
    def test_stack_list_frames(self, server):
        server.handle("-break-insert square")
        server.handle("-exec-run")
        server.handle("-exec-continue")
        # step into the body so the local exists
        server.handle("-exec-step")
        frame_data = records(server.handle("-stack-list-frames"))[0].payload
        assert frame_data["name"] == "square"
        assert frame_data["parent"]["name"] == "main"
        assert frame_data["variables"]["v"]["value"]["content"] == 1
        assert frame_data["variables"]["v"]["scope"] == "argument"

    def test_globals(self, server):
        server.handle("-exec-run")
        payload = records(server.handle("-data-list-globals"))[0].payload
        assert payload["total"]["value"]["content"] == 0

    def test_inspection_before_run_is_error(self, server):
        assert records(server.handle("-stack-list-frames"))[0].kind == "error"

    def test_read_memory(self, server):
        server.handle("-exec-run")
        globals_payload = records(server.handle("-data-list-globals"))[0].payload
        address = globals_payload["total"]["value"]["address"]
        record = records(
            server.handle(f"-data-read-memory {address:#x} 4")
        )[0]
        assert record.payload["bytes"] == "00000000"

    def test_registers_error_for_c(self, server):
        assert (
            records(server.handle("-data-list-register-values"))[0].kind
            == "error"
        )

    def test_evaluate_expression(self, server):
        server.handle("-exec-run")
        record = records(server.handle("-data-evaluate-expression total"))[0]
        assert record.kind == "done"
        record = records(server.handle("-data-evaluate-expression missing"))[0]
        assert record.kind == "error"

    def test_list_functions(self, server):
        payload = records(server.handle("-list-functions"))[0].payload
        assert payload == ["main", "square"]

    def test_heap_blocks(self, write_program):
        server = make_server(
            write_program,
            "int main(void) {\n"
            "    int *p = malloc(12);\n"
            "    int x = 0;\n"
            "    free(p);\n"
            "    return 0;\n"
            "}",
            "heap.c",
        )
        server.handle("-break-insert 3")
        server.handle("-exec-run")
        server.handle("-exec-continue")
        blocks = records(server.handle("-heap-blocks"))[0].payload
        assert list(blocks.values()) == [12]

    def test_malformed_command_line(self, server):
        record = records(server.handle("not a command"))[0]
        assert record.kind == "error"


class TestAssemblyInferior:
    @pytest.fixture
    def asm_server(self, write_program):
        return make_server(write_program, ASM_PROGRAM, "prog.s")

    def test_run_and_exit(self, asm_server):
        asm_server.handle("-exec-run")
        while True:
            payload = last_stopped(asm_server.handle("-exec-continue"))
            if payload["reason"] == "exited":
                break
        assert payload["exitcode"] == 12

    def test_registers_and_pc(self, asm_server):
        asm_server.handle("-exec-run")
        payload = records(
            asm_server.handle("-data-list-register-values")
        )[0].payload
        assert "pc" in payload and "sp" in payload

    def test_disassemble_and_ret_scan(self, asm_server):
        listing = records(asm_server.handle("-data-disassemble add2"))[0].payload
        returns = [entry for entry in listing if entry["is_return"]]
        assert len(returns) == 1

    def test_address_breakpoint(self, asm_server):
        listing = records(asm_server.handle("-data-disassemble add2"))[0].payload
        ret_address = next(e["address"] for e in listing if e["is_return"])
        asm_server.handle(f"-break-insert *{ret_address:#x}")
        asm_server.handle("-exec-run")
        payload = last_stopped(asm_server.handle("-exec-continue"))
        assert payload["reason"] == "breakpoint-hit"
        assert payload["pc"] == ret_address

    def test_watch_register(self, asm_server):
        asm_server.handle("-break-watch t0")
        asm_server.handle("-exec-run")
        payload = last_stopped(asm_server.handle("-exec-continue"))
        assert payload["reason"] == "watchpoint-trigger"
        assert payload["new"] == "5"

    def test_asm_frames_have_registers(self, asm_server):
        asm_server.handle("-exec-run")
        frame = records(asm_server.handle("-stack-list-frames"))[0].payload
        assert frame["name"] == "main"
        assert "sp" in frame["variables"]


class TestTimeline:
    """The -timeline-* family: server-side recording for time travel."""

    def test_requires_start_first(self, server):
        server.handle("-exec-run")
        for command in (
            "-timeline-length",
            "-timeline-dump",
            "-timeline-snapshot 0",
            "-timeline-drop-last",
        ):
            record = records(server.handle(command))[0]
            assert record.kind == "error"
            assert "-timeline-start" in record.payload

    def test_records_every_stop(self, server):
        server.handle("-break-insert square")
        assert records(server.handle("-timeline-start"))[0].payload == {
            "recording": True
        }
        server.handle("-exec-run")
        for _ in range(3):
            server.handle("-exec-continue")
        server.handle("-exec-continue")  # to exit
        payload = records(server.handle("-timeline-length"))[0].payload
        # entry pause + 3 breakpoint hits + exit
        assert payload == {"length": 5, "start": 0, "retained": 5}

    def test_start_mid_run_opens_with_current_state(self, server):
        server.handle("-exec-run")
        server.handle("-exec-step")
        server.handle("-timeline-start")
        payload = records(server.handle("-timeline-length"))[0].payload
        assert payload["length"] == 1

    def test_snapshot_and_dump_round_trip(self, server):
        from repro.core.timeline import StateSnapshot, Timeline

        server.handle("-break-insert square")
        server.handle("-timeline-start --keyframe-interval 2")
        server.handle("-exec-run")
        server.handle("-exec-continue")
        snap_payload = records(server.handle("-timeline-snapshot 1"))[0].payload
        snapshot = StateSnapshot.from_dict(snap_payload)
        assert snapshot.func_name == "square"
        assert snapshot.lookup("v").value.content == 1

        timeline = Timeline.from_dict(
            records(server.handle("-timeline-dump"))[0].payload
        )
        assert timeline.backend == "GDB"
        assert timeline.retained == 2
        assert timeline.snapshot(1) == snapshot

    def test_stop_suspends_recording(self, server):
        server.handle("-timeline-start")
        server.handle("-exec-run")
        assert records(server.handle("-timeline-stop"))[0].payload == {
            "recording": False
        }
        server.handle("-exec-step")
        payload = records(server.handle("-timeline-length"))[0].payload
        assert payload["length"] == 1  # the step was not recorded

    def test_drop_last(self, server):
        server.handle("-timeline-start")
        server.handle("-exec-run")
        server.handle("-exec-step")
        assert records(server.handle("-timeline-drop-last"))[0].payload == {
            "dropped": True
        }
        payload = records(server.handle("-timeline-length"))[0].payload
        assert payload["length"] == 1

    def test_ring_bound_over_the_pipe(self, server):
        server.handle("-timeline-start --keyframe-interval 2 --max-snapshots 4")
        server.handle("-exec-run")
        for _ in range(9):
            server.handle("-exec-step")
        payload = records(server.handle("-timeline-length"))[0].payload
        assert payload["length"] == 10
        assert payload["retained"] <= 5
        assert payload["start"] > 0
