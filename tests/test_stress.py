"""Stress and soak tests: the handshake and servers under sustained load."""

import pytest

from repro.core.pause import PauseReasonType
from repro.gdbtracker.tracker import GDBTracker
from repro.pytracker.tracker import PythonTracker


class TestHandshakeStress:
    def test_thousands_of_step_handshakes(self, write_program):
        """Each step() is a full wake/wait round trip; none may be lost."""
        program = "\n".join(f"v{i} = {i}" for i in range(1500))
        tracker = PythonTracker()
        tracker.load_program(write_program("long.py", program))
        tracker.start()
        steps = 0
        while tracker.get_exit_code() is None:
            tracker.step()
            steps += 1
        tracker.terminate()
        assert steps == 1500

    def test_interleaved_control_and_inspection(self, write_program):
        source = (
            "def grow(acc, n):\n"
            "    acc.append(n)\n"
            "    return acc\n"
            "\n"
            "data = []\n"
            "for i in range(30):\n"
            "    grow(data, i)\n"
            "total = len(data)\n"
        )
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", source))
        tracker.track_function("grow")
        tracker.start()
        lengths = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if (
                tracker.pause_reason is not None
                and tracker.pause_reason.type is PauseReasonType.CALL
            ):
                frame = tracker.get_current_frame()  # inspect at every pause
                target = frame.variables["acc"].value.content
                lengths.append(len(target.content))
        tracker.terminate()
        assert lengths == list(range(30))

    def test_many_sequential_trackers(self, write_program):
        """Tracker instances are independent; threads never leak state."""
        program = write_program("tiny.py", "x = 1\ny = x + 1\n")
        for _ in range(25):
            tracker = PythonTracker()
            tracker.load_program(program)
            tracker.start()
            tracker.resume()
            assert tracker.get_exit_code() == 0
            tracker.terminate()

    def test_terminate_from_every_pause_point(self, write_program):
        """Terminating at any pause leaves no stuck inferior thread."""
        program = write_program("p.py", "a = 1\nb = 2\nc = 3\nd = 4\n")
        for pauses in range(1, 5):
            tracker = PythonTracker()
            tracker.load_program(program)
            tracker.start()
            for _ in range(pauses - 1):
                tracker.step()
            tracker.terminate()
            assert not tracker._thread.is_alive()


class TestServerSoak:
    def test_long_c_run_with_many_pauses(self, write_program):
        source = (
            "int work(int n) {\n"
            "    return n * 2 + 1;\n"
            "}\n"
            "int main(void) {\n"
            "    int total = 0;\n"
            "    for (int i = 0; i < 40; i++) {\n"
            "        total = total + work(i);\n"
            "    }\n"
            "    return total % 100;\n"
            "}\n"
        )
        tracker = GDBTracker()
        tracker.load_program(write_program("soak.c", source))
        tracker.track_function("work")
        tracker.start()
        calls = returns = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            reason = tracker.pause_reason
            if reason.type is PauseReasonType.CALL:
                calls += 1
            elif reason.type is PauseReasonType.RETURN:
                returns += 1
        assert calls == returns == 40
        assert tracker.get_exit_code() == (sum(2 * i + 1 for i in range(40)) % 100)
        tracker.terminate()

    def test_inspection_every_line_over_the_pipe(self, write_program):
        source = (
            "int main(void) {\n"
            "    int a = 1;\n"
            "    int b = 2;\n"
            "    int c = a + b;\n"
            "    int d = c * c;\n"
            "    return d;\n"
            "}\n"
        )
        tracker = GDBTracker()
        tracker.load_program(write_program("p.c", source))
        tracker.start()
        snapshots = 0
        while tracker.get_exit_code() is None:
            frame = tracker.get_current_frame()
            assert frame.name == "main"
            tracker.get_global_variables()
            snapshots += 1
            tracker.step()
        assert snapshots == 5
        tracker.terminate()
