"""Tests for the multiplexing tracker service (:mod:`repro.service`).

Everything here drives real child processes through the real asyncio
stack — warm pool, session manager, TCP front-end, stdio front-end — but
each test builds the smallest service that exercises its claim (pool of
one or two, a handful of sessions). The event loop is entered with
``asyncio.run`` per test; no async test framework is required.
"""

import asyncio
import os
import signal
import sys

import pytest

from repro.core.errors import TrackerError
from repro.mi.client import MIClient, PipeTransport
from repro.service import (
    ServiceBusy,
    ServiceClient,
    ServiceConfig,
    SessionManager,
    TrackerService,
    WarmPool,
)

COUNTING_PY = """\
total = 0
for i in range(5):
    total = total + i
    print("tick", i)
print("done", total)
"""

SPINNING_PY = """\
i = 0
while i < 1000000000:
    i = i + 1
"""

EXITING_PY = """\
import os
os._exit(3)
"""


def run(coroutine):
    return asyncio.run(coroutine)


async def make_service(**overrides):
    defaults = dict(pool_size=1, port=0)
    defaults.update(overrides)
    service = TrackerService(ServiceConfig(**defaults))
    await service.start()
    return service


# ---------------------------------------------------------------------------
# Warm pool lifecycle
# ---------------------------------------------------------------------------


class TestWarmPool:
    def test_clean_close_reuses_the_same_child(self, write_program):
        """A run-to-completion session hands its child back to the shelf."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                first_pid = first.child.pid
                await first.run_command("-exec-run")
                while not first.exited:
                    await first.run_command("-exec-continue")
                await manager.close_session(first)
                second = await manager.open(path)
                second_pid = second.child.pid
                await manager.close_session(second)
                return first_pid, second_pid, dict(pool.stats)
            finally:
                await manager.close()

        first_pid, second_pid, stats = run(scenario())
        assert first_pid == second_pid
        assert stats["reused"] >= 1

    def test_never_started_session_is_also_reusable(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                pid = first.child.pid
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened
            finally:
                await manager.close()

        pid, reopened = run(scenario())
        assert pid == reopened

    def test_mid_run_close_discards_the_child(self, write_program):
        """A started-but-unfinished inferior may haunt the child: retire."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                pid = first.child.pid
                await first.run_command("-exec-run")  # started, not exited
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened, dict(pool.stats)
            finally:
                await manager.close()

        pid, reopened, stats = run(scenario())
        assert pid != reopened
        assert stats["discarded"] >= 1

    def test_limited_session_taints_the_child(self, write_program):
        from repro.subproc.limits import ResourceLimits

        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(
                    path, limits=ResourceLimits(file_size=10_000_000_000)
                )
                pid = first.child.pid
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened
            finally:
                await manager.close()

        pid, reopened = run(scenario())
        assert pid != reopened

    def test_poisoned_parked_child_is_discarded_on_acquire(
        self, write_program
    ):
        """A killed shelf child fails its health check; acquire recovers."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            await pool.start()
            try:
                victim = pool._idle[0]
                os.kill(victim.pid, signal.SIGKILL)
                await victim.transport._process.wait()
                child = await pool.acquire()
                alive_pid = child.pid
                await pool.release(child, reusable=False)
                return victim.pid, alive_pid, dict(pool.stats)
            finally:
                await pool.close()

        victim_pid, alive_pid, stats = run(scenario())
        assert victim_pid != alive_pid
        assert stats["discarded"] >= 1

    def test_pool_refills_under_churn(self, write_program):
        """Draining the shelf triggers background refill back to size."""

        async def scenario():
            pool = WarmPool(size=2)
            await pool.start()
            try:
                first = await pool.acquire()
                second = await pool.acquire()
                await pool.release(first, reusable=False)
                await pool.release(second, reusable=False)
                for _ in range(100):  # wait for the refill task
                    if len(pool._idle) >= pool.size:
                        break
                    await asyncio.sleep(0.1)
                return len(pool._idle), dict(pool.stats)
            finally:
                await pool.close()

        idle, stats = run(scenario())
        assert idle == 2
        assert stats["spawned"] >= 4  # 2 initial + 2 refills

    def test_empty_shelf_falls_back_to_cold_spawn(self):
        async def scenario():
            pool = WarmPool(size=0)  # warming disabled
            await pool.start()
            try:
                child = await pool.acquire()
                warm = child.warm
                await pool.release(child, reusable=False)
                return warm, dict(pool.stats)
            finally:
                await pool.close()

        warm, stats = run(scenario())
        assert warm is False
        assert stats["cold_spawns"] == 1


# ---------------------------------------------------------------------------
# Admission control and idle reaping
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_reject_mode_raises_service_busy(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=1, queue=False)
            await manager.start()
            try:
                first = await manager.open(path)
                with pytest.raises(ServiceBusy):
                    await manager.open(path)
                await manager.close_session(first)
                return manager.stats.rejected
            finally:
                await manager.close()

        assert run(scenario()) == 1

    def test_queue_mode_waits_for_a_slot(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=1, queue=True)
            await manager.start()
            try:
                first = await manager.open(path)
                waiter = asyncio.ensure_future(manager.open(path))
                await asyncio.sleep(0.1)
                assert not waiter.done()  # parked, not rejected
                await manager.close_session(first)
                second = await asyncio.wait_for(waiter, 30)
                await manager.close_session(second)
                return manager.stats.queued
            finally:
                await manager.close()

        assert run(scenario()) == 1

    def test_idle_sessions_are_reaped(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(
                pool, max_sessions=4, idle_timeout=0.3
            )
            await manager.start()
            try:
                session = await manager.open(path)
                for _ in range(100):
                    if session.closed:
                        break
                    await asyncio.sleep(0.1)
                return session.closed, manager.stats.reaped
            finally:
                await manager.close()

        closed, reaped = run(scenario())
        assert closed
        assert reaped == 1


# ---------------------------------------------------------------------------
# The service end-to-end over TCP
# ---------------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_two_concurrent_sessions(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(pool_size=2)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    a = await client.open_tracker(path)
                    b = await client.open_tracker(path)
                    assert a.session_id != b.session_id
                    await a.break_before_line(5)
                    stops = await asyncio.gather(a.start(), b.start())
                    assert all(
                        s["reason"] == "end-stepping-range" for s in stops
                    )
                    hit = await a.resume()
                    assert hit["reason"] == "breakpoint-hit"
                    while b.get_exit_code() is None:
                        await b.resume()
                    while a.get_exit_code() is None:
                        await a.resume()
                    assert "done 10" in a.get_output()
                    assert "done 10" in b.get_output()
                    await a.close()
                    await b.close()
            finally:
                await service.close()

        run(scenario())

    def test_child_death_becomes_an_exited_stop(self, write_program):
        path = write_program("exiting.py", EXITING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    stop = await tracker.resume()
                    assert stop["reason"] == "exited"
                    assert stop["exitcode"] == 3
                    # the dead session answers, it does not hang
                    stop_again = await tracker.resume()
                    assert stop_again["reason"] == "exited"
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())

    def test_deadline_interrupts_a_spinning_inferior(self, write_program):
        path = write_program("spin.py", SPINNING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    stop = await tracker.resume(timeout=0.5)
                    assert stop["reason"] == "interrupted"
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())

    def test_service_stats_and_unknown_session_error(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    stats = await client.service_stats()
                    assert stats["open_sessions"] == 1
                    assert stats["pool"]["spawned"] >= 1
                    with pytest.raises(TrackerError):
                        await client._control_request(
                            "ghost-exec-run", timeout=10
                        )
                    await tracker.close()
                    stats = await client.service_stats()
                    assert stats["open_sessions"] == 0
            finally:
                await service.close()

        run(scenario())

    def test_eight_concurrent_sessions_smoke(self, write_program):
        """The CI smoke contract: 8 sessions, breakpoint + resume each,
        clean shutdown, all inside the suite's per-test timeout."""
        path = write_program("prog.py", COUNTING_PY)

        async def drive(client):
            tracker = await client.open_tracker(path)
            await tracker.break_before_line(5)
            await tracker.start()
            stop = await tracker.resume()
            assert stop["reason"] == "breakpoint-hit"
            while tracker.get_exit_code() is None:
                await tracker.resume()
            assert "done 10" in tracker.get_output()
            await tracker.close()
            return tracker.session_id

        async def scenario():
            service = await make_service(pool_size=4, max_sessions=8)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    ids = await asyncio.gather(
                        *(drive(client) for _ in range(8))
                    )
                    assert len(set(ids)) == 8
                    stats = await client.service_stats()
                    assert stats["total_opened"] == 8
                    assert stats["closed"] == 8
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Legacy (id-less) clients against the service
# ---------------------------------------------------------------------------


class TestLegacyClients:
    def test_blocking_miclient_over_stdio(self, write_program):
        """A stock MIClient cannot tell the service from a child server."""
        path = write_program("prog.py", COUNTING_PY)
        argv = [
            sys.executable, "-m", "repro", "serve", "--stdio", "--pool", "1",
        ]
        client = MIClient(
            path, transport_factory=lambda: PipeTransport(argv)
        )
        try:
            assert client.execute("-file-exec-and-symbols", [path])
            assert client.execute("-break-insert", ["5"]) == {"number": 1}
            first = client.run_control("-exec-run")
            assert first["reason"] == "end-stepping-range"
            hit = client.run_control("-exec-continue")
            assert hit["reason"] == "breakpoint-hit"
            while True:
                payload = client.run_control("-exec-continue")
                if payload["reason"] == "exited":
                    break
            assert "done 10" in "".join(client.console)
        finally:
            client.close()

    def test_idless_command_without_session_is_an_error(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                reader, writer = await asyncio.open_connection(host, port)
                greeting = await reader.readline()
                assert b"service" in greeting
                writer.write(b"-exec-run\n")
                await writer.drain()
                reply = await reader.readline()
                assert reply.startswith(b"^error")
                writer.close()
                await writer.wait_closed()
            finally:
                await service.close()

        run(scenario())
