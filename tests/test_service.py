"""Tests for the multiplexing tracker service (:mod:`repro.service`).

Everything here drives real child processes through the real asyncio
stack — warm pool, session manager, TCP front-end, stdio front-end — but
each test builds the smallest service that exercises its claim (pool of
one or two, a handful of sessions). The event loop is entered with
``asyncio.run`` per test; no async test framework is required.
"""

import asyncio
import json
import os
import signal
import sys

import pytest

from repro.core.errors import ServerCrashError, TrackerError
from repro.mi import protocol
from repro.mi.client import MIClient, PipeTransport
from repro.service import (
    ProgramQuarantined,
    ServiceAuthError,
    ServiceBusy,
    ServiceClient,
    ServiceConfig,
    ServiceDraining,
    SessionManager,
    SessionOverloaded,
    TrackerService,
    WarmPool,
)
from repro.testing.faults import ChaosPlan, ChaosProxy

COUNTING_PY = """\
total = 0
for i in range(5):
    total = total + i
    print("tick", i)
print("done", total)
"""

SPINNING_PY = """\
i = 0
while i < 1000000000:
    i = i + 1
"""

EXITING_PY = """\
import os
os._exit(3)
"""

SLOW_PY = """\
import time
print("start")
time.sleep(0.4)
print("end")
"""


def run(coroutine):
    return asyncio.run(coroutine)


async def make_service(**overrides):
    defaults = dict(pool_size=1, port=0)
    defaults.update(overrides)
    service = TrackerService(ServiceConfig(**defaults))
    await service.start()
    return service


# ---------------------------------------------------------------------------
# Warm pool lifecycle
# ---------------------------------------------------------------------------


class TestWarmPool:
    def test_clean_close_reuses_the_same_child(self, write_program):
        """A run-to-completion session hands its child back to the shelf."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                first_pid = first.child.pid
                await first.run_command("-exec-run")
                while not first.exited:
                    await first.run_command("-exec-continue")
                await manager.close_session(first)
                second = await manager.open(path)
                second_pid = second.child.pid
                await manager.close_session(second)
                return first_pid, second_pid, dict(pool.stats)
            finally:
                await manager.close()

        first_pid, second_pid, stats = run(scenario())
        assert first_pid == second_pid
        assert stats["reused"] >= 1

    def test_never_started_session_is_also_reusable(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                pid = first.child.pid
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened
            finally:
                await manager.close()

        pid, reopened = run(scenario())
        assert pid == reopened

    def test_mid_run_close_discards_the_child(self, write_program):
        """A started-but-unfinished inferior may haunt the child: retire."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(path)
                pid = first.child.pid
                await first.run_command("-exec-run")  # started, not exited
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened, dict(pool.stats)
            finally:
                await manager.close()

        pid, reopened, stats = run(scenario())
        assert pid != reopened
        assert stats["discarded"] >= 1

    def test_limited_session_taints_the_child(self, write_program):
        from repro.subproc.limits import ResourceLimits

        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                first = await manager.open(
                    path, limits=ResourceLimits(file_size=10_000_000_000)
                )
                pid = first.child.pid
                await manager.close_session(first)
                second = await manager.open(path)
                reopened = second.child.pid
                await manager.close_session(second)
                return pid, reopened
            finally:
                await manager.close()

        pid, reopened = run(scenario())
        assert pid != reopened

    def test_poisoned_parked_child_is_discarded_on_acquire(
        self, write_program
    ):
        """A killed shelf child fails its health check; acquire recovers."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            await pool.start()
            try:
                victim = pool._idle[0]
                os.kill(victim.pid, signal.SIGKILL)
                await victim.transport._process.wait()
                child = await pool.acquire()
                alive_pid = child.pid
                await pool.release(child, reusable=False)
                return victim.pid, alive_pid, dict(pool.stats)
            finally:
                await pool.close()

        victim_pid, alive_pid, stats = run(scenario())
        assert victim_pid != alive_pid
        assert stats["discarded"] >= 1

    def test_pool_refills_under_churn(self, write_program):
        """Draining the shelf triggers background refill back to size."""

        async def scenario():
            pool = WarmPool(size=2)
            await pool.start()
            try:
                first = await pool.acquire()
                second = await pool.acquire()
                await pool.release(first, reusable=False)
                await pool.release(second, reusable=False)
                for _ in range(100):  # wait for the refill task
                    if len(pool._idle) >= pool.size:
                        break
                    await asyncio.sleep(0.1)
                return len(pool._idle), dict(pool.stats)
            finally:
                await pool.close()

        idle, stats = run(scenario())
        assert idle == 2
        assert stats["spawned"] >= 4  # 2 initial + 2 refills

    def test_empty_shelf_falls_back_to_cold_spawn(self):
        async def scenario():
            pool = WarmPool(size=0)  # warming disabled
            await pool.start()
            try:
                child = await pool.acquire()
                warm = child.warm
                await pool.release(child, reusable=False)
                return warm, dict(pool.stats)
            finally:
                await pool.close()

        warm, stats = run(scenario())
        assert warm is False
        assert stats["cold_spawns"] == 1


# ---------------------------------------------------------------------------
# Admission control and idle reaping
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_reject_mode_raises_service_busy(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=1, queue=False)
            await manager.start()
            try:
                first = await manager.open(path)
                with pytest.raises(ServiceBusy):
                    await manager.open(path)
                await manager.close_session(first)
                return manager.stats.rejected
            finally:
                await manager.close()

        assert run(scenario()) == 1

    def test_queue_mode_waits_for_a_slot(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=1, queue=True)
            await manager.start()
            try:
                first = await manager.open(path)
                waiter = asyncio.ensure_future(manager.open(path))
                await asyncio.sleep(0.1)
                assert not waiter.done()  # parked, not rejected
                await manager.close_session(first)
                second = await asyncio.wait_for(waiter, 30)
                await manager.close_session(second)
                return manager.stats.queued
            finally:
                await manager.close()

        assert run(scenario()) == 1

    def test_idle_sessions_are_reaped(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(
                pool, max_sessions=4, idle_timeout=0.3
            )
            await manager.start()
            try:
                session = await manager.open(path)
                for _ in range(100):
                    if session.closed:
                        break
                    await asyncio.sleep(0.1)
                return session.closed, manager.stats.reaped
            finally:
                await manager.close()

        closed, reaped = run(scenario())
        assert closed
        assert reaped == 1


# ---------------------------------------------------------------------------
# The service end-to-end over TCP
# ---------------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_two_concurrent_sessions(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(pool_size=2)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    a = await client.open_tracker(path)
                    b = await client.open_tracker(path)
                    assert a.session_id != b.session_id
                    await a.break_before_line(5)
                    stops = await asyncio.gather(a.start(), b.start())
                    assert all(
                        s["reason"] == "end-stepping-range" for s in stops
                    )
                    hit = await a.resume()
                    assert hit["reason"] == "breakpoint-hit"
                    while b.get_exit_code() is None:
                        await b.resume()
                    while a.get_exit_code() is None:
                        await a.resume()
                    assert "done 10" in a.get_output()
                    assert "done 10" in b.get_output()
                    await a.close()
                    await b.close()
            finally:
                await service.close()

        run(scenario())

    def test_child_death_becomes_an_exited_stop(self, write_program):
        path = write_program("exiting.py", EXITING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    stop = await tracker.resume()
                    assert stop["reason"] == "exited"
                    assert stop["exitcode"] == 3
                    # the dead session answers, it does not hang
                    stop_again = await tracker.resume()
                    assert stop_again["reason"] == "exited"
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())

    def test_deadline_interrupts_a_spinning_inferior(self, write_program):
        path = write_program("spin.py", SPINNING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    stop = await tracker.resume(timeout=0.5)
                    assert stop["reason"] == "interrupted"
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())

    def test_service_stats_and_unknown_session_error(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    stats = await client.service_stats()
                    assert stats["open_sessions"] == 1
                    assert stats["pool"]["spawned"] >= 1
                    with pytest.raises(TrackerError):
                        await client._control_request(
                            "ghost-exec-run", timeout=10
                        )
                    await tracker.close()
                    stats = await client.service_stats()
                    assert stats["open_sessions"] == 0
            finally:
                await service.close()

        run(scenario())

    def test_eight_concurrent_sessions_smoke(self, write_program):
        """The CI smoke contract: 8 sessions, breakpoint + resume each,
        clean shutdown, all inside the suite's per-test timeout."""
        path = write_program("prog.py", COUNTING_PY)

        async def drive(client):
            tracker = await client.open_tracker(path)
            await tracker.break_before_line(5)
            await tracker.start()
            stop = await tracker.resume()
            assert stop["reason"] == "breakpoint-hit"
            while tracker.get_exit_code() is None:
                await tracker.resume()
            assert "done 10" in tracker.get_output()
            await tracker.close()
            return tracker.session_id

        async def scenario():
            service = await make_service(pool_size=4, max_sessions=8)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    ids = await asyncio.gather(
                        *(drive(client) for _ in range(8))
                    )
                    assert len(set(ids)) == 8
                    stats = await client.service_stats()
                    assert stats["total_opened"] == 8
                    assert stats["closed"] == 8
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Legacy (id-less) clients against the service
# ---------------------------------------------------------------------------


class TestLegacyClients:
    def test_blocking_miclient_over_stdio(self, write_program):
        """A stock MIClient cannot tell the service from a child server."""
        path = write_program("prog.py", COUNTING_PY)
        argv = [
            sys.executable, "-m", "repro", "serve", "--stdio", "--pool", "1",
        ]
        client = MIClient(
            path, transport_factory=lambda: PipeTransport(argv)
        )
        try:
            assert client.execute("-file-exec-and-symbols", [path])
            assert client.execute("-break-insert", ["5"]) == {"number": 1}
            first = client.run_control("-exec-run")
            assert first["reason"] == "end-stepping-range"
            hit = client.run_control("-exec-continue")
            assert hit["reason"] == "breakpoint-hit"
            while True:
                payload = client.run_control("-exec-continue")
                if payload["reason"] == "exited":
                    break
            assert "done 10" in "".join(client.console)
        finally:
            client.close()

    def test_idless_command_without_session_is_an_error(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                reader, writer = await asyncio.open_connection(host, port)
                greeting = await reader.readline()
                assert b"service" in greeting
                writer.write(b"-exec-run\n")
                await writer.drain()
                reply = await reader.readline()
                assert reply.startswith(b"^error")
                writer.close()
                await writer.wait_closed()
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Crash-only sessions: resurrection, quarantine, degraded mode
# ---------------------------------------------------------------------------


def payload_of(records, kind="done"):
    """The first payload of ``kind`` in a batch of raw record lines."""
    for raw in records:
        record = protocol.parse_record(raw)
        if record.kind == kind:
            return record.payload
    raise AssertionError(f"no {kind!r} record in {records}")


async def drive_stops(tracker):
    """Resume to completion; the (reason, line) tuples of every stop."""
    stops = []
    while tracker.get_exit_code() is None:
        stop = await tracker.resume()
        stops.append((stop.get("reason"), stop.get("line")))
    return stops


class TestResurrection:
    def test_breakpoints_fire_identically_after_child_sigkill(
        self, write_program
    ):
        """The resurrection parity contract: SIGKILL the child mid-run,
        and the remaining stop sequence matches an unharmed session."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(pool_size=2)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    control = await client.open_tracker(path)
                    await control.break_before_line(5)
                    await control.start()
                    expected = await drive_stops(control)
                    await control.close()

                    victim = await client.open_tracker(path)
                    await victim.break_before_line(5)
                    await victim.start()
                    first_pid = victim.pid
                    os.kill(first_pid, signal.SIGKILL)
                    await asyncio.sleep(0.2)
                    observed = await drive_stops(victim)
                    assert observed == expected
                    assert victim.resurrections == 1
                    assert victim.epoch == 2
                    assert victim.degraded is False
                    assert victim.pid != first_pid
                    await victim.close()
                    stats = await client.service_stats()
                    assert stats["resurrected"] == 1
                    assert stats["child_deaths"] == 1
            finally:
                await service.close()

        run(scenario())

    def test_watchpoints_survive_child_sigkill(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(pool_size=2)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    control = await client.open_tracker(path)
                    await control.start()
                    assert await control.watch("total") == 1
                    expected = await drive_stops(control)
                    await control.close()

                    victim = await client.open_tracker(path)
                    await victim.start()
                    assert await victim.watch("total") == 1
                    os.kill(victim.pid, signal.SIGKILL)
                    await asyncio.sleep(0.2)
                    observed = await drive_stops(victim)
                    assert observed == expected
                    assert victim.resurrections == 1
                    await victim.close()
            finally:
                await service.close()

        run(scenario())

    def test_limits_are_reapplied_on_resurrection(self, write_program):
        from repro.subproc.limits import ResourceLimits

        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                session = await manager.open(
                    path, limits=ResourceLimits(file_size=10_000_000_000)
                )
                await session.run_command("-exec-run")
                os.kill(session.child.pid, signal.SIGKILL)
                await session.child.transport._process.wait()
                records = await session.run_command("-exec-step")
                notify = payload_of(records, "notify")
                assert notify["epoch"] == 2
                info = await session.child.request("-server-info")
                assert info["limits_applied"] is True
                assert session.tainted  # still never pool-reusable
                await manager.close_session(session)
            finally:
                await manager.close()

        run(scenario())

    def test_recording_session_resumes_at_same_snapshot_index(
        self, write_program
    ):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                control = await manager.open(path)
                await control.run_command("-timeline-start")
                await control.run_command("-exec-run")
                await control.run_command("-exec-step")
                await control.run_command("-exec-step")
                expected = payload_of(
                    await control.run_command("-timeline-length")
                )
                await manager.close_session(control)

                session = await manager.open(path)
                await session.run_command("-timeline-start")
                await session.run_command("-exec-run")
                await session.run_command("-exec-step")
                before = payload_of(
                    await session.run_command("-timeline-length")
                )
                os.kill(session.child.pid, signal.SIGKILL)
                await session.child.transport._process.wait()
                records = await session.run_command("-exec-step")
                notify = payload_of(records, "notify")
                assert notify["degraded"] is False
                assert notify["pause_index"] == 2  # run + one step
                after = payload_of(
                    await session.run_command("-timeline-length")
                )
                # the replay re-recorded to the same snapshot index: the
                # timeline looks exactly like an uninterrupted recording
                assert after["length"] == before["length"] + 1
                assert after == expected
                await manager.close_session(session)
            finally:
                await manager.close()

        run(scenario())

    def test_interrupted_history_resurrects_degraded(self, write_program):
        """An interrupt stop cannot be replayed: the session comes back
        degraded (position lost) and a fresh -exec-run recovers it."""
        path = write_program("spin.py", SPINNING_PY)

        async def scenario():
            service = await make_service(pool_size=2)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    stop = await tracker.resume(timeout=0.3)
                    assert stop["reason"] == "interrupted"
                    os.kill(tracker.pid, signal.SIGKILL)
                    await asyncio.sleep(0.2)
                    # the in-flight command terminates (here: the fresh
                    # child refuses to continue a never-started inferior)
                    with pytest.raises(TrackerError):
                        await tracker.step()
                    assert tracker.resurrections == 1
                    assert tracker.degraded is True
                    # a fresh run un-degrades the session
                    stop = await tracker.start()
                    assert stop["reason"] == "end-stepping-range"
                    await tracker.close()
                    stats = await client.service_stats()
                    assert stats["degraded"] == 1
            finally:
                await service.close()

        run(scenario())

    def test_poison_pill_program_is_quarantined(self, write_program):
        """A program that kills every child trips the circuit breaker
        instead of draining the pool with endless resurrections."""
        path = write_program("exiting.py", EXITING_PY)

        async def scenario():
            service = await make_service(pool_size=1)
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()  # pauses before the os._exit
                    stop = await tracker.resume()
                    assert stop["reason"] == "exited"
                    assert stop["exitcode"] == 3
                    # two resurrection attempts, then the breaker tripped
                    assert tracker.resurrections == 2
                    with pytest.raises(ProgramQuarantined):
                        await client.open_tracker(path)
                    stats = await client.service_stats()
                    assert stats["quarantined"] == 1
                    assert stats["child_deaths"] == 3
                    assert path in stats["quarantined_programs"]
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Reconnectable sessions: detach, -session-attach, client reconnect
# ---------------------------------------------------------------------------


class TestReconnect:
    def test_client_reconnects_and_reattaches_after_tcp_drop(
        self, write_program
    ):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(detach_grace=10.0)
            proxy = None
            try:
                host, port = service.address
                proxy = ChaosProxy(host, port, ChaosPlan())
                await proxy.start()
                async with await ServiceClient.connect(
                    "127.0.0.1", proxy.port
                ) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.break_before_line(5)
                    await tracker.start()
                    proxy.drop_connections()
                    await asyncio.sleep(0.2)
                    stop = await tracker.resume()
                    assert stop["reason"] == "breakpoint-hit"
                    assert client.connections == 2
                    while tracker.get_exit_code() is None:
                        await tracker.resume()
                    assert "done 10" in tracker.get_output()
                    await tracker.close()
                    stats = await client.service_stats()
                    assert stats["detached"] == 1
                    assert stats["attached"] == 1
            finally:
                if proxy is not None:
                    await proxy.close()
                await service.close()

        run(scenario())

    def test_inflight_command_survives_connection_drop(self, write_program):
        """A command in flight when the TCP connection dies finishes on
        the service and its answer reaches the caller after re-attach."""
        path = write_program("slow.py", SLOW_PY)

        async def scenario():
            service = await make_service(detach_grace=10.0)
            proxy = None
            try:
                host, port = service.address
                proxy = ChaosProxy(host, port, ChaosPlan())
                await proxy.start()
                async with await ServiceClient.connect(
                    "127.0.0.1", proxy.port
                ) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    resume = asyncio.ensure_future(tracker.resume())
                    await asyncio.sleep(0.1)  # the inferior is sleeping
                    proxy.drop_connections()
                    stop = await asyncio.wait_for(resume, 30)
                    assert stop["reason"] == "exited"
                    assert client.connections == 2
                    await tracker.close()
            finally:
                if proxy is not None:
                    await proxy.close()
                await service.close()

        run(scenario())

    def test_detached_session_is_reaped_after_grace(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(detach_grace=0.3)
            try:
                host, port = service.address
                client = await ServiceClient.connect(
                    host, port, reconnect=None
                )
                tracker = await client.open_tracker(path)
                sid = tracker.session_id
                await client.close()  # drop without -session-close
                manager = service.manager
                for _ in range(100):
                    if sid not in manager.sessions:
                        break
                    await asyncio.sleep(0.1)
                assert sid not in manager.sessions
                assert manager.stats.detached == 1
                assert manager.stats.reaped == 1
            finally:
                await service.close()

        run(scenario())

    def test_attach_refuses_a_live_connections_session(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(detach_grace=10.0)
            try:
                host, port = service.address
                owner = await ServiceClient.connect(host, port)
                thief = await ServiceClient.connect(host, port)
                tracker = await owner.open_tracker(path)
                with pytest.raises(TrackerError, match="another connection"):
                    await thief._control_request(
                        f"-session-attach {tracker.session_id}"
                    )
                await tracker.close()
                await owner.close()
                await thief.close()
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Graceful drain and load shedding
# ---------------------------------------------------------------------------


class TestDrain:
    def test_draining_manager_rejects_new_opens_with_retry_after(
        self, write_program
    ):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                await manager.open(path)
                drain = asyncio.ensure_future(manager.drain(deadline=5))
                await asyncio.sleep(0.05)
                with pytest.raises(ServiceDraining) as info:
                    await manager.open(path)
                assert info.value.retry_after == 5.0
                assert "[retry-after=5s]" in str(info.value)
                await drain
                assert not manager.sessions
            finally:
                await manager.close()

        run(scenario())

    def test_drain_finishes_inflight_and_snapshots_recordings(
        self, write_program, tmp_path
    ):
        path = write_program("slow.py", SLOW_PY)
        snapshot_dir = str(tmp_path / "snapshots")

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(pool, max_sessions=4)
            await manager.start()
            try:
                session = await manager.open(path)
                await session.run_command("-timeline-start")
                await session.run_command("-exec-run")
                inflight = asyncio.ensure_future(
                    session.run_command("-exec-continue")
                )
                await asyncio.sleep(0.1)  # mid-sleep inside the inferior
                await manager.drain(deadline=10, snapshot_dir=snapshot_dir)
                records = await inflight
                assert payload_of(records, "stopped")["reason"] == "exited"
                dump_path = os.path.join(
                    snapshot_dir, f"{session.session_id}.timeline.json"
                )
                with open(dump_path) as handle:
                    dump = json.load(handle)
                assert dump["format"] == "repro-timeline"
                assert dump["segments"]
            finally:
                await manager.close()

        run(scenario())

    def test_draining_service_rejects_over_the_wire(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service()
            try:
                host, port = service.address
                async with await ServiceClient.connect(host, port) as client:
                    service.manager.draining = True
                    with pytest.raises(ServiceDraining) as info:
                        await client.open_tracker(path)
                    assert info.value.retry_after == 5.0
                    service.manager.draining = False
            finally:
                await service.close()

        run(scenario())

    def test_sigterm_drains_serve_forever(self, write_program):
        async def scenario():
            service = await make_service()
            serving = asyncio.ensure_future(service.serve_forever())
            await asyncio.sleep(0.1)
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(serving, 15)
            assert service.manager.draining
            await service.close()

        run(scenario())

    def test_overloaded_session_sheds_excess_commands(self, write_program):
        path = write_program("slow.py", SLOW_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(
                pool, max_sessions=4, session_queue_limit=1
            )
            await manager.start()
            try:
                session = await manager.open(path)
                await session.run_command("-exec-run")
                slow = asyncio.ensure_future(
                    session.run_command("-exec-continue")
                )
                await asyncio.sleep(0.1)
                records = await session.run_command("-inferior-position")
                error = payload_of(records, "error")
                assert "overloaded" in error
                assert protocol.parse_retry_after(error) == 0.5
                assert manager.stats.overloaded == 1
                await slow
            finally:
                await manager.close()

        run(scenario())


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------


class TestAuth:
    def test_token_handshake_and_session_use(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(token="sekrit")
            try:
                host, port = service.address
                async with await ServiceClient.connect(
                    host, port, token="sekrit"
                ) as client:
                    tracker = await client.open_tracker(path)
                    await tracker.start()
                    await tracker.close()
            finally:
                await service.close()

        run(scenario())

    def test_wrong_token_is_rejected(self):
        async def scenario():
            service = await make_service(token="sekrit")
            try:
                host, port = service.address
                with pytest.raises(ServiceAuthError):
                    await ServiceClient.connect(host, port, token="wrong")
            finally:
                await service.close()

        run(scenario())

    def test_unauthenticated_commands_are_refused(self, write_program):
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            service = await make_service(token="sekrit")
            try:
                host, port = service.address
                # no token supplied: the connection opens (the greeting
                # advertises auth) but every command is refused
                async with await ServiceClient.connect(host, port) as client:
                    with pytest.raises(ServiceAuthError):
                        await client.open_tracker(path)
                    with pytest.raises(ServiceAuthError):
                        await client.service_stats()
            finally:
                await service.close()

        run(scenario())


# ---------------------------------------------------------------------------
# The idle-reaper race (regression): dispatch counts before the task runs
# ---------------------------------------------------------------------------


class TestReaperRace:
    def test_pending_command_blocks_reaping(self, write_program):
        """A session with a command admitted but not yet executing (the
        dispatch-to-first-await gap) must not be reaped out from under
        it."""
        path = write_program("prog.py", COUNTING_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(
                pool, max_sessions=4, idle_timeout=0.2
            )
            await manager.start()
            try:
                session = await manager.open(path)
                # what the dispatcher does synchronously before spawning
                # the command task
                session.touch()
                session.pending += 1
                await asyncio.sleep(0.8)  # several reaper intervals
                assert not session.closed
                session.pending -= 1  # the command "finished"
                for _ in range(100):
                    if session.closed:
                        break
                    await asyncio.sleep(0.1)
                assert session.closed
                assert manager.stats.reaped == 1
            finally:
                await manager.close()

        run(scenario())

    def test_busy_session_outlives_the_idle_horizon(self, write_program):
        """A command whose dialogue runs longer than idle_timeout must
        complete; only genuinely idle sessions are reaped."""
        path = write_program("slow.py", SLOW_PY)

        async def scenario():
            pool = WarmPool(size=1)
            manager = SessionManager(
                pool, max_sessions=4, idle_timeout=0.2
            )
            await manager.start()
            try:
                session = await manager.open(path)
                await session.run_command("-exec-run")
                # the inferior sleeps ~0.4s: longer than idle_timeout
                records = await session.run_command("-exec-continue")
                assert payload_of(records, "stopped")["reason"] == "exited"
                assert not session.dead
            finally:
                await manager.close()

        run(scenario())
