"""Differential testing: the mini-C interpreter against real gcc.

The mini-C substrate stands in for compiled C, so its observable behaviour
(stdout + exit code) should match what gcc-compiled binaries produce on the
same source. A fixed corpus covers the language surface; a property-based
sweep compares randomly generated integer expressions, with generation
constrained to avoid C undefined behaviour (overflow, bad shifts, division
by zero) so both sides are deterministic.

Skipped automatically when no C toolchain is available.
"""

import shutil
import subprocess
import sys

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.minic.events import OutputEvent
from repro.minic.interpreter import Interpreter
from repro.minic.parser import parse

GCC = shutil.which("gcc") or shutil.which("cc")

pytestmark = pytest.mark.skipif(GCC is None, reason="no C compiler available")


def run_gcc(tmp_path, source):
    c_file = tmp_path / "prog.c"
    c_file.write_text(source, encoding="utf-8")
    binary = tmp_path / "prog"
    compile_result = subprocess.run(
        [GCC, "-O0", "-fwrapv", "-o", str(binary), str(c_file)],
        capture_output=True,
        text=True,
    )
    assert compile_result.returncode == 0, compile_result.stderr
    run_result = subprocess.run(
        [str(binary)], capture_output=True, text=True, timeout=10
    )
    return run_result.returncode, run_result.stdout


def run_minic(source):
    interpreter = Interpreter(parse(source))
    output = []
    for event in interpreter.run():
        if isinstance(event, OutputEvent):
            output.append(event.text)
    return interpreter.exit_code, "".join(output)


def assert_same_behaviour(tmp_path, source):
    gcc_code, gcc_out = run_gcc(tmp_path, source)
    minic_code, minic_out = run_minic(source)
    assert minic_out == gcc_out, f"stdout differs for:\n{source}"
    assert minic_code == gcc_code, f"exit code differs for:\n{source}"


CORPUS = {
    "arith": """\
#include <stdio.h>
int main(void) {
    int a = 17, b = 5;
    printf("%d %d %d %d %d\\n", a + b, a - b, a * b, a / b, a % b);
    printf("%d %d %d\\n", -a / b, -a % b, a / -b);
    printf("%d %d %d %d %d\\n", a & b, a | b, a ^ b, a << 2, a >> 1);
    printf("%d %d %d\\n", a < b, a >= b, a != b);
    return (a + b) % 7;
}
""",
    "loops": """\
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 0; i < 20; i++) {
        if (i % 3 == 0) continue;
        if (i == 17) break;
        total += i;
    }
    int j = 0;
    while (j < 4) { total += j * j; j++; }
    do { total -= 1; } while (total > 100);
    printf("%d\\n", total);
    return 0;
}
""",
    "recursion": """\
#include <stdio.h>
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main(void) {
    printf("%d %d %d\\n", ack(1, 3), ack(2, 3), ack(3, 3));
    return 0;
}
""",
    "pointers": """\
#include <stdio.h>
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main(void) {
    int arr[6] = {9, 4, 7, 1, 8, 2};
    for (int i = 0; i < 6; i++)
        for (int j = 0; j + 1 < 6 - i; j++)
            if (arr[j] > arr[j + 1]) swap(&arr[j], &arr[j + 1]);
    for (int i = 0; i < 6; i++) printf("%d ", arr[i]);
    printf("\\n");
    int *p = arr + 2;
    printf("%d %d %ld\\n", *p, p[2], (long)(&arr[5] - arr));
    return arr[0];
}
""",
    "strings": """\
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[32];
    strcpy(buf, "hello");
    printf("%s %zu %d\\n", buf, strlen(buf), strcmp(buf, "hellp"));
    char *msg = "worlds";
    printf("%c%c %s\\n", msg[0], buf[1], msg);
    return (int)strlen(msg);
}
""",
    "structs": """\
#include <stdio.h>
#include <stdlib.h>
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
int area(struct rect r) { return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y); }
int main(void) {
    struct rect r;
    r.lo.x = 1; r.lo.y = 2; r.hi.x = 7; r.hi.y = 5;
    struct rect copy = r;
    copy.hi.x = 100;
    struct point *corner = &r.hi;
    corner->y += 1;
    printf("%d %d %d\\n", area(r), area(copy), r.hi.y);
    return 0;
}
""",
    "heap": """\
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    int n = 8;
    int *data = malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) data[i] = i * i;
    int *grown = realloc(data, 2 * n * sizeof(int));
    for (int i = n; i < 2 * n; i++) grown[i] = -i;
    long total = 0;
    for (int i = 0; i < 2 * n; i++) total += grown[i];
    free(grown);
    int *zeros = calloc(4, sizeof(int));
    printf("%ld %d\\n", total, zeros[3]);
    free(zeros);
    return 0;
}
""",
    "switch_enum": """\
#include <stdio.h>
typedef enum { RED, GREEN = 5, BLUE } color;
int main(void) {
    int score = 0;
    for (color c = RED; c <= BLUE + 1; c++) {
        switch (c) {
        case RED: score += 1; break;
        case GREEN:
        case BLUE: score += 10; break;
        default: score += 100;
        }
    }
    printf("%d\\n", score);
    return 0;
}
""",
    "chars_casts": """\
#include <stdio.h>
int main(void) {
    char c = 'A';
    for (int i = 0; i < 4; i++) putchar(c + i);
    putchar('\\n');
    double d = 7.75;
    printf("%d %.2f %.1f\\n", (int)d, d * 2, (double)(int)d);
    long big = 1L << 40;
    printf("%ld %d\\n", big, (int)(big + 5));
    return 0;
}
""",
    "globals_and_fnptr": """\
#include <stdio.h>
int counter = 3;
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int main(void) {
    int (*op)(int) = twice;
    int a = op(counter);
    op = thrice;
    int b = op(counter);
    counter = a + b;
    printf("%d\\n", counter);
    return counter % 11;
}
""",
    "unsigned_and_stdlib": """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
int main(void) {
    int negative = -1;
    unsigned int big = 3000000000u;
    printf("%u %u %d\\n", negative, big, (int)(big % 7));
    char buf[64];
    sprintf(buf, "n=%d s=%s", 42, "mid");
    strcat(buf, "|tail");
    printf("%s %d\\n", buf, atoi("  -273degrees"));
    printf("%d %d\\n", strncmp("alpha", "alps", 3), strncmp("alpha", "alps", 4));
    return 0;
}
""",
    "shadow_scopes": """\
#include <stdio.h>
int value = 1;
int bump(int value) { return value + 10; }
int main(void) {
    int out = bump(value) + bump(41);
    printf("%d %d\\n", out, value);
    return 0;
}
""",
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_matches_gcc(name, tmp_path):
    assert_same_behaviour(tmp_path, CORPUS[name])


# The `1L << 40` literal loses its suffix through the unparser (token
# suffixes are discarded at lexing), which would be UB as plain C.
_UNPARSE_SKIP = {"chars_casts"}

_HEADERS = "#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n"


@pytest.mark.parametrize("name", sorted(set(CORPUS) - _UNPARSE_SKIP))
def test_unparsed_source_is_real_c(name, tmp_path):
    """unparse() output compiles under gcc and behaves identically."""
    from repro.minic.parser import parse as parse_c
    from repro.minic.unparse import unparse

    regenerated = _HEADERS + unparse(parse_c(CORPUS[name]))
    gcc_code, gcc_out = run_gcc(tmp_path, regenerated)
    original_code, original_out = run_gcc(tmp_path, CORPUS[name])
    assert (gcc_code, gcc_out) == (original_code, original_out), regenerated


# ---------------------------------------------------------------------------
# Property-based differential testing of integer expressions.
#
# Expressions are generated together with their value (computed with C
# semantics in Python) so generation can *reject* anything that would be
# UB in C: intermediate overflow, division by zero, out-of-range shifts.
# ---------------------------------------------------------------------------

INT_MIN, INT_MAX = -(2**31), 2**31 - 1


def _c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


@st.composite
def int_expressions(draw, depth=0):
    """Return (C source text, value) with no UB on any subexpression."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=-999, max_value=999))
        if value < 0:
            return f"({value})", value
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                               "<<", ">>", "<", ">", "==", "!="]))
    left_text, left = draw(int_expressions(depth=depth + 1))
    right_text, right = draw(int_expressions(depth=depth + 1))
    if op == "+":
        value = left + right
    elif op == "-":
        value = left - right
    elif op == "*":
        value = left * right
    elif op == "/":
        assume(right != 0)
        value = _c_div(left, right)
    elif op == "%":
        assume(right != 0)
        value = left - _c_div(left, right) * right
    elif op == "&":
        assume(left >= 0 and right >= 0)
        value = left & right
    elif op == "|":
        assume(left >= 0 and right >= 0)
        value = left | right
    elif op == "^":
        assume(left >= 0 and right >= 0)
        value = left ^ right
    elif op == "<<":
        assume(left >= 0 and 0 <= right <= 8)
        value = left << right
    elif op == ">>":
        assume(left >= 0 and 0 <= right <= 8)
        value = left >> right
    else:
        value = int(
            {"<": left < right, ">": left > right,
             "==": left == right, "!=": left != right}[op]
        )
    assume(INT_MIN <= value <= INT_MAX)
    return f"({left_text} {op} {right_text})", value


@given(st.lists(int_expressions(), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_expression_differential(tmp_path_factory, expressions):
    tmp_path = tmp_path_factory.mktemp("diff")
    lines = "\n".join(
        f'    printf("%d\\n", {text});' for text, _ in expressions
    )
    source = f'#include <stdio.h>\nint main(void) {{\n{lines}\n    return 0;\n}}\n'
    gcc_code, gcc_out = run_gcc(tmp_path, source)
    minic_code, minic_out = run_minic(source)
    assert minic_out == gcc_out
    assert minic_code == gcc_code == 0
    # And both match the value computed during generation.
    expected = "".join(f"{value}\n" for _, value in expressions)
    assert minic_out == expected
