"""Smoke tests: every bundled example must run to completion.

The examples are the paper's demonstrators (Section III); each writes its
own inferior and drives a full tool scenario, so running them is a broad
integration sweep across trackers, substrates, and renderers.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


def _example_env():
    """The examples import ``repro``: put ``src`` on their ``PYTHONPATH``."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else SRC_DIR + os.pathsep + existing
    )
    return env

EXPECTED_OUTPUT = {
    "quickstart.py": ["factorial returns 120", "exited with code 0"],
    "stack_heap_tool.py": ["demo.py", "demo.c", "stack-and-heap diagrams"],
    "recursion_tree_demo.py": ["merge_sort([6, 2, 9, 4])", "snapshots"],
    "riscv_demo.py": ["pc = ", "ecall"],
    "debug_game_demo.py": ["hints generated", "won: True"],
    "pt_export_demo.py": ["reduction:", "stepped backwards"],
    "multi_inferior.py": ["both inferiors done"],
    "array_invariant_demo.py": ["array snapshots"],
    "equivalence_demo.py": ["equivalent", "divergence"],
}


def example_names():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_every_example_has_expectations():
    assert set(example_names()) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name, tmp_path):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),  # any output dirs land in the temp dir
        env=_example_env(),
    )
    assert completed.returncode == 0, completed.stderr
    for needle in EXPECTED_OUTPUT[name]:
        assert needle in completed.stdout, (
            f"{name}: expected {needle!r} in output:\n{completed.stdout}"
        )
