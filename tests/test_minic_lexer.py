"""Tests for the mini-C lexer."""

import pytest

from repro.minic.lexer import LexError, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]  # drop eof


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int foo _bar x1") == [
            ("keyword", "int"),
            ("id", "foo"),
            ("id", "_bar"),
            ("id", "x1"),
        ]

    def test_all_type_keywords_recognized(self):
        for keyword in ("void", "char", "short", "int", "long", "float",
                        "double", "struct", "unsigned", "signed"):
            assert tokenize(keyword)[0].kind == "keyword"

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestNumbers:
    def test_decimal(self):
        assert kinds("42") == [("int", 42)]

    def test_hex(self):
        assert kinds("0xFF 0x10") == [("int", 255), ("int", 16)]

    def test_octal(self):
        assert kinds("0755") == [("int", 0o755)]

    def test_float_forms(self):
        values = [v for _, v in kinds("1.5 2. 3e2 1.5e-1")]
        assert values == [1.5, 2.0, 300.0, 0.15]

    def test_suffixes_discarded(self):
        assert kinds("10L 10UL 2.5f")[0] == ("int", 10)
        assert kinds("2.5f") == [("float", 2.5)]

    def test_leading_dot_float(self):
        assert kinds(".5") == [("float", 0.5)]


class TestStringsAndChars:
    def test_string_literal(self):
        assert kinds('"hello"') == [("string", "hello")]

    def test_string_escapes(self):
        assert kinds(r'"a\nb\t\"q\\"') == [("string", 'a\nb\t"q\\')]

    def test_char_literal(self):
        assert kinds("'A'") == [("char", 65)]

    def test_char_escape(self):
        assert kinds(r"'\n' '\0'") == [("char", 10), ("char", 0)]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_empty_char_raises(self):
        with pytest.raises(LexError):
            tokenize("''")

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError, match="escape"):
            tokenize(r'"\q"')


class TestOperators:
    def test_longest_match_first(self):
        assert [v for _, v in kinds("a <<= b")] == ["a", "<<=", "b"]
        assert [v for _, v in kinds("x->y")] == ["x", "->", "y"]
        assert [v for _, v in kinds("i++ + ++j")] == ["i", "++", "+", "++", "j"]

    def test_full_operator_set(self):
        source = "+ - * / % == != <= >= && || & | ^ ~ ! ? : << >>"
        assert all(kind == "op" for kind, _ in kinds(source))

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("int @ x")


class TestTrivia:
    def test_line_comments(self):
        assert kinds("a // comment here\nb") == [("id", "a"), ("id", "b")]

    def test_block_comments(self):
        assert kinds("a /* multi\nline */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="comment"):
            tokenize("a /* never closed")

    def test_preprocessor_lines_ignored(self):
        assert kinds("#include <stdio.h>\nint x;") == [
            ("keyword", "int"),
            ("id", "x"),
            ("op", ";"),
        ]

    def test_null_keyword(self):
        assert kinds("NULL")[0] == ("keyword", "NULL")
