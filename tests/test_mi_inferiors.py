"""Tests for the debug-server inferior adapters."""

import pytest

from repro.core.errors import ProgramLoadError
from repro.core.state import AbstractType, Location
from repro.minic.events import ExitEvent, LineEvent
from repro.mi.inferiors import MinicInferior, RiscvInferior, open_inferior

C_SOURCE = """\
int shared = 4;

int triple(int v) {
    return 3 * v;
}

int main(void) {
    int local = triple(shared);
    return local;
}
"""

ASM_SOURCE = """\
    .data
value: .word 11
    .text
main:
    lw a0, value
    call bump
    li a7, 93
    ecall
bump:
    addi a0, a0, 1
    ret
"""


class TestOpenInferior:
    def test_extension_dispatch(self, write_program):
        c_inferior = open_inferior(write_program("p.c", C_SOURCE))
        assert isinstance(c_inferior, MinicInferior)
        asm_inferior = open_inferior(write_program("p.s", ASM_SOURCE))
        assert isinstance(asm_inferior, RiscvInferior)

    def test_unknown_extension_rejected(self, write_program):
        with pytest.raises(ProgramLoadError, match="infer"):
            open_inferior(write_program("p.txt", "hello"))

    def test_parse_error_at_open(self, write_program):
        with pytest.raises(ProgramLoadError):
            open_inferior(write_program("bad.c", "int main( {"))
        with pytest.raises(ProgramLoadError):
            open_inferior(write_program("bad.s", "main:\n  bogus x9\n"))


def run_until(inferior, line):
    events = inferior.events()
    for event in events:
        if isinstance(event, LineEvent) and event.line == line:
            return events
    raise AssertionError(f"line {line} never reached")


class TestMinicAdapter:
    def test_frames_and_globals(self, write_program):
        inferior = MinicInferior(write_program("p.c", C_SOURCE))
        run_until(inferior, 4)
        frame = inferior.frame_chain()
        assert frame.name == "triple"
        assert frame.parent.name == "main"
        assert inferior.globals_map()["shared"].value.content == 4
        assert inferior.registers() is None

    def test_watch_and_functions(self, write_program):
        inferior = MinicInferior(write_program("p.c", C_SOURCE))
        run_until(inferior, 8)
        assert inferior.render_watch(None, "shared") is not None
        assert inferior.render_watch("ghost", "x") is None
        assert inferior.function_names() == ["main", "triple"]

    def test_disassemble_reports_conceptual_return(self, write_program):
        inferior = MinicInferior(write_program("p.c", C_SOURCE))
        listing = inferior.disassemble("triple")
        assert listing[-1]["is_return"]
        with pytest.raises(ProgramLoadError):
            inferior.disassemble("ghost")

    def test_heap_blocks_empty_without_allocations(self, write_program):
        inferior = MinicInferior(write_program("p.c", C_SOURCE))
        run_until(inferior, 8)
        assert inferior.heap_blocks() == {}


class TestRiscvAdapter:
    def test_frames_carry_registers(self, write_program):
        inferior = RiscvInferior(write_program("p.s", ASM_SOURCE))
        run_until(inferior, 10)  # inside bump
        frame = inferior.frame_chain()
        assert frame.name == "bump"
        assert frame.parent.name == "main"
        register = frame.variables["a0"]
        assert register.scope == "register"
        assert register.value.location is Location.REGISTER
        assert register.value.content == 11

    def test_globals_are_data_words(self, write_program):
        inferior = RiscvInferior(write_program("p.s", ASM_SOURCE))
        run_until(inferior, 5)
        globals_map = inferior.globals_map()
        assert globals_map["value"].value.content == 11
        assert "main" not in globals_map  # text labels are not data

    def test_watch_register_and_symbol(self, write_program):
        inferior = RiscvInferior(write_program("p.s", ASM_SOURCE))
        run_until(inferior, 6)
        assert inferior.render_watch(None, "a0") == "11"
        assert inferior.render_watch(None, "value") is not None
        assert inferior.render_watch(None, "ghost") is None

    def test_memory_window_zero_fills_past_segment(self, write_program):
        from repro.riscv.assembler import DATA_BASE

        inferior = RiscvInferior(write_program("p.s", ASM_SOURCE))
        raw = inferior.read_memory(DATA_BASE, 64)
        assert len(raw) == 64
        assert raw[:4] == (11).to_bytes(4, "little")
        assert raw[4:] == bytes(60)

    def test_exit_error_surfaces(self, write_program):
        inferior = RiscvInferior(
            write_program("bad.s", "main:\n  lw t0, 64(x0)\n")
        )
        for event in inferior.events():
            if isinstance(event, ExitEvent):
                break
        assert "invalid read" in inferior.exit_error()
