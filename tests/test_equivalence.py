"""Tests for behavioral-equivalence checking via contextual traces (§V)."""

import pytest

from repro.tools.equivalence import (
    EquivalenceReport,
    behavioral_signature,
    check_equivalence,
)

PY_FACT = """\
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

out = fact(4)
done = 1
"""

PY_FACT_ITERATIVE = """\
def fact(n):
    total = 1
    for k in range(2, n + 1):
        total *= k
    return total

out = fact(4)
done = 1
"""

PY_FACT_WRONG = """\
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 2)   # bug: skips every other factor

out = fact(4)
done = 1
"""

C_FACT = """\
int fact(int n) {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}

int main(void) {
    int out = fact(4);
    return 0;
}
"""


class TestSignatures:
    def test_signature_records_calls_and_returns(self, write_program):
        events = behavioral_signature(
            write_program("f.py", PY_FACT), "fact", ["n"]
        )
        kinds = [event.kind for event in events]
        assert kinds.count("call") == 4
        assert kinds.count("return") == 4
        first = events[0]
        assert first.arguments == {"n": 4}
        assert first.depth == 0

    def test_return_values_recorded(self, write_program):
        events = behavioral_signature(
            write_program("f.py", PY_FACT), "fact", ["n"]
        )
        returns = [event.value for event in events if event.kind == "return"]
        assert returns == [1, 2, 6, 24]

    def test_depths_relative_to_first_call(self, write_program):
        events = behavioral_signature(
            write_program("f.py", PY_FACT), "fact", ["n"]
        )
        call_depths = [e.depth for e in events if e.kind == "call"]
        assert call_depths == [0, 1, 2, 3]


class TestEquivalence:
    def test_same_program_is_equivalent_to_itself(self, write_program):
        path = write_program("f.py", PY_FACT)
        report = check_equivalence(path, path, "fact")
        assert report.equivalent
        assert "match exactly" in report.explain()

    def test_recursive_python_equals_recursive_c(self, write_program):
        report = check_equivalence(
            write_program("f.py", PY_FACT),
            write_program("f.c", C_FACT),
            "fact",
            argument_names=["n"],
        )
        assert report.equivalent, report.explain()

    def test_subproc_backend_records_the_same_signature(self, write_program):
        """The isolated backend is a drop-in recorder: same program, same
        signature, whether tracked in-process or in a sandboxed child."""
        path = write_program("f.py", PY_FACT)
        report = check_equivalence(
            path, path, "fact", backend_b="python-subproc"
        )
        assert report.equivalent, report.explain()

    def test_subproc_backend_against_c(self, write_program):
        report = check_equivalence(
            write_program("f.py", PY_FACT),
            write_program("f.c", C_FACT),
            "fact",
            argument_names=["n"],
            backend_a="python-subproc",
        )
        assert report.equivalent, report.explain()

    def test_monitoring_backend_records_the_same_signature(
        self, write_program
    ):
        """The sys.monitoring backend is a drop-in recorder for the
        settrace one: same program, same behavioral signature."""
        from repro.pytracker.monitoring import HAVE_MONITORING, SKIP_REASON

        if not HAVE_MONITORING:
            pytest.skip(SKIP_REASON)
        path = write_program("f.py", PY_FACT)
        report = check_equivalence(path, path, "fact", backend_b="python-mon")
        assert report.equivalent, report.explain()

    def test_monitoring_backend_against_c(self, write_program):
        from repro.pytracker.monitoring import HAVE_MONITORING, SKIP_REASON

        if not HAVE_MONITORING:
            pytest.skip(SKIP_REASON)
        report = check_equivalence(
            write_program("f.py", PY_FACT),
            write_program("f.c", C_FACT),
            "fact",
            argument_names=["n"],
            backend_a="python-mon",
        )
        assert report.equivalent, report.explain()

    def test_different_algorithm_diverges_internally(self, write_program):
        # Iterative fact computes the same answer but with a different
        # call structure: not equivalent at recursion granularity.
        report = check_equivalence(
            write_program("a.py", PY_FACT),
            write_program("b.py", PY_FACT_ITERATIVE),
            "fact",
        )
        assert not report.equivalent
        assert report.divergence_index is not None
        assert "divergence" in report.explain()

    def test_buggy_variant_detected(self, write_program):
        report = check_equivalence(
            write_program("a.py", PY_FACT),
            write_program("b.py", PY_FACT_WRONG),
            "fact",
            argument_names=["n"],
        )
        assert not report.equivalent

    def test_boundary_equivalence_ignores_hidden_locals(self, write_program):
        # Same recursion, different internal variable names: equivalent.
        renamed = PY_FACT.replace("fact(n)", "fact(n)").replace(
            "return n * fact(n - 1)", "m = fact(n - 1)\n    return n * m"
        )
        report = check_equivalence(
            write_program("a.py", PY_FACT),
            write_program("b.py", renamed),
            "fact",
            argument_names=["n"],
        )
        assert report.equivalent, report.explain()

    def test_different_function_names(self, write_program):
        other = PY_FACT.replace("fact", "factorial")
        report = check_equivalence(
            write_program("a.py", PY_FACT),
            write_program("b.py", other),
            "fact",
            function_b="factorial",
            argument_names=["n"],
        )
        assert report.equivalent
