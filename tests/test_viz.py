"""Tests for the visualization substrate: SVG writer, layout, source view."""

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings, strategies as st

from repro.viz.layout import TreeNode, layout_tree
from repro.viz.source import render_source, render_source_text
from repro.viz.svg import SVGCanvas, text_width


def parse_svg(canvas):
    return ET.fromstring(canvas.render())


SVG_NS = "{http://www.w3.org/2000/svg}"


class TestSVGCanvas:
    def test_document_is_well_formed_xml(self):
        canvas = SVGCanvas()
        canvas.rect(0, 0, 10, 10)
        canvas.text(5, 5, "hi")
        canvas.line(0, 0, 10, 10)
        canvas.arrow(0, 0, 10, 10)
        canvas.cross(5, 5)
        canvas.curve(0, 0, 20, 20)
        root = parse_svg(canvas)
        assert root.tag == f"{SVG_NS}svg"

    def test_canvas_grows_to_fit(self):
        canvas = SVGCanvas(margin=10)
        canvas.rect(0, 0, 100, 50)
        assert canvas.width == 110
        assert canvas.height == 60

    def test_text_is_escaped(self):
        canvas = SVGCanvas()
        canvas.text(0, 10, "<b> & 'q'")
        rendered = canvas.render()
        assert "<b>" not in rendered.replace("<b></b>", "")
        assert "&amp;" in rendered

    def test_background_rect_present(self):
        canvas = SVGCanvas(background="#123456")
        canvas.rect(0, 0, 5, 5)
        first_rect = parse_svg(canvas).find(f"{SVG_NS}rect")
        assert first_rect.get("fill") == "#123456"

    def test_save(self, tmp_path):
        canvas = SVGCanvas()
        canvas.text(0, 12, "saved")
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<?xml")

    def test_dashed_line(self):
        canvas = SVGCanvas()
        canvas.line(0, 0, 5, 5, dashed=True)
        line = parse_svg(canvas).find(f"{SVG_NS}line")
        assert line.get("stroke-dasharray") == "5,3"

    def test_text_width_scales_with_size(self):
        assert text_width("abcd", 28) == pytest.approx(2 * text_width("abcd", 14))


class TestTreeLayout:
    def build(self, shape):
        """shape: nested tuples (label, [children])."""
        label, children = shape
        node = TreeNode(label=label)
        for child in children:
            node.children.append(self.build(child))
        return node

    def test_single_node(self):
        root = self.build(("r", []))
        width, height = layout_tree(root)
        assert root.x >= 0
        assert root.y == 0
        assert width >= root.width

    def test_children_below_parent(self):
        root = self.build(("r", [("a", []), ("b", [])]))
        layout_tree(root)
        for child in root.children:
            assert child.y > root.y

    def test_parent_centered_over_children(self):
        root = self.build(("r", [("a", []), ("b", [])]))
        layout_tree(root)
        left, right = root.children
        children_center = (
            left.x + left.width / 2 + right.x + right.width / 2
        ) / 2
        assert root.x + root.width / 2 == pytest.approx(children_center)

    def test_siblings_do_not_overlap(self):
        root = self.build(
            ("r", [("a", [("c", []), ("d", [])]), ("b", [("e", [])])])
        )
        layout_tree(root)
        nodes = root.walk()
        by_level = {}
        for node in nodes:
            by_level.setdefault(node.y, []).append(node)
        for level in by_level.values():
            level.sort(key=lambda n: n.x)
            for first, second in zip(level, level[1:]):
                assert first.x + first.width <= second.x

    def test_walk_order(self):
        root = self.build(("r", [("a", []), ("b", [])]))
        assert [n.label for n in root.walk()] == ["r", "a", "b"]

    def test_measure_callback(self):
        root = self.build(("wide-label", []))
        layout_tree(root, measure=lambda n: len(n.label) * 10)
        assert root.width == 100


@st.composite
def random_trees(draw, depth=0):
    label = draw(st.text(alphabet="ab", min_size=1, max_size=3))
    node = TreeNode(label=label)
    if depth < 3:
        count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(count):
            node.children.append(draw(random_trees(depth=depth + 1)))
    return node


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_layout_no_overlap_property(root):
    layout_tree(root)
    nodes = root.walk()
    by_level = {}
    for node in nodes:
        assert node.x >= -1e-9
        by_level.setdefault(node.y, []).append(node)
    for level in by_level.values():
        level.sort(key=lambda n: n.x)
        for first, second in zip(level, level[1:]):
            assert first.x + first.width <= second.x + 1e-9


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_layout_children_strictly_below(root):
    layout_tree(root)

    def check(node):
        for child in node.children:
            assert child.y > node.y
            check(child)

    check(root)


class TestSourceRendering:
    LINES = ["def f():", "    return 1", "f()"]

    def test_svg_contains_all_lines(self):
        canvas = render_source(self.LINES, current_line=2)
        rendered = canvas.render()
        for line in self.LINES:
            assert line.split()[0] in rendered

    def test_current_line_highlight_and_arrow(self):
        canvas = render_source(self.LINES, current_line=2, last_line=1)
        rendered = canvas.render()
        assert "#fff3b0" in rendered  # highlight fill
        assert "-&gt;" in rendered or "->" in rendered

    def test_title(self):
        canvas = render_source(self.LINES, title="prog.py")
        assert "prog.py" in canvas.render()

    def test_text_marker(self):
        text = render_source_text(self.LINES, current_line=3)
        lines = text.splitlines()
        assert lines[2].startswith("=>")
        assert lines[0].startswith("  ")

    def test_text_context_window(self):
        many = [f"line {i}" for i in range(1, 101)]
        text = render_source_text(many, current_line=50, context=2)
        assert len(text.splitlines()) == 5
        assert "line 50" in text

    def test_empty_source(self):
        canvas = render_source([], current_line=None)
        assert "<svg" in canvas.render()
