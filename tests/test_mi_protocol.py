"""Tests for the MI wire protocol: format/parse round trips."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ProtocolError
from repro.mi import protocol


class TestCommands:
    def test_simple_command(self):
        command = protocol.parse_command("-exec-run")
        assert command.name == "-exec-run"
        assert command.args == []
        assert command.options == {}

    def test_args_and_options(self):
        command = protocol.parse_command("-break-insert main --maxdepth 3")
        assert command.args == ["main"]
        assert command.options == {"maxdepth": "3"}
        assert command.option_int("maxdepth") == 3
        assert command.option_int("missing") is None

    def test_quoted_argument(self):
        command = protocol.parse_command('-file-exec-and-symbols "my prog.c"')
        assert command.args == ["my prog.c"]

    def test_malformed_command_raises(self):
        with pytest.raises(ProtocolError):
            protocol.parse_command("exec-run")
        with pytest.raises(ProtocolError):
            protocol.parse_command("")

    def test_option_without_value_raises(self):
        with pytest.raises(ProtocolError):
            protocol.parse_command("-break-insert main --maxdepth")

    def test_format_parse_round_trip(self):
        line = protocol.format_command(
            "-break-insert", ["file with space:3"], {"maxdepth": 2}
        )
        command = protocol.parse_command(line)
        assert command.args == ["file with space:3"]
        assert command.options == {"maxdepth": "2"}


class TestRecords:
    def test_done_without_payload(self):
        record = protocol.parse_record(protocol.format_done())
        assert record.kind == "done"
        assert record.payload is None

    def test_done_with_payload(self):
        record = protocol.parse_record(protocol.format_done({"n": 1}))
        assert record.payload == {"n": 1}

    def test_error_record(self):
        record = protocol.parse_record(protocol.format_error('bad "thing"'))
        assert record.kind == "error"
        assert record.payload == 'bad "thing"'

    def test_running_and_stopped(self):
        assert protocol.parse_record(protocol.format_running()).kind == "running"
        record = protocol.parse_record(
            protocol.format_stopped({"reason": "exited", "exitcode": 0})
        )
        assert record.kind == "stopped"
        assert record.payload["reason"] == "exited"

    def test_stream_record_preserves_newlines(self):
        record = protocol.parse_record(protocol.format_stream("a\nb\n"))
        assert record.kind == "stream"
        assert record.payload == "a\nb\n"

    def test_notify_record(self):
        record = protocol.parse_record(
            protocol.format_notify("alloc", {"size": 8})
        )
        assert record.kind == "notify"
        assert record.notify_name == "alloc"
        assert record.payload == {"size": 8}

    def test_records_are_single_lines(self):
        for line in (
            protocol.format_done({"a": "x\ny"}),
            protocol.format_stream("line1\nline2"),
            protocol.format_stopped({"reason": "end-stepping-range"}),
        ):
            assert "\n" not in line

    def test_unparsable_record_raises(self):
        with pytest.raises(ProtocolError):
            protocol.parse_record("hello world")


# ---------------------------------------------------------------------------
# Property-based round trips
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


@given(json_values)
@settings(max_examples=100, deadline=None)
def test_done_payload_round_trip(payload):
    record = protocol.parse_record(protocol.format_done(payload))
    if payload is None:
        assert record.payload is None
    else:
        assert record.payload == payload


@given(st.text(max_size=100))
@settings(max_examples=100, deadline=None)
def test_stream_text_round_trip(text):
    record = protocol.parse_record(protocol.format_stream(text))
    assert record.payload == text


@given(st.text(max_size=50))
@settings(max_examples=100, deadline=None)
def test_error_message_round_trip(message):
    record = protocol.parse_record(protocol.format_error(message))
    assert record.payload == message


@given(
    st.lists(
        st.text(
            alphabet=st.characters(
                blacklist_categories=("Cc", "Cs"), blacklist_characters="\x7f"
            ),
            min_size=1,
            max_size=12,
        ),
        max_size=3,
    ),
    st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        st.integers(min_value=0, max_value=99),
        max_size=3,
    ),
)
@settings(max_examples=100, deadline=None)
def test_command_round_trip(args, options):
    line = protocol.format_command("-test-cmd", args, options)
    command = protocol.parse_command(line)
    assert command.name == "-test-cmd"
    assert command.args == [a for a in args]
    assert command.options == {k: str(v) for k, v in options.items()}
