"""Tests for the Python tracker's control interface (Section II-C2)."""

import pytest

from repro.core.errors import ProgramLoadError
from repro.core.pause import PauseReasonType
from repro.pytracker.tracker import PythonTracker

COUNT = """\
a = 1
b = 2
c = a + b
"""

CALLS = """\
def inner(k):
    return k * 2

def outer(n):
    partial = inner(n)
    return partial + 1

result = outer(10)
"""

RECURSIVE = """\
def down(n):
    if n == 0:
        return 0
    return down(n - 1)

down(4)
"""

LOOP_MUTATION = """\
def work():
    data = [0, 0]
    for i in range(2):
        data[i] = i + 1
    return data

out = work()
"""


def run_to_end(tracker, limit=500):
    reasons = []
    while tracker.get_exit_code() is None and len(reasons) < limit:
        tracker.resume()
        if tracker.pause_reason is not None:
            reasons.append(tracker.pause_reason)
    return reasons


@pytest.fixture
def tracker():
    instance = PythonTracker()
    yield instance
    instance.terminate()


class TestLifecycle:
    def test_missing_program_raises(self, tracker):
        with pytest.raises(ProgramLoadError):
            tracker.load_program("/nonexistent/prog.py")

    def test_syntax_error_raises_at_load(self, tracker, write_program):
        path = write_program("bad.py", "def broken(:\n")
        with pytest.raises(ProgramLoadError, match="syntax error"):
            tracker.load_program(path)

    def test_start_pauses_before_first_line(self, tracker, write_program):
        tracker.load_program(write_program("p.py", COUNT))
        tracker.start()
        assert tracker.get_exit_code() is None
        assert tracker.pause_reason.type is PauseReasonType.STEP
        assert tracker.next_lineno == 1

    def test_exit_code_zero_on_normal_end(self, tracker, write_program):
        tracker.load_program(write_program("p.py", COUNT))
        tracker.start()
        tracker.resume()
        assert tracker.get_exit_code() == 0
        assert tracker.pause_reason.type is PauseReasonType.EXIT

    def test_sys_exit_code_is_reported(self, tracker, write_program):
        tracker.load_program(write_program("p.py", "import sys\nsys.exit(3)\n"))
        tracker.start()
        tracker.resume()
        assert tracker.get_exit_code() == 3

    def test_inferior_exception_sets_exit_code_one(self, tracker, write_program):
        tracker.load_program(write_program("p.py", "x = 1\nraise ValueError('boom')\n"))
        tracker.start()
        tracker.resume()
        assert tracker.get_exit_code() == 1
        assert isinstance(tracker.get_inferior_exception(), ValueError)

    def test_raise_if_crashed(self, tracker, write_program):
        from repro.core.errors import InferiorCrashError

        tracker.load_program(write_program("p.py", "raise KeyError('k')\n"))
        tracker.start()
        tracker.resume()
        with pytest.raises(InferiorCrashError):
            tracker.raise_if_crashed()

    def test_terminate_kills_paused_inferior(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", "while True:\n    pass\n"))
        tracker.start()
        tracker.step()
        tracker.terminate()
        assert not tracker._thread.is_alive()

    def test_argv_passed_to_inferior(self, tracker, write_program):
        source = "import sys\nargs = sys.argv[1:]\nassert args == ['alpha', 'beta']\n"
        tracker.load_program(write_program("p.py", source), args=["alpha", "beta"])
        tracker.start()
        tracker.resume()
        assert tracker.get_exit_code() == 0  # the assert inside passed


class TestStepping:
    def test_step_visits_every_line(self, tracker, write_program):
        tracker.load_program(write_program("p.py", COUNT))
        tracker.start()
        lines = [tracker.next_lineno]
        while tracker.get_exit_code() is None:
            tracker.step()
            if tracker.get_exit_code() is None:
                lines.append(tracker.next_lineno)
        assert lines == [1, 2, 3]

    def test_step_enters_calls(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.start()
        visited = set()
        while tracker.get_exit_code() is None:
            visited.add(tracker.next_lineno)
            tracker.step()
        assert 2 in visited  # the body of inner()

    def test_next_steps_over_calls(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.start()
        visited = []
        while tracker.get_exit_code() is None:
            visited.append(tracker.next_lineno)
            tracker.next()
        # Lines 1 and 4 are `def` statements (module level); function bodies
        # (2, 5, 6) must never appear.
        assert set(visited) == {1, 4, 8}

    def test_finish_runs_to_caller(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.start()
        tracker.break_before_func("inner")
        tracker.resume()  # paused entering inner (depth 2)
        assert tracker.get_current_frame().name == "inner"
        tracker.finish()
        assert tracker.get_current_frame().name == "outer"


class TestBreakpoints:
    def test_line_breakpoint(self, tracker, write_program):
        tracker.load_program(write_program("p.py", COUNT))
        tracker.break_before_line(3)
        tracker.start()
        tracker.resume()
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.BREAKPOINT
        assert reason.line == 3
        # c is not yet assigned: break happens *before* the line runs.
        assert tracker.get_variable("c") is None

    def test_function_breakpoint_sees_arguments(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.break_before_func("inner")
        tracker.start()
        tracker.resume()
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.BREAKPOINT
        assert reason.function == "inner"
        frame = tracker.get_current_frame()
        assert frame.variables["k"].value.content.content == 10

    def test_breakpoint_maxdepth_filters_deep_frames(self, tracker, write_program):
        tracker.load_program(write_program("p.py", RECURSIVE))
        tracker.break_before_func("down", maxdepth=2)
        tracker.start()
        hits = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.BREAKPOINT:
                hits.append(tracker.get_current_frame().depth)
        assert hits == [1, 2]  # depths 3, 4, 5 filtered out

    def test_line_breakpoint_maxdepth(self, tracker, write_program):
        tracker.load_program(write_program("p.py", RECURSIVE))
        tracker.break_before_line(2, maxdepth=1)
        tracker.start()
        hits = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.BREAKPOINT:
                hits += 1
        assert hits == 1  # only the outermost call


class TestTrackFunction:
    def test_entry_and_exit_events(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.track_function("inner")
        tracker.start()
        events = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            reason = tracker.pause_reason
            if reason.type in (PauseReasonType.CALL, PauseReasonType.RETURN):
                events.append(reason.type)
        assert events == [PauseReasonType.CALL, PauseReasonType.RETURN]

    def test_return_value_in_pause_reason(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.track_function("inner")
        tracker.start()
        tracker.resume()  # CALL
        tracker.resume()  # RETURN
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.RETURN
        assert reason.return_value.content == 20

    def test_recursive_tracking_sees_all_levels(self, tracker, write_program):
        tracker.load_program(write_program("p.py", RECURSIVE))
        tracker.track_function("down")
        tracker.start()
        calls = returns = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.CALL:
                calls += 1
            elif tracker.pause_reason.type is PauseReasonType.RETURN:
                returns += 1
        assert calls == 5
        assert returns == 5

    def test_track_maxdepth(self, tracker, write_program):
        tracker.load_program(write_program("p.py", RECURSIVE))
        tracker.track_function("down", maxdepth=1)
        tracker.start()
        events = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type in (
                PauseReasonType.CALL,
                PauseReasonType.RETURN,
            ):
                events += 1
        assert events == 2  # one call + one return at depth 1


class TestWatchpoints:
    def test_watch_global_fires_per_assignment(self, tracker, write_program):
        tracker.load_program(write_program("p.py", COUNT))
        tracker.watch("a")
        tracker.start()
        tracker.resume()
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.WATCH
        assert reason.variable == "a"
        assert reason.new_value == "1"

    def test_watch_function_scoped(self, tracker, write_program):
        tracker.load_program(write_program("p.py", CALLS))
        tracker.watch("outer:partial")
        tracker.start()
        hits = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                hits.append(tracker.pause_reason.new_value)
        assert hits == ["20"]

    def test_watch_detects_list_mutation(self, tracker, write_program):
        tracker.load_program(write_program("p.py", LOOP_MUTATION))
        tracker.watch("work:data")
        tracker.start()
        changes = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                changes.append(tracker.pause_reason.new_value)
        # initial binding, then each element write
        assert changes == ["[0, 0]", "[1, 0]", "[1, 2]"]

    def test_watch_reports_old_value(self, tracker, write_program):
        # Watches are checked *before each line*, so a trailing line is
        # needed for the second assignment to be observed (paper §II-C2).
        tracker.load_program(write_program("p.py", "x = 1\nx = 2\ny = x\n"))
        tracker.watch("x")
        tracker.start()
        tracker.resume()
        assert tracker.pause_reason.old_value is None
        tracker.resume()
        assert tracker.pause_reason.old_value == "1"
        assert tracker.pause_reason.new_value == "2"


class TestWatchPaths:
    """Watch identifiers can address inside objects: attrs and elements."""

    OBJECT_PROGRAM = """\
class Box:
    def __init__(self):
        self.level = 0

box = Box()
box.level = 1
unrelated = 5
box.level = 2
tail = 1
"""

    def test_watch_attribute_path(self, tracker, write_program):
        tracker.load_program(write_program("p.py", self.OBJECT_PROGRAM))
        tracker.watch("box.level")
        tracker.start()
        values = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                values.append(tracker.pause_reason.new_value)
        assert values == ["0", "1", "2"]

    def test_watch_element_path(self, tracker, write_program):
        source = (
            "data = [0, 0, 0]\n"
            "data[1] = 7\n"
            "data[0] = 9\n"
            "data[1] = 8\n"
            "tail = 1\n"
        )
        tracker.load_program(write_program("p.py", source))
        tracker.watch("data[1]")
        tracker.start()
        values = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                values.append(tracker.pause_reason.new_value)
        # data[0] writes do not trigger the element watch.
        assert values == ["0", "7", "8"]

    def test_watch_dict_key_path(self, tracker, write_program):
        source = (
            "table = {'k': 1}\n"
            "table['k'] = 2\n"
            "table['other'] = 99\n"
            "tail = 1\n"
        )
        tracker.load_program(write_program("p.py", source))
        tracker.watch("table['k']")
        tracker.start()
        hits = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                hits += 1
        assert hits == 2  # initial binding + the k update; 'other' ignored

    def test_invalid_path_never_fires(self, tracker, write_program):
        tracker.load_program(write_program("p.py", "x = 1\ny = 2\n"))
        tracker.watch("x.missing.attr")
        tracker.start()
        tracker.resume()
        assert tracker.get_exit_code() == 0  # ran to completion, no pause


class TestOutputCapture:
    def test_captured_output_available(self, write_program):
        tracker = PythonTracker(capture_output=True)
        tracker.load_program(write_program("p.py", "print('hello inferior')\n"))
        tracker.start()
        tracker.resume()
        assert tracker.get_output() == "hello inferior\n"
        tracker.terminate()

    def test_output_not_captured_by_default(self, write_program, capfd):
        tracker = PythonTracker()
        tracker.load_program(write_program("p.py", "print('direct')\n"))
        tracker.start()
        tracker.resume()
        tracker.terminate()
        assert tracker.get_output() == ""
