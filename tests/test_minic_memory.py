"""Tests for the mini-C memory: segments, allocator, fault detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic.ctypes import INT, LONG
from repro.minic.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    Memory,
    MemoryFault,
    NULL,
    STACK_TOP,
)


@pytest.fixture
def memory():
    return Memory()


class TestSegments:
    def test_segment_of(self, memory):
        assert memory.segment_of(GLOBAL_BASE) == "global"
        assert memory.segment_of(HEAP_BASE) == "heap"
        assert memory.segment_of(STACK_TOP - 8) == "stack"
        assert memory.segment_of(0x42) is None

    def test_unmapped_read_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(0x10, 4)

    def test_cross_segment_read_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(memory.globals.end - 2, 8)

    def test_read_write_round_trip(self, memory):
        memory.write(GLOBAL_BASE + 16, b"\x01\x02\x03")
        assert memory.read(GLOBAL_BASE + 16, 3) == b"\x01\x02\x03"

    def test_typed_scalar_access(self, memory):
        memory.write_scalar(GLOBAL_BASE, LONG, -99)
        assert memory.read_scalar(GLOBAL_BASE, LONG) == -99

    def test_cstring_round_trip(self, memory):
        memory.write_cstring(GLOBAL_BASE + 100, "bonjour")
        assert memory.read_cstring(GLOBAL_BASE + 100) == "bonjour"

    def test_cstring_stops_at_segment_end(self, memory):
        # Fill the tail of globals without a terminator.
        tail = memory.globals.end - 4
        memory.write(tail, b"abcd")
        assert memory.read_cstring(tail) == "abcd"


class TestStack:
    def test_push_grows_down(self, memory):
        first = memory.push_stack(16)
        second = memory.push_stack(16)
        assert second < first

    def test_alignment(self, memory):
        address = memory.push_stack(3, align=8)
        assert address % 8 == 0

    def test_pop_restores(self, memory):
        saved = memory.stack_pointer
        memory.push_stack(64)
        memory.pop_stack_to(saved)
        assert memory.stack_pointer == saved

    def test_overflow_faults(self, memory):
        with pytest.raises(MemoryFault, match="overflow"):
            memory.push_stack(1 << 30)


class TestAllocator:
    def test_malloc_returns_heap_address(self, memory):
        address = memory.malloc(10)
        assert memory.segment_of(address) == "heap"
        assert memory.live_blocks() == {address: 10}

    def test_malloc_zero_returns_null(self, memory):
        assert memory.malloc(0) == NULL

    def test_blocks_do_not_overlap(self, memory):
        a = memory.malloc(10)
        b = memory.malloc(10)
        assert b >= a + 10

    def test_free_removes_from_live_blocks(self, memory):
        address = memory.malloc(8)
        memory.free(address)
        assert memory.live_blocks() == {}

    def test_free_null_is_noop(self, memory):
        memory.free(NULL)

    def test_double_free_faults(self, memory):
        address = memory.malloc(8)
        memory.free(address)
        with pytest.raises(MemoryFault, match="double free"):
            memory.free(address)

    def test_free_of_garbage_faults(self, memory):
        with pytest.raises(MemoryFault, match="non-allocated"):
            memory.free(HEAP_BASE + 12345)

    def test_freed_memory_is_invalid(self, memory):
        address = memory.malloc(8)
        assert memory.is_valid(address, 8)
        memory.free(address)
        assert not memory.is_valid(address, 8)

    def test_calloc_zero_fills(self, memory):
        address = memory.calloc(4, 4)
        assert memory.read(address, 16) == bytes(16)
        assert memory.live_blocks()[address] == 16

    def test_malloc_poisons(self, memory):
        address = memory.malloc(4)
        assert memory.read(address, 4) == b"\xaa\xaa\xaa\xaa"

    def test_realloc_preserves_content(self, memory):
        address = memory.malloc(4)
        memory.write(address, b"abcd")
        bigger = memory.realloc(address, 16)
        assert memory.read(bigger, 4) == b"abcd"
        assert not memory.is_valid(address, 4)  # old block freed
        assert memory.live_blocks() == {bigger: 16}

    def test_realloc_null_acts_as_malloc(self, memory):
        address = memory.realloc(NULL, 8)
        assert memory.live_blocks() == {address: 8}

    def test_realloc_freed_faults(self, memory):
        address = memory.malloc(8)
        memory.free(address)
        with pytest.raises(MemoryFault):
            memory.realloc(address, 16)

    def test_free_list_reuse(self, memory):
        first = memory.malloc(16)
        memory.free(first)
        second = memory.malloc(16)
        assert second == first  # first-fit reuses the freed block

    def test_exhaustion_returns_null(self):
        small = Memory(heap_size=64)
        assert small.malloc(32) != NULL
        assert small.malloc(1024) == NULL

    def test_block_containing(self, memory):
        address = memory.malloc(32)
        block = memory.block_containing(address + 5)
        assert block.address == address
        assert memory.block_containing(HEAP_BASE + 999999) is None

    def test_heap_validity_respects_block_bounds(self, memory):
        address = memory.malloc(8)
        assert memory.is_valid(address, 8)
        assert not memory.is_valid(address, 9)  # past the block

    def test_global_allocation(self, memory):
        a = memory.allocate_global(10)
        b = memory.allocate_global(10)
        assert b >= a + 10
        assert memory.segment_of(a) == "global"


# ---------------------------------------------------------------------------
# Property-based: arbitrary malloc/free interleavings keep the allocator
# consistent — live blocks never overlap, and contents survive other
# operations.
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=256)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_allocator_never_overlaps(operations):
    memory = Memory()
    live = []
    for operation, argument in operations:
        if operation == "malloc":
            address = memory.malloc(argument)
            if address != NULL:
                live.append((address, argument))
        elif live:
            index = argument % len(live)
            address, _ = live.pop(index)
            memory.free(address)
    intervals = sorted(memory.live_blocks().items())
    assert [a for a, _ in intervals] == sorted(a for a, _ in live)
    for (a1, s1), (a2, _s2) in zip(intervals, intervals[1:]):
        assert a1 + s1 <= a2  # no overlap


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_heap_contents_survive_round_trip(payload):
    memory = Memory()
    address = memory.malloc(len(payload))
    memory.write(address, payload)
    other = memory.malloc(32)
    memory.write(other, b"\xff" * 32)
    assert memory.read(address, len(payload)) == payload
