"""Seeded thread-interleaving stress: paused or terminated, never hung.

The multithread all-stop machinery has the classic lost-wakeup /
unbalanced-handshake failure modes, and they are interleaving-dependent.
This suite drives randomized control schedules (random control points,
random motions, random timeouts) against generated multithread inferiors
and asserts the crash-only contract after every single control call: the
tracker is *paused* or *terminated* — a wedged control call fails the
per-test timeout first, with the seed in the captured output.

The run is exactly reproducible from its seed: set ``CONCURRENCY_SEED``
to replay a failure (the seed is printed at the start of every run; CI
greps it out of failing logs and uploads it as an artifact).
"""

import os
import random

import pytest

from repro.core.errors import ControlTimeout, TrackerError
from repro.core.pause import PauseReasonType
from repro.pytracker.monitoring import (
    HAVE_MONITORING,
    SKIP_REASON,
    MonitoringTracker,
)
from repro.pytracker.tracker import PythonTracker

EPISODES = 3
OPS_PER_EPISODE = 25

PROGRAM_TEMPLATE = """\
import threading

counter = 0
lock = threading.Lock()

def bump(step):
    global counter
    with lock:
        counter += step
    return counter

def worker(loops):
    for i in range(loops):
        bump(1)

threads = [
    threading.Thread(name="st%d" % n, target=worker, args=({loops},))
    for n in range({workers})
]
for t in threads:
    t.start()
for t in threads:
    t.join()
print("counter", counter)
"""


def _seed() -> int:
    env = os.environ.get("CONCURRENCY_SEED")
    if env:
        return int(env)
    return random.SystemRandom().randrange(1, 2**31)


def make_tracker(backend):
    if backend == "python-mon":
        return MonitoringTracker()
    return PythonTracker()


BACKENDS = [
    "python",
    pytest.param(
        "python-mon",
        marks=pytest.mark.skipif(not HAVE_MONITORING, reason=SKIP_REASON),
    ),
]


def run_episode(rng, backend, write_program, episode):
    workers = rng.randint(2, 4)
    loops = rng.randint(2, 6)
    source = PROGRAM_TEMPLATE.format(workers=workers, loops=loops)
    tracker = make_tracker(backend)
    tracker.load_program(
        write_program("stress_%d.py" % episode, source)
    )
    # Random control-point mix, installed before start.
    if rng.random() < 0.7:
        thread = rng.choice([None, 1, 2])
        tracker.break_before_func("worker", thread=thread)
    if rng.random() < 0.5:
        tracker.break_before_func("bump", thread=rng.choice([None, 1, 2]))
    if rng.random() < 0.3:
        tracker.break_before_line(9)  # counter += step
    try:
        tracker.start()
        for _ in range(OPS_PER_EPISODE):
            if tracker.get_exit_code() is not None:
                break
            motion = rng.choice(
                ["resume", "resume", "resume", "step", "next"]
            )
            timeout = rng.choice([0.2, 1.0, 5.0, 30.0])
            try:
                getattr(tracker, motion)(timeout=timeout)
            except ControlTimeout:
                # Busy, not hung: the call returned. Keep driving.
                continue
            # THE invariant: every returning control call leaves the
            # tracker paused or terminated.
            if tracker.get_exit_code() is None:
                reason = tracker.pause_reason
                assert reason is not None
                assert reason.type is not PauseReasonType.EXIT
        # Drain to the end so the episode's threads are gone.
        while tracker.get_exit_code() is None:
            try:
                tracker.resume(timeout=30.0)
            except ControlTimeout:
                continue
        assert tracker.get_exit_code() == 0
    finally:
        tracker.terminate()
    # Terminal contract after the episode.
    with pytest.raises(TrackerError):
        tracker.resume()


@pytest.mark.parametrize("backend", BACKENDS)
def test_seeded_interleaving_schedules(backend, write_program):
    seed = _seed()
    print(
        f"\nCONCURRENCY_SEED={seed}  "
        f"(set CONCURRENCY_SEED={seed} to replay)"
    )
    rng = random.Random(seed)
    for episode in range(EPISODES):
        run_episode(rng, backend, write_program, episode)


def test_schedule_is_reproducible_from_its_seed():
    """Identical seeds draw identical op schedules."""

    def draw(seed):
        rng = random.Random(seed)
        return [
            (
                rng.randint(2, 4),
                rng.randint(2, 6),
                rng.random(),
                rng.choice(["resume", "step", "next"]),
            )
            for _ in range(20)
        ]

    assert draw(20240808) == draw(20240808)
