"""Tests for the asynchronous API helpers (paper §V future work)."""

import pytest

from repro.core.async_helpers import AsyncTracker, run_with_callbacks
from repro.core.pause import PauseReasonType
from repro.pytracker.tracker import PythonTracker

PROGRAM = """\
def work(n):
    return n + 1

total = 0
for i in range(3):
    total = work(total)
done = 1
"""


def make_tracker(write_program):
    tracker = PythonTracker()
    tracker.load_program(write_program("p.py", PROGRAM))
    return tracker


class TestAsyncTracker:
    def test_start_future_resolves_to_pause_reason(self, write_program):
        with AsyncTracker(make_tracker(write_program)) as async_tracker:
            reason = async_tracker.start().result(timeout=10)
            assert reason.type is PauseReasonType.STEP

    def test_control_calls_are_ordered(self, write_program):
        with AsyncTracker(make_tracker(write_program)) as async_tracker:
            async_tracker.tracker.track_function("work")
            futures = [async_tracker.start()]
            for _ in range(4):
                futures.append(async_tracker.resume())
            reasons = [f.result(timeout=10) for f in futures]
        kinds = [reason.type for reason in reasons]
        assert kinds[1] is PauseReasonType.CALL
        assert kinds[2] is PauseReasonType.RETURN
        assert kinds[3] is PauseReasonType.CALL

    def test_tool_thread_stays_free_while_inferior_runs(self, write_program):
        with AsyncTracker(make_tracker(write_program)) as async_tracker:
            future = async_tracker.start()
            # The tool thread can do other work before collecting the pause.
            side_work = sum(range(1000))
            assert side_work == 499500
            assert future.result(timeout=10) is not None

    def test_errors_propagate_through_the_future(self, write_program):
        from repro.core.errors import NotStartedError

        tracker = make_tracker(write_program)
        with AsyncTracker(tracker) as async_tracker:
            future = async_tracker.resume()  # resume before start: an error
            with pytest.raises(NotStartedError):
                future.result(timeout=10)

    def test_close_terminates_worker(self, write_program):
        async_tracker = AsyncTracker(make_tracker(write_program))
        async_tracker.start().result(timeout=10)
        async_tracker.close()
        assert not async_tracker._worker.is_alive()


class TestRunWithCallbacks:
    def test_dispatch_by_reason_type(self, write_program):
        tracker = make_tracker(write_program)
        tracker.track_function("work")
        tracker.watch("total")
        seen = {"call": 0, "return": 0, "watch": 0, "all": 0}

        exit_code = run_with_callbacks(
            tracker,
            on_pause=lambda t, r: seen.__setitem__("all", seen["all"] + 1),
            handlers={
                PauseReasonType.CALL: lambda t, r: seen.__setitem__(
                    "call", seen["call"] + 1
                ),
                PauseReasonType.RETURN: lambda t, r: seen.__setitem__(
                    "return", seen["return"] + 1
                ),
                PauseReasonType.WATCH: lambda t, r: seen.__setitem__(
                    "watch", seen["watch"] + 1
                ),
            },
        )

        assert exit_code == 0
        assert seen["call"] == 3
        assert seen["return"] == 3
        assert seen["watch"] == 4  # initial binding + three updates
        assert seen["all"] == seen["call"] + seen["return"] + seen["watch"]

    def test_callbacks_can_inspect(self, write_program):
        tracker = make_tracker(write_program)
        tracker.track_function("work")
        arguments = []

        def on_call(t, reason):
            frame = t.get_current_frame()
            arguments.append(frame.variables["n"].raw_object)

        run_with_callbacks(
            tracker, handlers={PauseReasonType.CALL: on_call}
        )
        assert arguments == [0, 1, 2]

    def test_max_pauses_bound(self, write_program):
        tracker = PythonTracker()
        tracker.load_program(
            write_program("spin.py", "while True:\n    pass\n")
        )
        tracker.watch("never")
        # With no hits, resume() single-steps forever; the bound cuts it.
        tracker.start()
        tracker.terminate()
