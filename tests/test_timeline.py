"""Timeline recording, delta compression, and reverse control calls.

Covers the tentpole pieces in isolation: the structural JSON diff codec,
the keyframe/ring-buffer storage of :class:`Timeline`, the recorder
attached to a live ``PythonTracker``, the backend-agnostic
``backward_*``/``goto`` calls (including determinism of reverse-step),
the unified :meth:`Tracker.snapshot` inspection call, the keyword-only
``timeout=`` deprecation shim, and the codec registry behind
:func:`load_timeline`.
"""

import json
import warnings

import pytest

from repro.core.errors import (
    NotPausedError,
    NotStartedError,
    ProgramLoadError,
    TrackerError,
)
from repro.core.pause import PauseReasonType
from repro.core.timeline import (
    StateSnapshot,
    Timeline,
    apply_patch,
    diff_tree,
    load_timeline,
    register_timeline_codec,
    trees_equal,
)
from repro.pytracker import PythonTracker

RECURSION = """\
def rec(n):
    x = n
    if n == 0:
        return 0
    return rec(n - 1)

result = rec(3)
print(result)
"""


@pytest.fixture
def recursion_program(tmp_path):
    path = tmp_path / "rec.py"
    path.write_text(RECURSION)
    return str(path)


def _recorded_tracker(program, **kwargs):
    tracker = PythonTracker(capture_output=True)
    tracker.load_program(program)
    tracker.enable_recording(**kwargs)
    tracker.start()
    return tracker


def _run_to_exit(tracker, move="step"):
    for _ in range(500):
        if tracker.get_exit_code() is not None:
            return
        getattr(tracker, move)()
    pytest.fail("inferior did not terminate")


# ---------------------------------------------------------------------------
# diff_tree / apply_patch
# ---------------------------------------------------------------------------


class TestDeltaCodec:
    def roundtrip(self, old, new):
        patch = diff_tree(old, new)
        rebuilt = apply_patch(old, patch)
        assert trees_equal(rebuilt, new)
        return patch

    def test_identical_trees_have_no_patch(self):
        tree = {"a": [1, {"b": None}], "c": "x"}
        assert diff_tree(tree, json.loads(json.dumps(tree))) is None

    def test_dict_set_del_sub(self):
        old = {"keep": 1, "drop": 2, "edit": {"x": 1}}
        new = {"keep": 1, "add": 3, "edit": {"x": 2}}
        patch = self.roundtrip(old, new)
        assert patch["$d"]["set"] == {"add": 3}
        assert patch["$d"]["del"] == ["drop"]
        assert "edit" in patch["$d"]["sub"]
        assert "keep" not in patch["$d"].get("sub", {})

    def test_list_grow_shrink_and_edit(self):
        self.roundtrip([1, 2, 3], [1, 2, 3, 4, 5])
        self.roundtrip([1, 2, 3], [1])
        self.roundtrip([1, 2, 3], [1, 9, 3])
        self.roundtrip([], [{"a": 1}])
        self.roundtrip([1, 2], [])

    def test_type_change_is_replacement(self):
        assert diff_tree({"a": 1}, [1]) == {"$r": [1]}
        assert diff_tree(1, "1") == {"$r": "1"}

    def test_bool_int_are_distinct(self):
        # JSON bool vs int must not be conflated (True == 1 in Python).
        assert diff_tree(True, 1) == {"$r": 1}
        assert not trees_equal(True, 1)
        assert not trees_equal([True], [1])

    def test_patch_does_not_mutate_old(self):
        old = {"a": [1, 2], "b": {"c": 1}}
        patch = diff_tree(old, {"a": [1], "b": {"c": 2}})
        apply_patch(old, patch)
        assert old == {"a": [1, 2], "b": {"c": 1}}

    def test_malformed_patch_rejected(self):
        with pytest.raises(TrackerError):
            apply_patch({}, {"$bogus": 1})


# ---------------------------------------------------------------------------
# Timeline storage
# ---------------------------------------------------------------------------


def _snap(line, depth=0, **kwargs):
    return StateSnapshot(
        frame=None, filename="p.py", line=line, depth=depth, **kwargs
    )


class TestTimelineStorage:
    def test_keyframe_segmentation(self):
        timeline = Timeline(keyframe_interval=4)
        for line in range(10):
            timeline.append(_snap(line))
        stats = timeline.stats()
        assert stats["keyframes"] == 3  # 4 + 4 + 2
        assert stats["deltas"] == 7
        for line in range(10):
            assert timeline.snapshot(line).line == line

    def test_random_access_and_negative_indexes(self):
        timeline = Timeline(keyframe_interval=3)
        for line in range(7):
            timeline.append(_snap(line))
        assert timeline.snapshot(-1).line == 6
        assert timeline.snapshot(3).line == 3
        assert timeline.snapshot(0).line == 0
        with pytest.raises(IndexError):
            timeline.snapshot(7)

    def test_ring_eviction_keeps_global_indexes(self):
        timeline = Timeline(keyframe_interval=4, max_snapshots=6)
        for line in range(12):
            timeline.append(_snap(line))
        assert len(timeline) == 12
        # Whole keyframe-led segments are evicted from the front as the
        # bound is crossed; with interval 4 the survivors are [8..11].
        assert timeline.start_index == 8
        assert timeline.retained == 4
        # Retained snapshots answer to their original global index.
        assert timeline.snapshot(8).line == 8
        assert timeline.snapshot(11).line == 11
        with pytest.raises(IndexError):
            timeline.snapshot(7)

    def test_drop_last_across_segment_boundary(self):
        timeline = Timeline(keyframe_interval=2)
        for line in range(3):  # segments: [0,1], [2]
            timeline.append(_snap(line))
        assert timeline.drop_last()  # drops the keyframe-only segment
        assert len(timeline) == 2
        assert timeline.snapshot(-1).line == 1
        assert timeline.drop_last()
        assert timeline.drop_last()
        assert not timeline.drop_last()  # empty
        timeline.append(_snap(42))
        assert timeline.snapshot(0).line == 42

    def test_save_load_roundtrip(self, tmp_path):
        timeline = Timeline(
            keyframe_interval=3, program="p.py", source="x = 1", backend="python"
        )
        for line in range(8):
            timeline.append(_snap(line, stdout="out" * line))
        path = str(tmp_path / "t.timeline.json")
        timeline.save(path)
        loaded = Timeline.load(path)
        assert loaded.program == "p.py"
        assert loaded.source == "x = 1"
        assert loaded.backend == "python"
        assert len(loaded) == len(timeline)
        for index in range(8):
            assert loaded.snapshot(index) == timeline.snapshot(index)

    def test_snapshot_structural_equality(self):
        assert _snap(1, stdout="a") == _snap(1, stdout="a")
        assert _snap(1) != _snap(2)


# ---------------------------------------------------------------------------
# Recording on a live PythonTracker
# ---------------------------------------------------------------------------


class TestRecording:
    def test_every_pause_is_recorded(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        lines = [tracker.get_position()[1]]
        while tracker.get_exit_code() is None:
            tracker.step()
            if tracker.get_exit_code() is None:
                lines.append(tracker.get_position()[1])
        timeline = tracker.timeline
        # one snapshot per pause (start + each step) plus the exit snapshot
        assert len(timeline) == len(lines) + 1
        recorded = [timeline.snapshot(i).line for i in range(len(lines))]
        assert recorded == lines
        final = timeline.snapshot(-1)
        assert final.exit_code == 0
        tracker.terminate()

    def test_record_false_skips_one_pause(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        length = len(tracker.timeline)
        tracker.step(record=False)
        assert len(tracker.timeline) == length
        tracker.step()
        assert len(tracker.timeline) == length + 1
        tracker.terminate()

    def test_disable_recording_keeps_history(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        tracker.step()
        length = len(tracker.timeline)
        tracker.disable_recording()
        tracker.step()
        assert len(tracker.timeline) == length
        tracker.backward_step()  # history stays navigable
        tracker.terminate()

    def test_recorder_captures_source_and_stdout(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        _run_to_exit(tracker, move="resume")
        timeline = tracker.timeline
        assert timeline.source.splitlines() == RECURSION.splitlines()
        assert timeline.snapshot(-1).stdout == "0\n"
        assert timeline.backend == "python"
        tracker.terminate()


# ---------------------------------------------------------------------------
# Reverse control calls
# ---------------------------------------------------------------------------


class TestReverseControl:
    def test_requires_recording(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        tracker.start()
        with pytest.raises(TrackerError):
            tracker.backward_step()
        tracker.terminate()

    def test_backward_step_rewinds_inspection(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        forward = []
        for _ in range(6):
            forward.append(tracker.snapshot())
            tracker.step()
        forward.append(tracker.snapshot())
        for expected in reversed(forward[:-1]):
            tracker.backward_step()
            assert tracker.snapshot() == expected
            assert tracker.get_position()[1] == expected.line
        with pytest.raises(NotPausedError):
            tracker.backward_step()
        tracker.terminate()

    def test_forward_through_history_then_live(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        for _ in range(5):
            tracker.step()
        live_line = tracker.get_position()[1]
        for _ in range(5):
            tracker.backward_step()
        # Forward steps replay history without touching the inferior...
        for _ in range(5):
            tracker.step()
        assert tracker.get_position()[1] == live_line
        # ...and the next step goes live again.
        tracker.step()
        assert len(tracker.timeline) == 7
        tracker.terminate()

    def test_backward_next_and_finish_use_depth(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        while tracker.get_exit_code() is None and tracker.snapshot().depth < 2:
            tracker.step()
        here = tracker.snapshot()
        assert here.depth == 2
        tracker.backward_finish()
        assert tracker.snapshot().depth == 1
        tracker.goto(-1)
        tracker.backward_next()
        assert tracker.snapshot().depth <= here.depth
        tracker.terminate()

    def test_backward_resume_lands_on_control_point(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        tracker.break_before_line(3)
        tracker.enable_recording()
        tracker.start()
        tracker.resume()  # breakpoint at depth 1
        tracker.resume()  # breakpoint at depth 2
        tracker.step()
        tracker.backward_resume()
        reason = tracker.pause_reason
        assert reason.type is PauseReasonType.BREAKPOINT
        assert tracker.get_position()[1] == 3
        tracker.terminate()

    def test_goto_bounds_and_return_value(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        for _ in range(4):
            tracker.step()
        landed = tracker.goto(2)
        assert isinstance(landed, StateSnapshot)
        assert tracker.snapshot() == landed
        with pytest.raises(TrackerError):
            tracker.goto(99)
        with pytest.raises(TrackerError):
            tracker.goto(-99)
        tracker.goto(-1)  # back to live
        tracker.step()
        tracker.terminate()

    def test_rewound_output_is_historical(self, recursion_program):
        tracker = _recorded_tracker(recursion_program)
        _run_to_exit(tracker, move="step")
        assert tracker.get_output() == "0\n"
        tracker.goto(0)
        assert tracker.get_output() == ""
        tracker.goto(-1)
        assert tracker.get_output() == "0\n"
        tracker.terminate()

    def test_reverse_step_determinism(self, recursion_program):
        """step xN then backward_step xN revisits the same states, twice."""
        tracker = _recorded_tracker(recursion_program)
        forward = [tracker.snapshot()]
        for _ in range(8):
            tracker.step()
            forward.append(tracker.snapshot())
        for _ in range(2):  # rewind fully, replay forward, rewind again
            rewound = []
            for _ in range(8):
                tracker.backward_step()
                rewound.append(tracker.snapshot())
            assert rewound == forward[-2::-1]
            for _ in range(8):
                tracker.step()
            assert tracker.snapshot() == forward[-1]
        tracker.terminate()


# ---------------------------------------------------------------------------
# The unified snapshot() inspection call
# ---------------------------------------------------------------------------


class TestSnapshotUnification:
    def test_snapshot_matches_the_quartet(self, recursion_program):
        tracker = PythonTracker(capture_output=True)
        tracker.load_program(recursion_program)
        tracker.start()
        for _ in range(4):
            tracker.step()
        snapshot = tracker.snapshot()
        assert snapshot.position() == tracker.get_position()
        frames = tracker.get_frames()
        assert [f.name for f in snapshot.frames()] == [f.name for f in frames]
        assert snapshot.frame.depth == frames[0].depth
        assert set(snapshot.globals) == set(tracker.get_global_variables())
        looked_up = snapshot.lookup("n", function="rec")
        assert looked_up is not None
        assert looked_up.value.render() == tracker.get_variable(
            "n", function="rec"
        ).value.render()
        tracker.terminate()

    def test_snapshot_requires_start(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        with pytest.raises(NotStartedError):
            tracker.snapshot()

    def test_exit_snapshot(self, recursion_program):
        tracker = PythonTracker(capture_output=True)
        tracker.load_program(recursion_program)
        tracker.start()
        _run_to_exit(tracker, move="resume")
        snapshot = tracker.snapshot()
        assert snapshot.exit_code == 0
        tracker.terminate()


# ---------------------------------------------------------------------------
# Keyword-only timeout shim
# ---------------------------------------------------------------------------


class TestKeywordOnlyShim:
    def test_positional_timeout_warns_but_works(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        tracker.start()
        with pytest.warns(DeprecationWarning, match="timeout"):
            tracker.step(5.0)
        tracker.terminate()

    def test_keyword_timeout_is_silent(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        tracker.start()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracker.step(timeout=5.0)
        tracker.terminate()

    def test_both_positional_and_keyword_rejected(self, recursion_program):
        tracker = PythonTracker()
        tracker.load_program(recursion_program)
        tracker.start()
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                tracker.step(1.0, timeout=2.0)
        tracker.terminate()


# ---------------------------------------------------------------------------
# Codec registry / load_timeline
# ---------------------------------------------------------------------------


class TestCodecs:
    def test_native_roundtrip_through_load_timeline(
        self, recursion_program, tmp_path
    ):
        tracker = _recorded_tracker(recursion_program)
        _run_to_exit(tracker, move="step")
        path = str(tmp_path / "run.timeline.json")
        tracker.timeline.save(path)
        tracker.terminate()
        loaded = load_timeline(path)
        assert len(loaded) == len(Timeline.load(path))
        assert loaded.snapshot(0).line == 1

    def test_pt_trace_loads_as_timeline(self, recursion_program, tmp_path):
        from repro.pytutor import record_trace

        trace = record_trace(recursion_program)
        path = str(tmp_path / "run.trace.json")
        trace.save(path)
        timeline = load_timeline(path)
        assert timeline.retained == len(trace.steps)
        assert timeline.source == trace.code
        assert [s.line for s in timeline.snapshots()] == [
            step.line for step in trace.steps
        ]

    def test_unknown_json_is_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ProgramLoadError, match="codec"):
            load_timeline(str(path))
        path.write_text("not json at all")
        with pytest.raises(ProgramLoadError):
            load_timeline(str(path))

    def test_third_party_codec_registration(self, tmp_path):
        def sniff(data):
            return isinstance(data, dict) and data.get("format") == "toy-v1"

        def build(data):
            timeline = Timeline(program="toy")
            for line in data["lines"]:
                timeline.append(_snap(line))
            return timeline

        register_timeline_codec("toy", sniff, build)
        path = tmp_path / "toy.json"
        path.write_text('{"format": "toy-v1", "lines": [3, 1, 4]}')
        timeline = load_timeline(str(path))
        assert [s.line for s in timeline.snapshots()] == [3, 1, 4]


# ---------------------------------------------------------------------------
# Compression ratio (the ISSUE's acceptance assert lives in benchmarks too)
# ---------------------------------------------------------------------------


def test_delta_timeline_is_half_of_all_keyframes(recursion_program):
    delta = _recorded_tracker(recursion_program, keyframe_interval=16)
    _run_to_exit(delta, move="step")
    delta_bytes = delta.timeline.stats()["json_bytes"]
    delta.terminate()

    keyframed = _recorded_tracker(recursion_program, keyframe_interval=1)
    _run_to_exit(keyframed, move="step")
    keyframe_bytes = keyframed.timeline.stats()["json_bytes"]
    keyframed.terminate()

    assert delta_bytes <= keyframe_bytes * 0.5
