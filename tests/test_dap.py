"""Tests for the DAP adapter: protocol framing and a full session."""

import io

import pytest

from repro.dap import protocol
from repro.dap.adapter import DebugAdapter, serve

PROGRAM = """\
def combine(a, b):
    pair = [a, b]
    return pair

left = 1
right = 2
result = combine(left, right)
done = 1
"""

C_PROGRAM = """\
int add(int a, int b) {
    int s = a + b;
    return s;
}

int main(void) {
    int out = add(20, 22);
    return 0;
}
"""


def request(command, arguments=None, seq=1):
    return protocol.make_request(seq, command, arguments)


class TestProtocolFraming:
    def test_write_read_round_trip(self):
        buffer = io.BytesIO()
        message = protocol.make_request(7, "initialize", {"adapterID": "x"})
        protocol.write_message(buffer, message)
        buffer.seek(0)
        assert protocol.read_message(buffer) == message

    def test_multiple_messages(self):
        buffer = io.BytesIO()
        for seq in range(3):
            protocol.write_message(buffer, protocol.make_event(seq, "stopped"))
        buffer.seek(0)
        events = [protocol.read_message(buffer) for _ in range(3)]
        assert [event["seq"] for event in events] == [0, 1, 2]
        assert protocol.read_message(buffer) is None

    def test_missing_header_raises(self):
        from repro.core.errors import ProtocolError

        buffer = io.BytesIO(b"\r\n{}")
        with pytest.raises(ProtocolError):
            protocol.read_message(buffer)

    def test_truncated_payload_raises(self):
        from repro.core.errors import ProtocolError

        buffer = io.BytesIO(b"Content-Length: 100\r\n\r\n{}")
        with pytest.raises(ProtocolError):
            protocol.read_message(buffer)

    def test_unicode_payload(self):
        buffer = io.BytesIO()
        message = protocol.make_event(1, "output", {"output": "héllo ✓"})
        protocol.write_message(buffer, message)
        buffer.seek(0)
        assert protocol.read_message(buffer)["body"]["output"] == "héllo ✓"


@pytest.fixture
def launched(write_program):
    """An adapter with the Python demo program launched and configured."""
    adapter = DebugAdapter()
    adapter.handle(request("initialize"))
    path = write_program("p.py", PROGRAM)
    messages = adapter.handle(request("launch", {"program": path}))
    assert messages[0]["success"]
    yield adapter, path
    adapter.handle(request("disconnect"))


class TestSessionLifecycle:
    def test_initialize_reports_capabilities(self):
        adapter = DebugAdapter()
        messages = adapter.handle(request("initialize"))
        assert messages[0]["body"]["supportsFunctionBreakpoints"]
        assert messages[1]["event"] == "initialized"

    def test_configuration_done_stops_on_entry(self, launched):
        adapter, _ = launched
        messages = adapter.handle(request("configurationDone"))
        assert messages[0]["success"]
        assert messages[1]["event"] == "stopped"
        assert messages[1]["body"]["reason"] == "entry"

    def test_continue_to_termination(self, launched):
        adapter, _ = launched
        adapter.handle(request("configurationDone"))
        messages = adapter.handle(request("continue"))
        events = [m for m in messages if m["type"] == "event"]
        assert [event["event"] for event in events] == ["exited", "terminated"]
        assert events[0]["body"]["exitCode"] == 0

    def test_unsupported_request(self):
        adapter = DebugAdapter()
        response = adapter.handle(request("gotoTargets"))[0]
        assert not response["success"]

    def test_launch_requires_program(self):
        adapter = DebugAdapter()
        response = adapter.handle(request("launch", {}))[0]
        assert not response["success"]


class TestBreakpointsAndStepping:
    def test_line_breakpoint_stops(self, launched):
        adapter, path = launched
        result = adapter.handle(
            request(
                "setBreakpoints",
                {"source": {"path": path}, "breakpoints": [{"line": 7}]},
            )
        )[0]
        assert result["body"]["breakpoints"][0]["verified"]
        adapter.handle(request("configurationDone"))
        messages = adapter.handle(request("continue"))
        stopped = [m for m in messages if m.get("event") == "stopped"][0]
        assert stopped["body"]["reason"] == "breakpoint"

    def test_function_breakpoint_and_stack(self, launched):
        adapter, _ = launched
        adapter.handle(
            request(
                "setFunctionBreakpoints",
                {"breakpoints": [{"name": "combine"}]},
            )
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))
        stack = adapter.handle(request("stackTrace", {"threadId": 1}))[0]
        names = [frame["name"] for frame in stack["body"]["stackFrames"]]
        assert names == ["combine", "<module>"]

    def test_step_in_and_out(self, launched):
        adapter, _ = launched
        adapter.handle(request("configurationDone"))
        for _ in range(6):  # step to the call line and into combine
            adapter.handle(request("stepIn"))
            stack = adapter.handle(request("stackTrace"))[0]
            if stack["body"]["stackFrames"][0]["name"] == "combine":
                break
        assert stack["body"]["stackFrames"][0]["name"] == "combine"
        adapter.handle(request("stepOut"))
        stack = adapter.handle(request("stackTrace"))[0]
        assert stack["body"]["stackFrames"][0]["name"] == "<module>"

    def test_next_steps_over(self, launched):
        adapter, _ = launched
        adapter.handle(request("configurationDone"))
        seen = set()
        for _ in range(10):
            stack = adapter.handle(request("stackTrace"))[0]
            seen.add(stack["body"]["stackFrames"][0]["name"])
            messages = adapter.handle(request("next"))
            if any(m.get("event") == "terminated" for m in messages):
                break
        assert seen == {"<module>"}


class TestVariables:
    def test_scopes_and_variables(self, launched):
        adapter, _ = launched
        adapter.handle(
            request("setFunctionBreakpoints", {"breakpoints": [{"name": "combine"}]})
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))
        scopes = adapter.handle(request("scopes", {"frameId": 0}))[0]
        scope_names = [s["name"] for s in scopes["body"]["scopes"]]
        assert scope_names == ["Locals", "Globals"]
        locals_reference = scopes["body"]["scopes"][0]["variablesReference"]
        variables = adapter.handle(
            request("variables", {"variablesReference": locals_reference})
        )[0]["body"]["variables"]
        by_name = {v["name"]: v for v in variables}
        assert by_name["a"]["value"] == "1"
        assert by_name["b"]["value"] == "2"

    def test_structured_variable_expands(self, launched):
        adapter, _ = launched
        adapter.handle(
            request("setBreakpoints", {"breakpoints": [{"line": 3}]})
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))
        scopes = adapter.handle(request("scopes", {"frameId": 0}))[0]
        reference = scopes["body"]["scopes"][0]["variablesReference"]
        variables = adapter.handle(
            request("variables", {"variablesReference": reference})
        )[0]["body"]["variables"]
        pair = next(v for v in variables if v["name"] == "pair")
        assert pair["variablesReference"] > 0
        children = adapter.handle(
            request("variables", {"variablesReference": pair["variablesReference"]})
        )[0]["body"]["variables"]
        assert [child["value"] for child in children] == ["1", "2"]

    def test_evaluate(self, launched):
        adapter, _ = launched
        adapter.handle(
            request("setBreakpoints", {"breakpoints": [{"line": 8}]})
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))
        result = adapter.handle(request("evaluate", {"expression": "result"}))[0]
        assert result["body"]["result"] == "[1, 2]"

    def test_threads(self, launched):
        adapter, _ = launched
        adapter.handle(request("configurationDone"))
        threads = adapter.handle(request("threads"))[0]["body"]["threads"]
        # A single-threaded inferior is one real thread: the main
        # inferior thread at DAP id 1 (tracker index 0), with its state.
        assert [t["id"] for t in threads] == [1]
        assert "[paused]" in threads[0]["name"]


class TestCInferior:
    def test_same_session_against_minic(self, write_program):
        adapter = DebugAdapter()
        adapter.handle(request("initialize"))
        path = write_program("p.c", C_PROGRAM)
        adapter.handle(request("launch", {"program": path}))
        adapter.handle(
            request("setFunctionBreakpoints", {"breakpoints": [{"name": "add"}]})
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))
        stack = adapter.handle(request("stackTrace"))[0]
        assert stack["body"]["stackFrames"][0]["name"] == "add"
        scopes = adapter.handle(request("scopes", {"frameId": 0}))[0]
        reference = scopes["body"]["scopes"][0]["variablesReference"]
        variables = adapter.handle(
            request("variables", {"variablesReference": reference})
        )[0]["body"]["variables"]
        values = {v["name"]: v["value"] for v in variables}
        assert values["a"] == "20"
        assert values["b"] == "22"
        adapter.handle(request("disconnect"))


class TestSubprocessServer:
    def test_dap_session_over_a_real_pipe(self, write_program):
        """The adapter runs as `python -m repro.dap.adapter` end to end."""
        import subprocess
        import sys

        path = write_program("p.py", "x = 1\ny = 2\n")
        stdin_payload = io.BytesIO()
        for seq, (command, arguments) in enumerate(
            [
                ("initialize", None),
                ("launch", {"program": path}),
                ("configurationDone", None),
                ("continue", None),
                ("disconnect", None),
            ],
            start=1,
        ):
            protocol.write_message(
                stdin_payload, protocol.make_request(seq, command, arguments)
            )
        completed = subprocess.run(
            [sys.executable, "-m", "repro.dap.adapter"],
            input=stdin_payload.getvalue(),
            capture_output=True,
            timeout=60,
        )
        assert completed.returncode == 0
        output = io.BytesIO(completed.stdout)
        events = []
        while True:
            message = protocol.read_message(output)
            if message is None:
                break
            if message["type"] == "event":
                events.append(message["event"])
        assert "initialized" in events
        assert "exited" in events
        assert "terminated" in events


class TestServeLoop:
    def test_full_session_over_streams(self, write_program):
        path = write_program("p.py", "x = 1\ny = 2\n")
        input_buffer = io.BytesIO()
        for seq, (command, arguments) in enumerate(
            [
                ("initialize", None),
                ("launch", {"program": path}),
                ("configurationDone", None),
                ("continue", None),
                ("disconnect", None),
            ],
            start=1,
        ):
            protocol.write_message(
                input_buffer, protocol.make_request(seq, command, arguments)
            )
        input_buffer.seek(0)
        output_buffer = io.BytesIO()
        serve(input_buffer, output_buffer)
        output_buffer.seek(0)
        messages = []
        while True:
            message = protocol.read_message(output_buffer)
            if message is None:
                break
            messages.append(message)
        events = [m["event"] for m in messages if m["type"] == "event"]
        assert "initialized" in events
        assert "terminated" in events
        responses = [m for m in messages if m["type"] == "response"]
        assert all(response["success"] for response in responses)


class TestReverseExecution:
    def _launch_recorded(self, adapter, path, record=True):
        adapter.handle(request("initialize"))
        messages = adapter.handle(
            request("launch", {"program": path, "record": record})
        )
        assert messages[0]["success"]
        adapter.handle(request("configurationDone"))

    def test_initialize_advertises_step_back(self):
        adapter = DebugAdapter()
        messages = adapter.handle(request("initialize"))
        assert messages[0]["body"]["supportsStepBack"]

    def test_step_back_rewinds(self, write_program):
        adapter = DebugAdapter()
        path = write_program("p.py", PROGRAM)
        self._launch_recorded(adapter, path)
        for _ in range(3):
            adapter.handle(request("next"))
        line_before = adapter.tracker.get_position()[1]
        messages = adapter.handle(request("stepBack"))
        assert messages[0]["success"]
        stopped = [m for m in messages if m.get("event") == "stopped"]
        assert stopped
        assert adapter.tracker.get_position()[1] != line_before
        # stackTrace serves the rewound state
        stack = adapter.handle(request("stackTrace", {"threadId": 1}))
        assert stack[0]["success"]
        adapter.handle(request("disconnect"))

    def test_reverse_continue_lands_on_breakpoint(self, write_program):
        adapter = DebugAdapter()
        path = write_program("p.py", PROGRAM)
        adapter.handle(request("initialize"))
        adapter.handle(
            request("launch", {"program": path,
                               "record": {"keyframeInterval": 4}})
        )
        adapter.handle(
            request(
                "setBreakpoints",
                {"source": {"path": path}, "breakpoints": [{"line": 2}]},
            )
        )
        adapter.handle(request("configurationDone"))
        adapter.handle(request("continue"))  # hit line 2
        adapter.handle(request("next"))
        messages = adapter.handle(request("reverseContinue"))
        assert messages[0]["success"]
        assert adapter.tracker.get_position()[1] == 2
        adapter.handle(request("disconnect"))

    def test_step_back_without_recording_fails_cleanly(self, write_program):
        adapter = DebugAdapter()
        path = write_program("p.py", PROGRAM)
        adapter.handle(request("initialize"))
        adapter.handle(request("launch", {"program": path}))
        adapter.handle(request("configurationDone"))
        adapter.handle(request("next"))
        messages = adapter.handle(request("stepBack"))
        assert not messages[0]["success"]
        assert "timeline" in messages[0]["message"]
        adapter.handle(request("disconnect"))


THREADED_PROGRAM = """\
import threading

def worker(tag):
    value = tag * 2
    return value

t1 = threading.Thread(name="w1", target=worker, args=(1,))
t1.start()
t1.join()
t2 = threading.Thread(name="w2", target=worker, args=(2,))
t2.start()
t2.join()
print("done")
"""


@pytest.fixture
def launched_threaded(write_program):
    adapter = DebugAdapter()
    adapter.handle(request("initialize"))
    path = write_program("thr.py", THREADED_PROGRAM)
    messages = adapter.handle(request("launch", {"program": path}))
    assert messages[0]["success"]
    yield adapter, path
    adapter.handle(request("disconnect"))


class TestThreadsOverDap:
    """Real per-thread surfaces: DAP ids are tracker indexes + 1."""

    def paused_on_worker(self, adapter):
        adapter.handle(
            request(
                "setFunctionBreakpoints",
                {"breakpoints": [{"name": "worker"}]},
            )
        )
        adapter.handle(request("configurationDone"))
        return adapter.handle(request("continue"))

    def test_threads_request_lists_inferior_threads(
        self, launched_threaded
    ):
        adapter, _ = launched_threaded
        self.paused_on_worker(adapter)
        body = adapter.handle(request("threads"))[0]["body"]
        by_id = {t["id"]: t["name"] for t in body["threads"]}
        assert {1, 2} <= set(by_id)  # main (index 0) and w1 (index 1)
        assert "w1" in by_id[2]
        assert "[paused]" in by_id[2]

    def test_stopped_event_carries_the_worker_thread_id(
        self, launched_threaded
    ):
        adapter, _ = launched_threaded
        messages = self.paused_on_worker(adapter)
        stopped = [m for m in messages if m.get("event") == "stopped"][0]
        assert stopped["body"]["reason"] == "breakpoint"
        assert stopped["body"]["threadId"] == 2  # w1 is tracker index 1
        assert stopped["body"]["allThreadsStopped"] is True

    def test_stack_trace_per_thread(self, launched_threaded):
        adapter, _ = launched_threaded
        self.paused_on_worker(adapter)
        # The pausing worker's stack through the normal frame-id range.
        worker_stack = adapter.handle(
            request("stackTrace", {"threadId": 2})
        )[0]["body"]["stackFrames"]
        assert worker_stack[0]["name"] == "worker"
        # The main thread (blocked in join) is view-only.
        main_stack = adapter.handle(
            request("stackTrace", {"threadId": 1})
        )[0]["body"]["stackFrames"]
        assert main_stack
        assert main_stack[-1]["name"] == "<module>"
        assert all(frame["id"] >= 10_000 for frame in main_stack)

    def test_single_threaded_fallback_keeps_thread_one(self, launched):
        adapter, _ = launched
        adapter.handle(request("configurationDone"))
        body = adapter.handle(request("threads"))[0]["body"]
        ids = [t["id"] for t in body["threads"]]
        assert ids == [1]
