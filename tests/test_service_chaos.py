"""The chaos soak: the crash-only service under seeded random faults.

This is the test the crash-only design exists to pass. A
:class:`~repro.testing.faults.ChaosPlan` injects faults on *both* hops of
the service topology at once — a :class:`~repro.testing.faults.ChaosProxy`
sits between every client and the TCP listener (delays, partial writes,
hard disconnects, periodic drop-everything), and a
:class:`~repro.testing.faults.ChaosChildTransport` sits between the
service and every pooled child (delays, SIGKILLs mid-dialogue) — while
worker coroutines drive a few hundred weighted-random tracker operations.

The invariant is NOT that operations succeed — under chaos many fail —
but that the service stays *coherent*:

- every client call terminates, with a result or a typed error (nothing
  hangs: every await carries a deadline well under the suite timeout);
- every session ends resolved (closed, or dead-with-tombstone);
- the pool comes back healthy once the chaos stops;
- the whole service still shuts down cleanly.

The run is exactly reproducible from its seed: set ``CHAOS_SEED`` to
replay a failure (the seed is printed at the start of every run, and the
fault trace is dumped to ``ARTIFACTS_DIR`` on failure).
"""

import asyncio
import os
import random
import signal

from repro.core.errors import (
    ControlTimeout,
    ServerCrashError,
    TrackerError,
)
from repro.core.supervision import BackoffPolicy
from repro.service import ServiceClient, ServiceConfig, TrackerService
from repro.testing.faults import (
    CHILD_HOP,
    TCP_HOP,
    ChaosChildTransport,
    ChaosPlan,
    ChaosProxy,
)

ARTIFACTS_DIR = os.environ.get(
    "ARTIFACTS_DIR", os.path.join(os.path.dirname(__file__), "_artifacts")
)

WORKERS = 4
EVENTS_PER_WORKER = 50  # 4 x 50 = the 200-event soak

#: Deadline on any single chaos operation — generous enough for a
#: resurrection (pool spawn + replay) yet far under the suite timeout,
#: so a hang fails THIS assertion rather than the global watchdog.
OP_TIMEOUT = 15.0

#: Deadline on the whole soak (the suite-wide per-test timeout is 120s;
#: a hang must fail here first, with the seed in the captured output).
SOAK_TIMEOUT = 90.0

PROGRAM = """\
total = 0
for i in range(5):
    total = total + i
    print("tick", i)
print("done", total)
"""

#: Errors a chaos operation may legitimately terminate with. Anything
#: else (or a hang) is a chaos-harness failure.
EXPECTED_ERRORS = (
    TrackerError,  # includes every typed service error
    ServerCrashError,
    ControlTimeout,
    asyncio.TimeoutError,
    ConnectionError,
    OSError,
)


def _chaos_seed() -> int:
    env = os.environ.get("CHAOS_SEED")
    if env:
        return int(env)
    return random.SystemRandom().randrange(1 << 32)


class Worker:
    """One client connection driving weighted-random tracker operations."""

    def __init__(self, index, program, proxy_port, rng):
        self.index = index
        self.program = program
        self.proxy_port = proxy_port
        self.rng = rng
        self.client = None
        self.tracker = None
        self.completed = 0
        self.errors = 0

    async def _connect(self):
        self.client = await ServiceClient.connect(
            "127.0.0.1",
            self.proxy_port,
            reconnect=BackoffPolicy(
                max_restarts=8, initial_delay=0.05, max_delay=0.5
            ),
        )

    async def run(self, events, proxy):
        await asyncio.wait_for(self._connect(), OP_TIMEOUT)
        for _ in range(events):
            await self._one_event(proxy)
            self.completed += 1
        # Resolution: close whatever is still open, tolerating a client
        # whose connection permanently died mid-soak.
        try:
            if self.tracker is not None:
                await asyncio.wait_for(self.tracker.close(), OP_TIMEOUT)
            await asyncio.wait_for(self.client.close(), OP_TIMEOUT)
        except EXPECTED_ERRORS:
            pass

    async def _one_event(self, proxy):
        try:
            await asyncio.wait_for(self._act(proxy), OP_TIMEOUT)
        except EXPECTED_ERRORS:
            self.errors += 1

    async def _act(self, proxy):
        tracker = self.tracker
        if tracker is None:
            self.tracker = await self.client.open_tracker(self.program)
            return
        roll = self.rng.random()
        if roll < 0.30:
            if tracker.get_exit_code() is None and tracker.last_stop:
                await tracker.resume(timeout=5.0)
            elif tracker.last_stop is None:
                await tracker.start(timeout=5.0)
            else:  # exited: recycle the session
                self.tracker = None
                await tracker.close()
        elif roll < 0.50:
            if tracker.last_stop is None:
                await tracker.start(timeout=5.0)
            elif tracker.get_exit_code() is None:
                await tracker.step(timeout=5.0)
        elif roll < 0.65:
            await tracker.get_position()
        elif roll < 0.75:
            await tracker.get_global_variables()
        elif roll < 0.85:
            await self.client.service_stats()
        elif roll < 0.93:
            # the crash hammer: SIGKILL this session's child outright
            pid = tracker.pid
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        else:
            # the network hammer: sever every proxied connection
            proxy.drop_connections()
            await asyncio.sleep(0.05)


def test_chaos_soak_terminates_with_coherent_service(write_program):
    seed = _chaos_seed()
    print(f"\nCHAOS_SEED={seed}  (set CHAOS_SEED={seed} to replay)")
    plan = ChaosPlan(
        seed=seed,
        delay_rate=0.04,
        partial_rate=0.04,
        disconnect_rate=0.004,
        kill_rate=0.002,
        max_delay=0.02,
    )

    async def scenario():
        service = TrackerService(
            ServiceConfig(
                pool_size=2,
                max_sessions=WORKERS * 2,
                detach_grace=10.0,
                session_queue_limit=8,
                # under deliberate child-killing, quarantine would turn
                # the soak into a wall of rejections — raise the bar
                poison_threshold=50,
                transport_spawner=ChaosChildTransport.spawner(plan),
            )
        )
        await service.start()
        host, port = service.address
        proxy = ChaosProxy(host, port, plan)
        await proxy.start()
        try:
            rng = random.Random(seed)
            workers = [
                Worker(
                    i,
                    write_program(f"prog_{i}.py", PROGRAM),
                    proxy.port,
                    random.Random(rng.randrange(1 << 30)),
                )
                for i in range(WORKERS)
            ]
            await asyncio.wait_for(
                asyncio.gather(
                    *(w.run(EVENTS_PER_WORKER, proxy) for w in workers)
                ),
                SOAK_TIMEOUT,
            )

            # -- invariants, with the chaos switched off ----------------
            plan.delay_rate = plan.partial_rate = 0.0
            plan.disconnect_rate = plan.kill_rate = 0.0

            # every planned event terminated (result or typed error)
            for worker in workers:
                assert worker.completed == EVENTS_PER_WORKER

            # every session ended resolved: closed, or surviving with a
            # definite state (alive child, or dead-with-tombstone)
            for session in service.manager.sessions.values():
                assert not session.closed
                assert session.dead or session.child.alive()

            # the pool still hands out a healthy child
            child = await asyncio.wait_for(service.pool.acquire(), 30)
            info = await child.request("-server-info")
            assert info["pid"] == child.pid
            await service.pool.release(child, reusable=False)

            # and the whole thing still shuts down cleanly
            await asyncio.wait_for(service.close(), 60)
            return [w.errors for w in workers]
        finally:
            await proxy.close()
            await service.close()

    try:
        errors = asyncio.run(scenario())
    except BaseException:
        os.makedirs(ARTIFACTS_DIR, exist_ok=True)
        trace_path = os.path.join(
            ARTIFACTS_DIR, f"chaos_trace_{seed}.json"
        )
        plan.dump_trace(trace_path)
        print(f"CHAOS_SEED={seed} failed; fault trace: {trace_path}")
        raise
    print(
        f"chaos soak done: {WORKERS * EVENTS_PER_WORKER} events, "
        f"errors per worker {errors}, "
        f"{len(plan.events)} faults injected"
    )


def test_chaos_plan_is_reproducible_from_its_seed():
    """Identical seeds draw identical fault schedules on every hop."""
    kwargs = dict(
        seed=1234,
        delay_rate=0.2,
        partial_rate=0.1,
        disconnect_rate=0.05,
        kill_rate=0.05,
    )
    first, second = ChaosPlan(**kwargs), ChaosPlan(**kwargs)
    draws = [
        (hop, first.draw(hop), second.draw(hop))
        for hop in [TCP_HOP, CHILD_HOP] * 200
    ]
    assert all(a == b for _, a, b in draws)
    assert any(a is not None for _, a, _ in draws)
    assert first.events == second.events


def test_scripted_fault_fires_on_the_exact_operation():
    plan = ChaosPlan(scripted={(TCP_HOP, 2): "disconnect"})
    assert plan.draw(TCP_HOP) is None
    assert plan.draw(TCP_HOP) is None
    assert plan.draw(TCP_HOP) == "disconnect"
    assert plan.draw(TCP_HOP) is None
    assert plan.draw(CHILD_HOP) is None  # hops count independently
    assert plan.events == [{"hop": TCP_HOP, "op": 2, "kind": "disconnect"}]
