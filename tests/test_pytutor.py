"""Tests for Python Tutor traces: encoding, export, replay (Section III-E)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pause import PauseReasonType
from repro.core.state import AbstractType, Location, Value
from repro.pytutor.export import record_trace
from repro.pytutor.pt_tracker import PTTracker
from repro.pytutor.trace import (
    PTDecoder,
    PTEncoder,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)

RECURSIVE = """\
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

result = fact(4)
print(result)
"""


def prim(content, language_type="int", address=None):
    return Value(
        abstract_type=AbstractType.PRIMITIVE,
        content=content,
        location=Location.HEAP,
        address=address,
        language_type=language_type,
    )


class TestEncoder:
    def test_primitive_encodes_inline(self):
        assert PTEncoder().encode(prim(5)) == 5
        assert PTEncoder().encode(prim("x", "str")) == "x"

    def test_none_encodes_as_null(self):
        assert PTEncoder().encode(Value(AbstractType.NONE, None)) is None

    def test_ref_encodes_with_heap_entry(self):
        encoder = PTEncoder()
        target = Value(
            AbstractType.LIST, (prim(1), prim(2)),
            location=Location.HEAP, address=100, language_type="list",
        )
        encoded = encoder.encode(Value(AbstractType.REF, target))
        assert encoded == ["REF", 100]
        assert encoder.heap["100"] == ["LIST", 1, 2]

    def test_tuple_tag(self):
        encoder = PTEncoder()
        target = Value(
            AbstractType.LIST, (prim(1),),
            address=5, language_type="tuple",
        )
        encoder.encode(Value(AbstractType.REF, target))
        assert encoder.heap["5"][0] == "TUPLE"

    def test_struct_as_instance(self):
        encoder = PTEncoder()
        target = Value(
            AbstractType.STRUCT, {"x": prim(1)},
            address=7, language_type="Node",
        )
        encoder.encode(Value(AbstractType.REF, target))
        assert encoder.heap["7"] == ["INSTANCE", "Node", ["x", 1]]

    def test_shared_target_interned_once(self):
        encoder = PTEncoder()
        shared = Value(AbstractType.LIST, (prim(1),), address=9,
                       language_type="list")
        first = encoder.encode(Value(AbstractType.REF, shared))
        second = encoder.encode(Value(AbstractType.REF, shared))
        assert first == second
        assert len(encoder.heap) == 1

    def test_cyclic_value_terminates(self):
        lst = Value(AbstractType.LIST, (), address=11, language_type="list")
        lst.content = (Value(AbstractType.REF, lst),)
        encoder = PTEncoder()
        encoded = encoder.encode(Value(AbstractType.REF, lst))
        assert encoded == ["REF", 11]
        assert encoder.heap["11"] == ["LIST", ["REF", 11]]

    def test_invalid_marker(self):
        encoded = PTEncoder().encode(Value(AbstractType.INVALID, None))
        assert encoded == ["SPECIAL_FLOAT", "<invalid>"]


class TestDecoder:
    def test_round_trip_through_encoder(self):
        encoder = PTEncoder()
        nested = Value(
            AbstractType.STRUCT,
            {
                "items": Value(
                    AbstractType.LIST, (prim(1), prim(2)),
                    address=21, language_type="list",
                ),
                "name": prim("n", "str"),
            },
            address=20,
            language_type="Box",
        )
        encoded = encoder.encode(Value(AbstractType.REF, nested))
        decoder = PTDecoder(encoder.heap)
        decoded = decoder.decode(encoded)
        assert decoded.abstract_type is AbstractType.REF
        box = decoded.content
        assert box.language_type == "Box"
        # Nested aggregates come back behind REFs (PT heap semantics).
        items = box.content["items"].deref()
        assert [v.content for v in items.content] == [1, 2]

    def test_shared_ref_decodes_to_same_value(self):
        encoder = PTEncoder()
        shared = Value(AbstractType.LIST, (prim(1),), address=33,
                       language_type="list")
        pair = Value(
            AbstractType.LIST,
            (Value(AbstractType.REF, shared), Value(AbstractType.REF, shared)),
            address=34,
            language_type="list",
        )
        encoded = encoder.encode(Value(AbstractType.REF, pair))
        decoded = PTDecoder(encoder.heap).decode(encoded)
        first, second = decoded.content.content
        assert first.content is second.content

    def test_missing_heap_entry_is_invalid(self):
        decoded = PTDecoder({}).decode(["REF", 999])
        assert decoded.content.abstract_type is AbstractType.INVALID


class TestRoundTripAsymmetries:
    """Shapes that used to decode to something that re-encoded differently."""

    def _cycle(self, encoded, heap):
        """decode then encode again; return the re-encoded (value, heap)."""
        decoded = PTDecoder(heap).decode(encoded)
        encoder = PTEncoder()
        return encoder.encode(decoded), encoder.heap

    def test_heap_invalid_stays_on_the_heap(self):
        heap = {"40": ["SPECIAL_FLOAT", "<invalid>"]}
        encoded, new_heap = self._cycle(["REF", 40], heap)
        assert encoded == ["REF", 40]
        assert new_heap == heap

    def test_inline_invalid_stays_inline(self):
        encoded, new_heap = self._cycle(["SPECIAL_FLOAT", "<invalid>"], {})
        assert encoded == ["SPECIAL_FLOAT", "<invalid>"]
        assert new_heap == {}

    def test_function_closure_parent_survives(self):
        heap = {"41": ["FUNCTION", "adder(x)", 7]}
        decoded = PTDecoder(heap).decode(["REF", 41])
        assert decoded.content.closure_parent == 7
        encoded, new_heap = self._cycle(["REF", 41], heap)
        assert encoded == ["REF", 41]
        assert new_heap["41"] == ["FUNCTION", "adder(x)", 7]

    def test_heap_none_primitive_round_trips(self):
        heap = {"42": ["HEAP_PRIMITIVE", "NoneType", None]}
        decoded = PTDecoder(heap).decode(["REF", 42])
        assert decoded.content.abstract_type is AbstractType.NONE
        encoded, new_heap = self._cycle(["REF", 42], heap)
        assert encoded == ["REF", 42]
        assert new_heap == heap

    def test_heap_bytes_primitive_round_trips(self):
        heap = {"43": ["HEAP_PRIMITIVE", "bytes", "ab\xff"]}
        decoded = PTDecoder(heap).decode(["REF", 43])
        assert decoded.content.content == b"ab\xff"
        encoded, new_heap = self._cycle(["REF", 43], heap)
        assert encoded == ["REF", 43]
        assert new_heap == heap


class TestRecordTrace:
    def test_full_trace_one_step_per_line(self, write_program):
        trace = record_trace(write_program("p.py", "a = 1\nb = 2\nc = 3\n"))
        assert [step.line for step in trace.steps] == [1, 2, 3]
        assert all(step.event == "step_line" for step in trace.steps)

    def test_full_trace_includes_stack_and_globals(self, write_program):
        trace = record_trace(write_program("p.py", RECURSIVE))
        call_steps = [s for s in trace.steps if s.stack_to_render]
        assert call_steps, "recursion should produce stack frames"
        deepest = max(len(s.stack_to_render) for s in trace.steps)
        assert deepest == 4  # fact(4) -> fact(1)
        last = trace.steps[-1]
        assert "result" in last.globals or "result" in trace.steps[-1].ordered_globals

    def test_tracked_trace_records_call_return_only(self, write_program):
        trace = record_trace(
            write_program("p.py", RECURSIVE), mode="tracked", track=["fact"]
        )
        assert all(step.event in ("call", "return") for step in trace.steps)
        assert len(trace.steps) == 8  # 4 calls + 4 returns

    def test_variable_filter(self, write_program):
        trace = record_trace(
            write_program("p.py", RECURSIVE),
            mode="tracked",
            track=["fact"],
            variables=["n"],
        )
        for step in trace.steps:
            for frame in step.stack_to_render:
                assert set(frame.ordered_varnames) <= {"n"}

    def test_partial_trace_smaller_than_full(self, write_program):
        path = write_program("p.py", RECURSIVE)
        full = record_trace(path)
        partial = record_trace(path, mode="tracked", track=["fact"],
                               variables=["n"])
        assert len(partial.dumps()) < len(full.dumps())

    def test_stdout_accumulates(self, write_program):
        trace = record_trace(
            write_program("p.py", "print('a')\nprint('b')\nx = 1\n")
        )
        assert trace.steps[-1].stdout == "a\nb\n"

    def test_mode_validation(self, write_program):
        from repro.core.errors import TrackerError

        path = write_program("p.py", "x = 1\n")
        with pytest.raises(TrackerError):
            record_trace(path, mode="bogus")
        with pytest.raises(TrackerError):
            record_trace(path, mode="tracked")  # no track functions

    def test_trace_serializes_to_json(self, write_program, tmp_path):
        trace = record_trace(write_program("p.py", "x = [1, {'k': 2}]\ny = x\n"))
        path = str(tmp_path / "trace.json")
        trace.save(path)
        loaded = PTTrace.load(path)
        assert len(loaded.steps) == len(trace.steps)
        assert loaded.code == trace.code


class TestRealPTFormatInterop:
    """Traces in Python Tutor's actual JSON shape load and replay."""

    REAL_STYLE_TRACE = {
        "code": "x = [1, 2]\ny = x\n",
        "language": "py3",
        "trace": [
            {
                "event": "step_line",
                "line": 1,
                "func_name": "<module>",
                "stack_to_render": [],
                "globals": {},
                "ordered_globals": [],
                "heap": {},
                "stdout": "",
            },
            {
                "event": "step_line",
                "line": 2,
                "func_name": "<module>",
                "stack_to_render": [],
                "globals": {"x": ["REF", 1]},
                "ordered_globals": ["x"],
                "heap": {"1": ["LIST", 1, 2]},
                "stdout": "",
                # Fields the real front-end adds; must be tolerated:
                "exception_msg": "",
                "column": 0,
            },
        ],
    }

    def test_load_real_style_trace(self, tmp_path):
        import json as json_module

        path = tmp_path / "real.json"
        path.write_text(json_module.dumps(self.REAL_STYLE_TRACE))
        tracker = PTTracker()
        tracker.load_program(str(path))
        tracker.start()
        tracker.step()
        globals_map = tracker.get_global_variables()
        target = globals_map["x"].value.content
        assert [v.content for v in target.content] == [1, 2]

    def test_crashing_inferior_records_exception_step(self, write_program):
        trace = record_trace(
            write_program("boom.py", "x = 1\nraise ValueError('boom')\n")
        )
        assert trace.steps[-1].event == "exception"
        assert trace.steps[-1].line >= 1


class TestPTTracker:
    @pytest.fixture
    def trace_path(self, write_program, tmp_path):
        trace = record_trace(
            write_program("p.py", RECURSIVE), mode="tracked", track=["fact"]
        )
        path = str(tmp_path / "trace.json")
        trace.save(path)
        return path

    def test_replay_track_function(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.track_function("fact")
        tracker.start()
        calls = returns = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.CALL:
                calls += 1
            elif tracker.pause_reason.type is PauseReasonType.RETURN:
                returns += 1
        # The first recorded step is consumed by start(); the remaining
        # 7 steps alternate call/return.
        assert calls + returns == 7

    def test_replay_frames(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.track_function("fact")
        tracker.start()
        tracker.resume()
        frame = tracker.get_current_frame()
        assert frame.name == "fact"
        assert "n" in frame.variables

    def test_step_back(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.start()
        tracker.step()
        tracker.step()
        index = tracker.step_index
        tracker.step_back()
        assert tracker.step_index == index - 1

    def test_step_back_at_start_raises(self, trace_path):
        from repro.core.errors import NotPausedError

        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.start()
        with pytest.raises(NotPausedError):
            tracker.step_back()

    def test_post_exit_inspection_allowed(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.start()
        tracker.resume()  # no control points: runs to the end
        while tracker.get_exit_code() is None:
            tracker.resume()
        # The final state stays inspectable (a trace is immutable history).
        frame = tracker.get_current_frame()
        assert frame is not None

    def test_line_breakpoint_on_trace(self, write_program, tmp_path):
        trace = record_trace(write_program("p.py", "a = 1\nb = 2\nc = 3\n"))
        path = str(tmp_path / "t.json")
        trace.save(path)
        tracker = PTTracker()
        tracker.load_program(path)
        tracker.break_before_line(3)
        tracker.start()
        tracker.resume()
        assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        assert tracker.next_lineno == 3

    def test_watch_on_trace(self, write_program, tmp_path):
        trace = record_trace(
            write_program("p.py", "x = 1\nx = 2\nx = 3\ny = 1\n")
        )
        path = str(tmp_path / "t.json")
        trace.save(path)
        tracker = PTTracker()
        tracker.load_program(path)
        tracker.watch("x")
        tracker.start()
        hits = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.WATCH:
                hits += 1
        assert hits == 3

    def test_function_breakpoint_on_trace(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.break_before_func("fact")
        tracker.start()
        tracker.resume()
        assert tracker.pause_reason.type is PauseReasonType.BREAKPOINT
        assert tracker.pause_reason.function == "fact"

    def test_next_and_finish_on_trace(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        tracker.start()
        depth0 = len(tracker.get_frames())
        tracker.next()
        if tracker.get_exit_code() is None:
            assert len(tracker.get_frames()) <= depth0 + 1

    def test_empty_trace_rejected(self, tmp_path):
        from repro.core.errors import ProgramLoadError

        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"code": "", "trace": []}))
        tracker = PTTracker()
        with pytest.raises(ProgramLoadError):
            tracker.load_program(str(path))

    def test_source_from_trace(self, trace_path):
        tracker = PTTracker()
        tracker.load_program(trace_path)
        assert tracker.get_source_lines()[0] == "def fact(n):"


class TestStepReconstruction:
    def test_frame_chain_from_step(self, write_program):
        trace = record_trace(
            write_program("p.py", RECURSIVE), mode="tracked", track=["fact"]
        )
        # Find the deepest call step.
        deepest = max(trace.steps, key=lambda s: len(s.stack_to_render))
        frame = step_to_frame_chain(deepest)
        assert frame.name == "fact"
        depth = len(frame.stack())
        assert depth == len(deepest.stack_to_render)

    def test_globals_from_step(self, write_program):
        trace = record_trace(write_program("p.py", "value = [1, 2]\ndone = 1\n"))
        final = trace.steps[-1]
        globals_map = step_globals(final)
        assert "value" in globals_map
        target = globals_map["value"].value.content
        assert [v.content for v in target.content] == [1, 2]


# ---------------------------------------------------------------------------
# Property-based: encoder/decoder round-trip over random value graphs
# ---------------------------------------------------------------------------

# Address None -> the encoder assigns unique synthetic heap ids, so the
# random trees below can never alias each other by accident.
_addresses = st.none()


def _heap_values():
    base = st.one_of(
        st.integers(-1000, 1000).map(lambda c: prim(c)),
        st.text(max_size=5).map(lambda c: prim(c, "str")),
        st.just(Value(AbstractType.NONE, None)),
    )

    def containers(children):
        return st.one_of(
            st.tuples(st.lists(children, max_size=3), _addresses).map(
                lambda pair: Value(
                    AbstractType.LIST, tuple(pair[0]),
                    location=Location.HEAP, address=pair[1],
                    language_type="list",
                )
            ),
            st.tuples(
                st.dictionaries(
                    st.text(alphabet="abc", min_size=1, max_size=3),
                    children,
                    max_size=3,
                ),
                _addresses,
            ).map(
                lambda pair: Value(
                    AbstractType.STRUCT, pair[0],
                    location=Location.HEAP, address=pair[1],
                    language_type="Obj",
                )
            ),
        )

    return st.recursive(base, containers, max_leaves=8)


def _normalized_render(value, depth=0):
    """Render with every REF chased, so PT's aggregate-behind-REF encoding
    compares equal to the original inline shape."""
    if depth > 50:
        return "..."
    kind = value.abstract_type
    if kind is AbstractType.REF:
        return _normalized_render(value.content, depth + 1)
    if kind is AbstractType.LIST:
        inner = ", ".join(_normalized_render(v, depth + 1) for v in value.content)
        return f"[{inner}]"
    if kind is AbstractType.STRUCT:
        inner = ", ".join(
            f".{name}={_normalized_render(v, depth + 1)}"
            for name, v in value.content.items()
        )
        return f"{{{inner}}}"
    return value.render()


@given(_heap_values())
@settings(max_examples=60, deadline=None)
def test_pt_encoding_round_trip_property(value):
    encoder = PTEncoder()
    encoded = encoder.encode(value)
    decoded = PTDecoder(encoder.heap).decode(encoded)
    assert _normalized_render(decoded) == _normalized_render(value)


def _tricky_values():
    """Leaves that exercise every historical round-trip asymmetry."""
    leaves = st.one_of(
        st.integers(-50, 50).map(lambda c: prim(c)),
        st.booleans().map(lambda c: prim(c, "bool")),
        st.binary(max_size=4).map(lambda c: prim(c, "bytes")),
        st.just(Value(AbstractType.NONE, None)),
        st.just(Value(AbstractType.INVALID, None)),
        st.just(
            Value(
                AbstractType.INVALID, None,
                location=Location.HEAP, address=900,
            )
        ),
        st.sampled_from([None, 3, 9]).map(
            lambda parent: _function("f(x)", parent)
        ),
    )

    def wrap(children):
        return st.one_of(
            children.map(lambda v: Value(AbstractType.REF, _heapify(v))),
            st.lists(children, max_size=3).map(
                lambda items: Value(
                    AbstractType.LIST, tuple(items),
                    location=Location.HEAP, language_type="list",
                )
            ),
        )

    return st.recursive(leaves, wrap, max_leaves=6)


def _function(signature, parent):
    value = Value(
        AbstractType.FUNCTION, signature,
        location=Location.HEAP, language_type="function",
    )
    if parent is not None:
        value.closure_parent = parent
    return value


def _heapify(value):
    if value.location is not Location.HEAP:
        value.location = Location.HEAP
    return value


@given(_tricky_values())
@settings(max_examples=80, deadline=None)
def test_pt_encoding_is_idempotent(value):
    """encode . decode . encode == encode, at the *encoding* level.

    Render-level equality (above) cannot see asymmetries that swap heap
    entries for inline forms or drop closure parents; comparing the
    re-encoded (value, heap) pair does.
    """
    first = PTEncoder()
    encoded = first.encode(value)
    decoded = PTDecoder(first.heap).decode(encoded)
    second = PTEncoder()
    re_encoded = second.encode(decoded)
    assert re_encoded == encoded
    assert second.heap == first.heap
