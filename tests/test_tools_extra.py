"""Tests for the HTML step player and the scope visualization."""

import base64
import os

import pytest

from repro.pytracker.tracker import PythonTracker
from repro.tools.html_report import build_step_player, record_execution_player
from repro.tools.scope_view import (
    ScopeViewTool,
    collect_bindings,
    render_scopes_svg,
    render_scopes_text,
)

SHADOWING_PY = """\
value = 10

def inner(value):
    local_only = value * 2
    return local_only

def outer():
    value = 20
    return inner(value)

result = outer()
"""

SHADOWING_C = """\
int value = 10;

int inner(int value) {
    int local_only = value * 2;
    return local_only;
}

int main(void) {
    int value = 20;
    int result = inner(value);
    return result;
}
"""


class TestStepPlayer:
    def test_bundles_images_into_html(self, write_program, tmp_path):
        from repro.tools.stepper import generate_diagrams

        program = write_program("p.py", "a = 1\nb = [a, 2]\n")
        images = generate_diagrams(program, str(tmp_path / "imgs"))
        output = str(tmp_path / "player.html")
        assert build_step_player(images, output, title="demo") == output
        page = open(output, encoding="utf-8").read()
        assert page.count("data:image/svg+xml;base64,") == len(images)
        assert "demo" in page
        assert "ArrowRight" in page  # keyboard navigation wired up
        # The embedded payload decodes back to the first SVG.
        first_b64 = page.split("data:image/svg+xml;base64,")[1].split('"')[0]
        decoded = base64.b64decode(first_b64).decode("utf-8")
        assert decoded.startswith("<?xml")

    def test_single_call_pipeline(self, write_program, tmp_path):
        program = write_program("p.py", "x = 1\ny = 2\n")
        output = record_execution_player(program, str(tmp_path / "out.html"))
        assert os.path.exists(output)

    def test_title_is_escaped(self, write_program, tmp_path):
        from repro.tools.stepper import generate_diagrams

        program = write_program("p.py", "x = 1\n")
        images = generate_diagrams(program, str(tmp_path / "imgs"))
        output = str(tmp_path / "p.html")
        build_step_player(images, output, title="<script>alert(1)</script>")
        page = open(output, encoding="utf-8").read()
        assert "<script>alert" not in page

    def test_no_images_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            build_step_player([], str(tmp_path / "never.html"))


@pytest.fixture
def paused_in_inner(write_program):
    tracker = PythonTracker()
    tracker.load_program(write_program("p.py", SHADOWING_PY))
    tracker.break_before_line(5)  # inside inner(), local_only assigned next
    tracker.start()
    tracker.resume()
    yield tracker
    tracker.terminate()


class TestScopeBindings:
    def test_innermost_binding_wins(self, paused_in_inner):
        bindings = collect_bindings(paused_in_inner)
        by_key = {(b.scope, b.name): b for b in bindings}
        assert by_key[("inner", "value")].visible
        assert not by_key[("outer", "value")].visible
        assert by_key[("outer", "value")].shadowed_by == "inner"
        assert not by_key[("<globals>", "value")].visible

    def test_values_rendered_per_scope(self, paused_in_inner):
        bindings = collect_bindings(paused_in_inner)
        values = {
            (b.scope, b.name): b.rendered
            for b in bindings
            if b.name == "value"
        }
        assert values[("inner", "value")] == "20"
        assert values[("outer", "value")] == "20"
        assert values[("<globals>", "value")] == "10"

    def test_unshadowed_global_visible(self, paused_in_inner):
        bindings = collect_bindings(paused_in_inner)
        result_rows = [b for b in bindings if b.name == "inner"]
        # the function object itself, bound globally and unshadowed
        assert any(b.visible for b in result_rows)

    def test_text_rendering(self, paused_in_inner):
        text = render_scopes_text(collect_bindings(paused_in_inner))
        assert "shadowed by inner" in text
        assert "visible" in text

    def test_svg_rendering_marks_shadowed(self, paused_in_inner):
        canvas = render_scopes_svg(collect_bindings(paused_in_inner))
        rendered = canvas.render()
        assert "#c0392b" in rendered  # the strike-through stroke
        assert "#eaf6ea" in rendered  # at least one visible row

    def test_same_lesson_for_c(self, write_program):
        from repro.gdbtracker.tracker import GDBTracker

        tracker = GDBTracker()
        tracker.load_program(write_program("p.c", SHADOWING_C))
        tracker.break_before_line(5)
        tracker.start()
        tracker.resume()
        bindings = collect_bindings(tracker)
        by_key = {(b.scope, b.name): b for b in bindings}
        assert by_key[("inner", "value")].visible
        assert not by_key[("<globals>", "value")].visible
        tracker.terminate()


class TestScopeViewTool:
    def test_generates_one_table_per_pause(self, write_program, output_dir):
        tool = ScopeViewTool(write_program("p.py", SHADOWING_PY), "inner")
        images = tool.run(output_dir)
        assert len(images) == 2  # entry + exit of inner()
        assert all(os.path.exists(path) for path in images)


RECURSION_PY = """\
def rec(n):
    x = n
    if n == 0:
        return 0
    return rec(n - 1)

rec(2)
"""


@pytest.fixture
def recorded_timeline(write_program):
    tracker = PythonTracker(capture_output=True)
    tracker.load_program(write_program("rec.py", RECURSION_PY))
    tracker.enable_recording()
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.step()
    timeline = tracker.timeline
    tracker.terminate()
    return timeline


class TestSnapshotConsumers:
    """The ported tools accept a StateSnapshot anywhere they took live state."""

    def test_draw_stack_from_snapshot(self, recorded_timeline):
        from repro.tools.stack_diagram import draw_stack

        deepest = max(recorded_timeline.snapshots(), key=lambda s: s.depth)
        canvas = draw_stack(deepest)
        rendered = canvas.render()
        assert "rec" in rendered

    def test_draw_stack_rejects_exit_snapshot(self, recorded_timeline):
        from repro.tools.stack_diagram import draw_stack

        final = recorded_timeline.snapshot(-1)
        assert final.frame is None
        with pytest.raises(ValueError, match="no frames"):
            draw_stack(final)

    def test_collect_bindings_from_snapshot(self, recorded_timeline):
        deepest = max(recorded_timeline.snapshots(), key=lambda s: s.depth)
        bindings = collect_bindings(deepest)
        by_key = {(b.scope, b.name): b for b in bindings}
        assert ("rec", "n") in by_key
        assert ("<globals>", "rec") in by_key

    def test_bindings_match_live_tracker(self, write_program):
        """Same bindings from the live pause and its recorded snapshot."""
        tracker = PythonTracker()
        tracker.load_program(write_program("s.py", SHADOWING_PY))
        tracker.break_before_line(4)
        tracker.enable_recording()
        tracker.start()
        tracker.resume()
        live = collect_bindings(tracker)
        recorded = collect_bindings(tracker.timeline.snapshot(-1))
        tracker.terminate()
        project = lambda bindings: sorted(
            (b.scope, b.name, b.rendered, b.visible) for b in bindings
        )
        assert project(live) == project(recorded)


class TestTimelineView:
    def test_scrubber_one_tick_per_snapshot(self, recorded_timeline):
        from repro.tools.timeline_view import draw_scrubber

        canvas = draw_scrubber(recorded_timeline)
        rendered = canvas.render()
        assert rendered.count("<rect") >= recorded_timeline.retained

    def test_selected_snapshot_is_highlighted(self, recorded_timeline):
        from repro.tools.timeline_view import draw_timeline_view

        index = recorded_timeline.start_index + 3
        rendered = draw_timeline_view(recorded_timeline, index).render()
        assert "#27ae60" in rendered  # the selection outline
        assert f"#{index}" in rendered

    def test_exit_snapshot_view(self, recorded_timeline):
        from repro.tools.timeline_view import draw_timeline_view

        rendered = draw_timeline_view(
            recorded_timeline, len(recorded_timeline) - 1
        ).render()
        assert "exited with code 0" in rendered

    def test_render_timeline_caps_images(self, recorded_timeline, output_dir):
        from repro.tools.timeline_view import render_timeline

        written = render_timeline(recorded_timeline, output_dir, max_images=4)
        assert len(written) == 4
        assert all(os.path.exists(path) for path in written)
