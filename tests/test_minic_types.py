"""Tests for the mini-C type system: sizes, layout, scalar encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic.ctypes import (
    ArrayType,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    IntType,
    LONG,
    PointerType,
    SHORT,
    StructType,
    UCHAR,
    UINT,
    ULONG,
    VOID,
    decode_scalar,
    encode_scalar,
)


class TestScalarSizes:
    def test_lp64_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert LONG.size == 8
        assert FLOAT.size == 4
        assert DOUBLE.size == 8
        assert PointerType(INT).size == 8

    def test_alignment_equals_size_for_scalars(self):
        for ctype in (CHAR, SHORT, INT, LONG, FLOAT, DOUBLE):
            assert ctype.align == ctype.size

    def test_type_names(self):
        assert str(PointerType(INT)) == "int*"
        assert str(PointerType(PointerType(CHAR))) == "char**"
        assert str(ArrayType(INT, 4)) == "int[4]"


class TestIntSemantics:
    def test_bounds(self):
        assert INT.bounds() == (-(2**31), 2**31 - 1)
        assert UCHAR.bounds() == (0, 255)

    def test_wrap_overflow(self):
        assert INT.wrap(2**31) == -(2**31)
        assert INT.wrap(-(2**31) - 1) == 2**31 - 1
        assert UCHAR.wrap(256) == 0
        assert UCHAR.wrap(-1) == 255

    def test_wrap_identity_in_range(self):
        assert INT.wrap(12345) == 12345
        assert CHAR.wrap(-5) == -5


class TestArrays:
    def test_array_size_and_align(self):
        array = ArrayType(INT, 10)
        assert array.size == 40
        assert array.align == 4

    def test_nested_arrays(self):
        matrix = ArrayType(ArrayType(INT, 3), 2)
        assert matrix.size == 24
        assert matrix.element.size == 12


class TestStructLayout:
    def test_padding_between_members(self):
        struct = StructType("s", [("c", CHAR), ("i", INT)])
        assert struct.field("c").offset == 0
        assert struct.field("i").offset == 4  # 3 padding bytes
        assert struct.size == 8
        assert struct.align == 4

    def test_tail_padding(self):
        struct = StructType("s", [("l", LONG), ("c", CHAR)])
        assert struct.size == 16  # 7 tail-padding bytes
        assert struct.align == 8

    def test_packed_like_layout_when_sorted(self):
        struct = StructType("s", [("a", CHAR), ("b", CHAR), ("c", SHORT)])
        assert struct.size == 4

    def test_nested_struct_alignment(self):
        inner = StructType("inner", [("x", LONG)])
        outer = StructType("outer", [("c", CHAR), ("in_", inner)])
        assert outer.field("in_").offset == 8
        assert outer.size == 16

    def test_unknown_field_raises(self):
        struct = StructType("s", [("x", INT)])
        with pytest.raises(KeyError):
            struct.field("y")

    def test_empty_struct(self):
        assert StructType("empty", []).size == 0


class TestScalarEncoding:
    def test_int_round_trip(self):
        raw = encode_scalar(INT, -123)
        assert len(raw) == 4
        assert decode_scalar(INT, raw) == -123

    def test_unsigned_round_trip(self):
        raw = encode_scalar(UINT, 0xDEADBEEF)
        assert decode_scalar(UINT, raw) == 0xDEADBEEF

    def test_overflow_wraps_on_encode(self):
        raw = encode_scalar(INT, 2**31)
        assert decode_scalar(INT, raw) == -(2**31)

    def test_double_round_trip(self):
        raw = encode_scalar(DOUBLE, 3.141592653589793)
        assert decode_scalar(DOUBLE, raw) == 3.141592653589793

    def test_float_loses_precision_but_decodes(self):
        raw = encode_scalar(FLOAT, 0.1)
        assert abs(decode_scalar(FLOAT, raw) - 0.1) < 1e-7

    def test_pointer_round_trip(self):
        pointer = PointerType(INT)
        raw = encode_scalar(pointer, 0x7FFF_0000)
        assert decode_scalar(pointer, raw) == 0x7FFF_0000

    def test_little_endian(self):
        assert encode_scalar(INT, 1) == b"\x01\x00\x00\x00"

    def test_aggregate_encode_rejected(self):
        with pytest.raises(TypeError):
            encode_scalar(ArrayType(INT, 2), 0)


# ---------------------------------------------------------------------------
# Property-based: wrap is idempotent and encode/decode invert for every
# integer type at any magnitude.
# ---------------------------------------------------------------------------

int_types = st.sampled_from([CHAR, UCHAR, SHORT, INT, UINT, LONG, ULONG])


@given(int_types, st.integers(min_value=-(2**80), max_value=2**80))
@settings(max_examples=200, deadline=None)
def test_wrap_idempotent_and_in_bounds(ctype, value):
    wrapped = ctype.wrap(value)
    low, high = ctype.bounds()
    assert low <= wrapped <= high
    assert ctype.wrap(wrapped) == wrapped


@given(int_types, st.integers(min_value=-(2**80), max_value=2**80))
@settings(max_examples=200, deadline=None)
def test_encode_decode_inverts_wrap(ctype, value):
    assert decode_scalar(ctype, encode_scalar(ctype, value)) == ctype.wrap(value)


@given(st.floats(allow_nan=False, allow_infinity=False))
@settings(max_examples=100, deadline=None)
def test_double_encoding_is_exact(value):
    assert decode_scalar(DOUBLE, encode_scalar(DOUBLE, value)) == value


@given(st.lists(st.tuples(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    st.sampled_from([CHAR, SHORT, INT, LONG, DOUBLE]),
), min_size=1, max_size=6, unique_by=lambda pair: pair[0]))
@settings(max_examples=100, deadline=None)
def test_struct_layout_invariants(members):
    struct = StructType("s", members)
    offsets = [struct.field(name) for name, _ in members]
    # Offsets are aligned, non-overlapping, monotonically increasing.
    previous_end = 0
    for field in offsets:
        assert field.offset % field.ctype.align == 0
        assert field.offset >= previous_end
        previous_end = field.offset + field.ctype.size
    assert struct.size >= previous_end
    assert struct.size % struct.align == 0
