"""The queryable trace store: index, spill, TimelineView, query grammar.

Covers the PR's tentpole pieces: incremental index maintenance from the
codec's own diff patches (and its parity with a scan-built index), the
``.tracedir/`` spill layout (eviction moves segments to disk; reads load
them back lazily), the unified :class:`TimelineView` query API over live
and reopened recordings, the query expression grammar, typed
:class:`TraceStoreError` on corruption, and the navigation re-homing
(``goto``/``backward_*`` as deprecated shims over the view).
"""

import json
import os
import warnings

import pytest

from repro.api import TimelineView, TraceStoreError, parse_query
from repro.core.errors import TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import AbstractType, Value, Variable
from repro.core.timeline import (
    EVENT_CALL,
    EVENT_RETURN,
    StateSnapshot,
    Timeline,
    load_timeline,
)
from repro.core.tracestore import (
    SegmentSpool,
    TraceIndex,
    TraceStore,
    changed_variable_ids,
    open_spooled_timeline,
)
from repro.pytracker import PythonTracker

PROGRAM = """\
def f(n):
    y = n * 2
    return y

x = 0
heap = []
for i in range(5):
    x = f(i)
    heap.append(i)
done = True
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(PROGRAM)
    return str(path)


def _record(program, **kwargs):
    """Step a program to completion with recording (and f tracked)."""
    tracker = PythonTracker()
    tracker.load_program(program)
    tracker.enable_recording(**kwargs)
    tracker.start()
    tracker.track_function("f")
    for _ in range(500):
        if tracker.get_exit_code() is not None:
            return tracker
        tracker.step()
    pytest.fail("inferior did not terminate")


# ---------------------------------------------------------------------------
# The inverted index
# ---------------------------------------------------------------------------


class TestTraceIndex:
    def test_record_time_index_matches_scan_built(self, program):
        """The incrementally-maintained index (observing the codec's own
        patches) must be identical to one built by scanning the stored
        recording — the guarantee that lets queries trust either."""
        tracker = _record(program, keyframe_interval=4)
        live = tracker._trace_index
        assert live is not None
        scan = TimelineView(tracker.timeline).ensure_index()
        assert live.to_dict() == scan.to_dict()
        tracker.terminate()

    def test_change_indices_plain_name_merges_scopes(self, program):
        tracker = _record(program, keyframe_interval=4)
        index = tracker._trace_index
        # 'y' exists only as a local of f; the plain name finds it.
        assert index.change_indices("y") == index.change_indices("f:y")
        assert index.change_indices("y")
        tracker.terminate()

    def test_call_records_pair_calls_with_returns(self, program):
        tracker = _record(program, keyframe_interval=4)
        records = tracker._trace_index.call_records("f")
        assert len(records) == 5
        for position, record in enumerate(records):
            assert record["call"] is not None
            assert record["return"] is not None
            assert record["call"] < record["return"]
            assert record["returned"] == str(position * 2)
        tracker.terminate()

    def test_reason_indices(self, program):
        tracker = _record(program, keyframe_interval=4)
        index = tracker._trace_index
        timeline = tracker.timeline
        for reason in ("call", "return"):
            for position in index.reason_indices(reason):
                snapshot = timeline.snapshot(position)
                assert snapshot.reason.type.value == reason
        tracker.terminate()

    def test_forget_rolls_back_the_last_observation(self):
        index = TraceIndex()
        tree_a = _snapshot_tree(line=1, variables={"x": 1})
        tree_b = _snapshot_tree(line=2, variables={"x": 2})
        index.observe(0, None, tree_a, None)
        before = json.loads(json.dumps(index.to_dict()))
        from repro.core.timeline import diff_tree

        index.observe(1, tree_a, tree_b, diff_tree(tree_a, tree_b))
        assert index.forget(1)
        after = index.to_dict()
        before["observed"] = after["observed"]  # high-water mark may stay
        assert after["changes"] == before["changes"]
        assert after["reasons"] == before["reasons"]

    def test_index_survives_serialization(self, program):
        tracker = _record(program, keyframe_interval=4)
        index = tracker._trace_index
        clone = TraceIndex.from_dict(
            json.loads(json.dumps(index.to_dict()))
        )
        assert clone.to_dict() == index.to_dict()
        assert clone.change_indices("x") == index.change_indices("x")
        tracker.terminate()


def _snapshot_tree(line, variables):
    return StateSnapshot(
        frame=None,
        globals={
            name: Variable(
                name=name,
                value=Value(
                    abstract_type=AbstractType.PRIMITIVE, content=value
                ),
                scope="global",
            )
            for name, value in variables.items()
        },
        line=line,
    ).to_dict()


class TestChangeExtraction:
    def test_first_snapshot_counts_all_visible_variables(self):
        tree = _snapshot_tree(line=1, variables={"x": 1, "y": 2})
        assert changed_variable_ids(None, tree, None) == {"x", "y"}

    def test_patch_names_only_the_changed_variable(self):
        from repro.core.timeline import diff_tree

        old = _snapshot_tree(line=1, variables={"x": 1, "y": 2})
        new = _snapshot_tree(line=2, variables={"x": 5, "y": 2})
        changed = changed_variable_ids(old, new, diff_tree(old, new))
        assert changed == {"x"}


# ---------------------------------------------------------------------------
# Spill parity: in-memory vs spilled-to-disk recordings answer alike
# ---------------------------------------------------------------------------


class TestSpillParity:
    def test_where_and_history_identical_after_spill(self, program, tmp_path):
        reference = _record(program, keyframe_interval=4)
        spilled = _record(
            program,
            keyframe_interval=4,
            max_snapshots=5,  # tiny: forces nearly everything to disk
            tracedir=str(tmp_path / "run.tracedir"),
        )
        assert spilled.timeline.start_index > 0  # eviction really happened
        assert spilled.timeline.first_index == 0  # ... but nothing was lost
        view_a = reference.timeline_view()
        view_b = spilled.timeline_view()
        for name in ("x", "heap", "y", "done"):
            assert [
                (event.index, event.value) for event in view_a.history(name)
            ] == [(event.index, event.value) for event in view_b.history(name)]
        for predicate in ("len(heap) > 3", "x >= 4", "x changed", "f() == 6"):
            assert view_a.where(predicate) == view_b.where(predicate)
        reference.terminate()
        spilled.terminate()

    def test_sealed_tracedir_reopens_with_identical_answers(
        self, program, tmp_path
    ):
        tracedir = str(tmp_path / "run.tracedir")
        tracker = _record(
            program, keyframe_interval=4, max_snapshots=5, tracedir=tracedir
        )
        live_history = [
            (event.index, event.value)
            for event in tracker.timeline_view().history("x")
        ]
        live_len = len(tracker.timeline)
        tracker.terminate()  # seals the store

        view = TimelineView.open(tracedir)
        assert len(view) == live_len
        assert view.first_index == 0
        # The record-time index was persisted in the manifest.
        assert view.index is not None
        assert [
            (event.index, event.value) for event in view.history("x")
        ] == live_history
        # Snapshots reconstruct lazily from the mmap'd segment files.
        assert view.at(0).line is not None
        assert view.at(-1).exit_code == 0

    def test_load_timeline_opens_a_tracedir(self, program, tmp_path):
        tracedir = str(tmp_path / "run.tracedir")
        tracker = _record(program, keyframe_interval=4, tracedir=tracedir)
        count = len(tracker.timeline)
        tracker.terminate()
        timeline = load_timeline(tracedir)
        assert len(timeline) == count
        assert timeline.snapshot(0).line is not None

    def test_goto_reaches_spilled_snapshots(self, program, tmp_path):
        tracker = _record(
            program,
            keyframe_interval=4,
            max_snapshots=5,
            tracedir=str(tmp_path / "run.tracedir"),
        )
        view = tracker.timeline_view()
        assert tracker.timeline.start_index > 0
        snapshot = view.goto(0)  # before the in-memory window
        assert snapshot.line is not None
        assert view.position == 0
        view.goto(-1)
        tracker.terminate()

    def test_eviction_without_spool_still_drops(self, program):
        tracker = _record(program, keyframe_interval=4, max_snapshots=5)
        timeline = tracker.timeline
        assert timeline.start_index > 0
        assert timeline.first_index == timeline.start_index
        with pytest.raises(TrackerError):
            tracker.timeline_view().goto(0)
        tracker.terminate()


# ---------------------------------------------------------------------------
# Corruption: typed errors, never stack traces
# ---------------------------------------------------------------------------


class TestCorruption:
    def _sealed_tracedir(self, program, tmp_path):
        tracedir = str(tmp_path / "run.tracedir")
        tracker = _record(
            program, keyframe_interval=4, max_snapshots=5, tracedir=tracedir
        )
        tracker.terminate()
        return tracedir

    def test_corrupt_manifest_raises_typed_error(self, program, tmp_path):
        tracedir = self._sealed_tracedir(program, tmp_path)
        with open(os.path.join(tracedir, "manifest.json"), "w") as handle:
            handle.write("{definitely not json")
        with pytest.raises(TraceStoreError):
            TimelineView.open(tracedir)

    def test_wrong_format_manifest_raises_typed_error(
        self, program, tmp_path
    ):
        tracedir = self._sealed_tracedir(program, tmp_path)
        with open(os.path.join(tracedir, "manifest.json"), "w") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(TraceStoreError):
            TimelineView.open(tracedir)

    def test_missing_directory_raises_typed_error(self, tmp_path):
        with pytest.raises(TraceStoreError):
            SegmentSpool.open(str(tmp_path / "nope.tracedir"))

    def test_missing_path_raises_typed_error(self, tmp_path):
        with pytest.raises(TraceStoreError):
            TimelineView.open(str(tmp_path / "nope.timeline.json"))

    def test_corrupt_segment_raises_typed_error(self, program, tmp_path):
        tracedir = self._sealed_tracedir(program, tmp_path)
        segment = sorted(
            name
            for name in os.listdir(tracedir)
            if name.startswith("segment-")
        )[0]
        with open(os.path.join(tracedir, segment), "w") as handle:
            handle.write("garbage")
        view = TimelineView.open(tracedir)  # manifest alone is fine (lazy)
        with pytest.raises(TraceStoreError):
            view.at(0)

    def test_cli_surfaces_error_exit_2(self, program, tmp_path, capsys):
        from repro.cli import main

        tracedir = self._sealed_tracedir(program, tmp_path)
        with open(os.path.join(tracedir, "manifest.json"), "w") as handle:
            handle.write("{broken")
        assert main(["timeline", "query", "--tracedir", tracedir, "x",
                     "changed"]) == 2
        assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# TimelineView queries
# ---------------------------------------------------------------------------


class TestTimelineView:
    def test_history_orders_change_events(self, program):
        tracker = _record(program, keyframe_interval=4)
        events = tracker.timeline_view().history("x")
        assert [event.value for event in events] == ["0", "2", "4", "6", "8"]
        assert events == sorted(events, key=lambda event: event.index)
        tracker.terminate()

    def test_last_change(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        last = view.last_change("x")
        assert last.value == "8"
        assert last.index == view.history("x")[-1].index
        assert view.last_change("no_such_variable") is None
        tracker.terminate()

    def test_calls_filter_by_return_value(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        assert len(view.calls("f")) == 5
        matching = view.calls("f", returned="4")
        assert len(matching) == 1
        assert matching[0].returned == "4"
        tracker.terminate()

    def test_where_callable_predicate(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        deep = view.where(lambda snapshot: snapshot.depth > 0)
        assert deep
        assert all(view.at(i).depth > 0 for i in deep)
        tracker.terminate()

    def test_changes_between(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        first_x = view.history("x")[0].index
        last_x = view.history("x")[-1].index
        diff = view.changes_between(first_x, last_x)
        assert diff["variables"]["x"]["old"] == "0"
        assert diff["variables"]["x"]["new"] == "8"
        tracker.terminate()

    def test_invalid_return_values_match_INVALID(self):
        timeline = Timeline(keyframe_interval=4)
        invalid = Value(abstract_type=AbstractType.INVALID, content=None)
        for position, event in enumerate([EVENT_CALL, EVENT_RETURN]):
            reason = PauseReason(
                type=(
                    PauseReasonType.CALL
                    if event == EVENT_CALL
                    else PauseReasonType.RETURN
                ),
                function="g",
                return_value=invalid if event == EVENT_RETURN else None,
                line=position + 1,
            )
            timeline.append(
                StateSnapshot(
                    frame=None,
                    globals={},
                    line=position + 1,
                    reason=reason,
                    event=event,
                    func_name="g",
                )
            )
        view = TimelineView(timeline)
        matches = view.query("g() == INVALID").matches
        assert len(matches) == 1
        assert matches[0]["returned"] == "<invalid>"

    def test_unbound_view_refuses_navigation(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = TimelineView(tracker.timeline)
        with pytest.raises(TrackerError):
            view.goto(0)
        tracker.terminate()

    def test_mi_timeline_query_command(self, tmp_path):
        from repro.subproc.server import PythonDebugServer

        path = tmp_path / "prog.py"
        path.write_text(PROGRAM)
        server = PythonDebugServer(str(path))
        try:
            assert server.handle("-timeline-start")[0].startswith("^done")
            server.handle("-exec-run")
            for _ in range(200):
                if "exited" in "".join(server.handle("-exec-step")):
                    break
            reply = server.handle('-timeline-query "x changed"')[0]
            assert reply.startswith("^done")
            payload = json.loads(reply[len("^done,"):])
            assert payload["kind"] == "history"
            assert [m["value"] for m in payload["matches"]] == [
                "0", "2", "4", "6", "8",
            ]
            bad = server.handle("-timeline-query nonsense ~~ 3")[0]
            assert bad.startswith("^error")
        finally:
            server.handle("-gdb-exit")


# ---------------------------------------------------------------------------
# The query grammar
# ---------------------------------------------------------------------------


class TestQueryGrammar:
    def test_parse_forms(self):
        assert parse_query("x changed").kind == "changed"
        assert parse_query("f() == INVALID").kind == "calls"
        assert parse_query("len(heap) > 100").kind == "len"
        assert parse_query("x >= 7").kind == "var"
        query = parse_query("f:y != 'abc'")
        assert query.kind == "var"
        assert query.name == "f:y"

    def test_parse_rejects_nonsense_with_typed_error(self):
        for text in ("", "x", "f(", "x ~~ 3", "== 3"):
            with pytest.raises(TraceStoreError):
                parse_query(text)

    def test_value_predicates(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        geq = view.where("x >= 4")
        assert geq
        # Matches start exactly where history says x first reached 4,
        # and the complementary predicate is disjoint ...
        threshold = next(
            event.index
            for event in view.history("x")
            if int(event.value) >= 4
        )
        assert min(geq) >= threshold
        assert set(geq).isdisjoint(view.where("x < 4"))
        # ... and string comparison handles quotes either way.
        assert view.where("done == True") == view.where("done == 'True'")
        tracker.terminate()


# ---------------------------------------------------------------------------
# Navigation re-homing: deprecation shims over the view
# ---------------------------------------------------------------------------


class TestDeprecatedNavigation:
    def test_tracker_goto_and_backward_warn_but_work(self, program):
        tracker = _record(program, keyframe_interval=4)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tracker.goto(2)
            tracker.backward_step()
        messages = [str(warning.message) for warning in caught]
        assert any("timeline_view" in message for message in messages)
        assert len([
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
        ]) == 2
        assert tracker._timeline_position() == 1
        tracker.terminate()

    def test_view_navigation_does_not_warn(self, program):
        tracker = _record(program, keyframe_interval=4)
        view = tracker.timeline_view()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            view.goto(2)
            view.backward_step()
            view.backward_resume()
        assert caught == []
        tracker.terminate()
