"""Hostile inferiors: every case ends paused or terminated, never hung.

The robustness contract of the tracker API is that a control call
*returns* — with the inferior paused or terminated — no matter what the
inferior does: exit behind the tracker's back, tamper with the tracing
machinery, recurse to death, allocate without bound, or spin forever.
This suite throws each of those at both Python backends:

- ``python`` — the in-process settrace tracker, which must contain what
  is containable in-process (tampering, recursion, instant allocation
  failure) and interrupt what is not (spinning);
- ``python-subproc`` — the subprocess-isolated tracker, which must
  additionally survive what kills a whole interpreter (``os._exit``,
  resource blow-ups under ``setrlimit`` caps).

A hang is the one unacceptable outcome; the per-test timeout is the
tripwire, and every control loop is bounded.
"""

import pytest

from repro.core.errors import TrackerError
from repro.core.pause import PauseReasonType
from repro.pytracker.tracker import PythonTracker
from repro.subproc.limits import XCPU_EXIT_CODE, ResourceLimits
from repro.subproc.tracker import SubprocPythonTracker

BACKENDS = ["python", "python-subproc"]


def make_tracker(backend, **kwargs):
    if backend == "python":
        kwargs.pop("resource_limits", None)
        return PythonTracker(capture_output=True, **kwargs)
    return SubprocPythonTracker(**kwargs)


def run_to_exit(tracker, max_pauses=200):
    tracker.start()
    for _ in range(max_pauses):
        if tracker.get_exit_code() is not None:
            return tracker
        tracker.resume()
    pytest.fail("inferior did not terminate within the pause budget")


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestExitsBehindTheTrackersBack:
    def test_sys_exit_is_a_clean_termination(self, backend, write_program):
        tracker = make_tracker(backend)
        tracker.load_program(
            write_program("prog.py", "import sys\nx = 1\nsys.exit(3)\n")
        )
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 3
        assert tracker.pause_reason.type is PauseReasonType.EXIT
        tracker.terminate()

    def test_unhandled_error_terminates_with_code_one(
        self, backend, write_program
    ):
        tracker = make_tracker(backend)
        tracker.load_program(
            write_program("prog.py", "x = 1\nraise RuntimeError('hostile')\n")
        )
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 1
        tracker.terminate()

    def test_os_exit_only_kills_the_child(self, write_program):
        """``os._exit`` skips atexit, finally blocks and the tracing
        teardown — in-process it would take the tool down with it; the
        subprocess backend reports it as the inferior's death."""
        tracker = make_tracker("python-subproc")
        tracker.load_program(
            write_program("prog.py", "import os\nx = 1\nos._exit(7)\n")
        )
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 7
        assert tracker.pause_reason.type is PauseReasonType.EXIT
        kinds = [e.kind for e in tracker.drain_supervision_events()]
        assert "inferior-process-died" in kinds
        # dead means dead: further control calls are typed errors
        with pytest.raises(TrackerError):
            tracker.resume()
        tracker.terminate()
        tracker.terminate()  # idempotent


TAMPER_PROGRAM = """\
import sys
sys.settrace(None)
for i in range(5):
    x = i
y = "done"
z = 1
"""


class TestSettraceTampering:
    def test_breakpoints_survive_settrace_none(self, backend, write_program):
        tracker = make_tracker(backend)
        tracker.load_program(write_program("prog.py", TAMPER_PROGRAM))
        tracker.break_before_line(5)
        tracker.start()
        hits = 0
        for _ in range(50):
            if tracker.get_exit_code() is not None:
                break
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.BREAKPOINT:
                hits += 1
        # the tamper guard re-armed tracing: the breakpoint still fired
        assert hits == 1
        assert tracker.get_stats().settrace_tamperings >= 1
        tracker.terminate()

    def test_watch_survives_settrace_none(self, backend, write_program):
        tracker = make_tracker(backend)
        tracker.load_program(write_program("prog.py", TAMPER_PROGRAM))
        tracker.watch("y")
        tracker.start()
        hits = []
        for _ in range(50):
            if tracker.get_exit_code() is not None:
                break
            tracker.resume()
            reason = tracker.pause_reason
            if reason.type is PauseReasonType.WATCH:
                hits.append((reason.variable, reason.new_value))
        assert ("y", "'done'") in hits
        tracker.terminate()


class TestResourceBombs:
    def test_deep_recursion_is_a_clean_exit(self, backend, write_program):
        source = "def f():\n    return f()\nf()\n"
        tracker = make_tracker(backend)
        tracker.load_program(write_program("prog.py", source))
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 1  # RecursionError, unhandled
        tracker.terminate()

    def test_instant_memory_bomb_is_contained(self, backend, write_program):
        # One impossible allocation: raises MemoryError immediately on
        # both backends without actually consuming the memory.
        source = "x = [0] * (10 ** 12)\n"
        tracker = make_tracker(backend)
        tracker.load_program(write_program("prog.py", source))
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 1
        tracker.terminate()

    def test_incremental_memory_bomb_hits_the_rlimit(self, write_program):
        """A gradual allocator would genuinely consume the tool's memory
        in-process; under RLIMIT_AS the child fails cleanly instead."""
        source = (
            "x = []\n"
            "while True:\n"
            "    x.append('a' * (1 << 20))\n"
        )
        tracker = make_tracker(
            "python-subproc",
            resource_limits=ResourceLimits(address_space=512 * 1024 * 1024),
        )
        tracker.load_program(write_program("prog.py", source))
        run_to_exit(tracker, max_pauses=20)
        # MemoryError inside the child (clean exit 1) or, if the
        # allocator aborted outright, the child's death code — terminal
        # either way, and the tool process is untouched.
        assert tracker.get_exit_code() is not None
        tracker.terminate()

    def test_cpu_spin_dies_at_the_cpu_limit(self, write_program):
        tracker = make_tracker(
            "python-subproc",
            resource_limits=ResourceLimits(cpu_seconds=1),
        )
        tracker.load_program(
            write_program("prog.py", "while True:\n    pass\n")
        )
        run_to_exit(tracker, max_pauses=20)
        assert tracker.get_exit_code() == XCPU_EXIT_CODE
        tracker.terminate()

    def test_cpu_spin_is_interruptible_by_deadline(
        self, backend, write_program
    ):
        """Without rlimits, the deadline path must still win: resume on a
        spinning inferior returns within ~2x the timeout, paused."""
        tracker = make_tracker(backend)
        tracker.load_program(
            write_program("prog.py", "while True:\n    pass\n")
        )
        tracker.start()
        tracker.resume(timeout=0.5)
        assert tracker.get_exit_code() is None
        assert tracker.pause_reason.type is PauseReasonType.INTERRUPT
        tracker.terminate()


class TestOutputFlood:
    def test_output_flood_is_bounded_in_process(self, write_program):
        source = (
            "for i in range(2000):\n"
            "    print('x' * 100)\n"
        )
        tracker = PythonTracker(capture_output=True, output_limit=10_000)
        tracker.load_program(write_program("prog.py", source))
        run_to_exit(tracker)
        output = tracker.get_output()
        assert len(output) <= 10_000
        assert tracker.get_stats().output_chars_dropped > 0
        # the newest output is what survives
        assert output.endswith("x" * 100 + "\n")
        tracker.terminate()

    def test_output_flood_does_not_wedge_the_subproc_pipe(
        self, write_program
    ):
        source = (
            "for i in range(2000):\n"
            "    print('x' * 100)\n"
        )
        tracker = make_tracker("python-subproc")
        tracker.load_program(write_program("prog.py", source))
        run_to_exit(tracker)
        assert tracker.get_exit_code() == 0
        assert tracker.get_output().endswith("x" * 100 + "\n")
        tracker.terminate()
