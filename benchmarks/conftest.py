"""Shared benchmark fixtures: workload programs from the paper's figures."""

import pytest


@pytest.fixture
def write_program(tmp_path):
    def _write(name: str, source: str) -> str:
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)

    return _write


@pytest.fixture
def output_dir(tmp_path):
    path = tmp_path / "out"
    path.mkdir()
    return str(path)


def once(benchmark, function, *args, **kwargs):
    """Run an end-to-end scenario exactly once under the benchmark clock.

    The figure-generation scenarios are whole-program executions; repeating
    them hundreds of times adds nothing, so each is timed as a single
    (round=1, iteration=1) pedantic run.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
