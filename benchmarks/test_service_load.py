"""Load benchmarks for the multiplexing tracker service.

Two claims are measured and guarded:

1. **Warm beats cold.** Opening a session against the warm pool is one
   ``-file-exec-and-symbols`` round trip into a pre-forked interpreter;
   a cold open pays fork + Python boot + tracker import. The pool must
   keep warm opens at least 3x faster, or it is not earning its memory.

2. **Multiplexing holds up under concurrency.** With 8 sessions driving
   hostile-ish inferiors (each control call makes the inferior sleep and
   print — work that *waits* rather than burns CPU, so the measurement is
   honest on single-core runners), the p99 control-call latency must stay
   within 3x the single-session p50. That is the event-loop dividend: 8
   inferiors mid-``resume`` cost one service thread, and a session's
   latency is dominated by its own inferior, not by its neighbors.

3. **Resurrection is cheap enough to be transparent.** When a session's
   child is SIGKILLed mid-run, the next command resurrects it: acquire a
   replacement from the pool, re-apply state, replay the manifest, retry.
   Getting back to a *ready, paused-at-the-same-place* session must cost
   at most 3x what reaching that state cost on a healthy warm session —
   otherwise "crash-only" is a euphemism for "slow path".

All are asserted (regression guards), and the measured numbers are
printed for the benchmark table / CI artifact.
"""

import asyncio
import os
import signal
import statistics

from repro.service import ServiceConfig, SessionManager, TrackerService, WarmPool
from repro.service.client import ServiceClient

#: Each loop iteration sleeps ~20ms and prints — a control call's latency
#: is dominated by inferior *waiting*, which concurrent sessions overlap.
#: The sleep is deliberately generous relative to the per-call CPU cost
#: (tracing + MI framing, ~1ms) so the guard measures multiplexing, not
#: the core count of the runner.
SLEEPY_PY = """\
import time
i = 0
while True:
    time.sleep(0.02)
    print("tick", i)
    i = i + 1
"""


def run(coroutine):
    return asyncio.run(coroutine)


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def test_warm_session_open_at_least_3x_faster_than_cold(
    benchmark, write_program
):
    """Session open against the pool vs a full cold child boot."""
    path = write_program("prog.py", SLEEPY_PY)
    rounds = 3

    async def measure():
        loop = asyncio.get_event_loop()

        async def time_open(manager):
            begin = loop.time()
            session = await manager.open(path)
            elapsed = loop.time() - begin
            await manager.close_session(session)
            return elapsed

        cold_pool = WarmPool(size=0)  # warming disabled: every open forks
        cold_manager = SessionManager(cold_pool)
        await cold_manager.start()
        try:
            cold = [await time_open(cold_manager) for _ in range(rounds)]
        finally:
            await cold_manager.close()

        warm_pool = WarmPool(size=2)
        warm_manager = SessionManager(warm_pool)
        await warm_manager.start()  # pool fill paid here, off the clock
        try:
            warm = [await time_open(warm_manager) for _ in range(rounds)]
        finally:
            await warm_manager.close()
        return statistics.median(cold), statistics.median(warm)

    cold, warm = benchmark.pedantic(
        lambda: run(measure()), rounds=1, iterations=1
    )
    factor = cold / warm if warm else float("inf")
    print(
        f"\nsession open: cold {cold * 1000:.1f}ms, "
        f"warm {warm * 1000:.1f}ms, {factor:.1f}x faster warm"
    )
    assert factor >= 3.0


def test_eight_session_p99_within_3x_single_session_p50(
    benchmark, write_program
):
    """Control-call latency under 8-way concurrency vs a lone session."""
    path = write_program("prog.py", SLEEPY_PY)
    calls_per_session = 20

    async def drive(client):
        """One session: start, then time each resume-to-breakpoint."""
        loop = asyncio.get_event_loop()
        tracker = await client.open_tracker(path)
        await tracker.break_before_line(4)
        await tracker.start()
        latencies = []
        for _ in range(calls_per_session):
            begin = loop.time()
            stop = await tracker.resume()
            latencies.append(loop.time() - begin)
            assert stop["reason"] == "breakpoint-hit"
        await tracker.close()
        return latencies

    async def measure():
        service = TrackerService(
            ServiceConfig(pool_size=8, max_sessions=8, port=0)
        )
        await service.start()
        try:
            host, port = service.address
            async with await ServiceClient.connect(host, port) as client:
                single = await drive(client)
                many = await asyncio.gather(
                    *(drive(client) for _ in range(8))
                )
        finally:
            await service.close()
        concurrent = [sample for session in many for sample in session]
        return single, concurrent

    single, concurrent = benchmark.pedantic(
        lambda: run(measure()), rounds=1, iterations=1
    )
    p50_single = percentile(single, 0.50)
    p50_concurrent = percentile(concurrent, 0.50)
    p99_concurrent = percentile(concurrent, 0.99)
    factor = p99_concurrent / p50_single
    print(
        f"\ncontrol-call latency: single p50 {p50_single * 1000:.1f}ms, "
        f"8-way p50 {p50_concurrent * 1000:.1f}ms, "
        f"8-way p99 {p99_concurrent * 1000:.1f}ms "
        f"({factor:.1f}x the single p50)"
    )
    assert factor <= 3.0


def test_resurrection_within_3x_of_warm_session_ready(
    benchmark, write_program
):
    """Crash recovery vs the healthy path, same destination state.

    "Ready" = session open, breakpoint installed, inferior paused at its
    first stop. The warm path reaches it through the pool; the resurrect
    path reaches it again after a SIGKILL — replacement child, manifest
    replay (breakpoint + run), retried command — and must stay within 3x.
    """
    path = write_program("prog.py", SLEEPY_PY)
    rounds = 3

    async def measure():
        loop = asyncio.get_event_loop()
        pool = WarmPool(size=2)
        manager = SessionManager(pool, max_sessions=4)
        await manager.start()
        try:

            async def make_ready(session):
                await session.run_command("-break-insert 4")
                await session.run_command("-exec-run")

            warm = []
            for _ in range(rounds):
                begin = loop.time()
                session = await manager.open(path)
                await make_ready(session)
                warm.append(loop.time() - begin)
                await manager.close_session(session)

            resurrect = []
            for _ in range(rounds):
                session = await manager.open(path)
                await make_ready(session)
                for _ in range(200):  # a warm replacement must be parked
                    if pool._idle:
                        break
                    await asyncio.sleep(0.05)
                os.kill(session.child.pid, signal.SIGKILL)
                await session.child.transport._process.wait()
                begin = loop.time()
                records = await session.run_command("-exec-step")
                resurrect.append(loop.time() - begin)
                assert any("session-resurrected" in r for r in records)
                await manager.close_session(session)
            return statistics.median(warm), statistics.median(resurrect)
        finally:
            await manager.close()

    warm, resurrect = benchmark.pedantic(
        lambda: run(measure()), rounds=1, iterations=1
    )
    factor = resurrect / warm if warm else float("inf")
    print(
        f"\nready-state latency: warm open {warm * 1000:.1f}ms, "
        f"resurrection {resurrect * 1000:.1f}ms ({factor:.1f}x warm)"
    )
    assert factor <= 3.0
