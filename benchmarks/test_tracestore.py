"""Trace-store guards: index speedup, maintenance overhead, CLI acceptance.

Three promises from the queryable-trace-store issue, measured honestly on
a ~10k-pause recording of a loop workload:

- ``history("x")`` answered from the record-time inverted index must beat
  a naive full-scan (reconstruct every snapshot, render, compare) by at
  least 10x — the whole point of maintaining the index while recording.
- Maintaining that index *during* recording must cost at most 1.3x a
  plain recording (min-of-2 runs per side): observation rides on the
  delta patches the codec already computes, so it prices one dict merge
  per pause, not a second diff.
- The CLI must answer the issue's three acceptance queries ("when did x
  last change?", "which calls of f returned INVALID?", ``len(...) > N``)
  against a recording that spilled to a ``.tracedir/`` on disk.

CI runs these as guarded steps emitting ``--benchmark-json`` artifacts
per matrix version.
"""

import os
import time

import pytest

from repro.pytracker import PythonTracker

# ~8 pauses per iteration (loop body + tracked call/return of f), so
# 1250 iterations give a recording comfortably past 10k pauses.
BIG_ITERATIONS = 1250
MEDIUM_ITERATIONS = 300

WORKLOAD = """\
def f(n):
    y = n % 9
    return y

x = 0
probe = 0
heap = []
for i in range({iterations}):
    probe = f(i)
    heap.append(probe)
    if len(heap) >= 12:
        heap.clear()
        x = i
done = True
"""


def _record(path, **kwargs):
    """Step a workload to completion with recording; returns the tracker."""
    tracker = PythonTracker()
    tracker.load_program(path)
    tracker.enable_recording(keyframe_interval=16, **kwargs)
    tracker.start()
    tracker.track_function("f")
    while tracker.get_exit_code() is None:
        tracker.step()
    return tracker


@pytest.fixture(scope="module")
def big_recording(tmp_path_factory):
    """One shared ~10k-pause in-memory recording with a record-time index."""
    path = tmp_path_factory.mktemp("tracestore") / "big.py"
    path.write_text(WORKLOAD.format(iterations=BIG_ITERATIONS))
    tracker = _record(str(path))
    yield tracker
    tracker.terminate()


def _naive_history(view, name):
    """The full scan the index replaces: reconstruct every snapshot,
    render the variable, record each change."""
    from repro.core.tracestore import _render_value_tree_from_value

    changes = []
    previous = object()
    for position in range(view.first_index, view.last_index + 1):
        variable = view.at(position).lookup(name)
        rendered = (
            _render_value_tree_from_value(variable.value)
            if variable is not None
            else None
        )
        if rendered != previous:
            changes.append((position, rendered))
            previous = rendered
    return changes


def test_indexed_history_10x_faster_than_scan(benchmark, big_recording):
    """ISSUE guard: indexed ``history("x")`` on a 10k-pause recording must
    be at least 10x faster than the naive full scan."""
    view = big_recording.timeline_view()
    assert len(view) >= 10_000
    assert view.index is not None  # built at record time, not on demand

    def measure():
        start = time.perf_counter()
        indexed = view.history("x")
        indexed_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = _naive_history(view, "x")
        naive_seconds = time.perf_counter() - start
        return indexed, naive, indexed_seconds, naive_seconds

    indexed, naive, indexed_seconds, naive_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # Same answer first: the speedup would be meaningless otherwise.
    # (The naive scan counts the pre-assignment None as a "change"; the
    # index counts a variable from its first visible snapshot.)
    assert [
        (event.index, event.value) for event in indexed
    ] == [(position, value) for position, value in naive if value is not None]
    factor = naive_seconds / indexed_seconds
    print(
        f"\nhistory('x') over {len(view):,} pauses: indexed "
        f"{indexed_seconds * 1e3:.1f} ms vs naive scan "
        f"{naive_seconds * 1e3:.1f} ms -> {factor:.0f}x (must be >= 10x)"
    )
    assert factor >= 10.0


def test_index_maintenance_within_1p3x(benchmark, write_program):
    """ISSUE guard: record-time index maintenance must cost at most 1.3x
    a plain recording (min of 2 runs per side)."""
    path = write_program(
        "medium.py", WORKLOAD.format(iterations=MEDIUM_ITERATIONS)
    )

    def timed(index):
        start = time.perf_counter()
        tracker = _record(path, index=index)
        elapsed = time.perf_counter() - start
        tracker.terminate()
        return elapsed

    timed(False)  # warm-up: imports, code objects, caches

    def measure():
        plain = min(timed(False) for _ in range(2))
        indexed = min(timed(True) for _ in range(2))
        return plain, indexed

    plain, indexed = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = indexed / plain
    print(
        f"\nrecording plain {plain * 1e3:.0f} ms vs with index maintenance "
        f"{indexed * 1e3:.0f} ms -> {factor:.2f}x (must stay within 1.3x)"
    )
    assert factor <= 1.3


def test_cli_queries_answer_on_spilled_recording(
    benchmark, tmp_path, capsys
):
    """ISSUE acceptance: ``python -m repro timeline query`` answers the
    three acceptance queries on a 10k-pause recording that spilled to
    disk (tiny in-memory window, everything else in ``.tracedir/``)."""
    from repro.cli import main

    program = tmp_path / "big.py"
    program.write_text(WORKLOAD.format(iterations=BIG_ITERATIONS))
    tracedir = str(tmp_path / "big.tracedir")
    tracker = _record(
        str(program), max_snapshots=256, tracedir=tracedir
    )
    total = len(tracker.timeline)
    assert total >= 10_000
    assert tracker.timeline.start_index > 0  # the window really spilled
    tracker.terminate()  # seals the store
    segments = [
        name for name in os.listdir(tracedir) if name.startswith("segment-")
    ]
    assert len(segments) > 1
    capsys.readouterr()

    queries = ["x changed", "f() == INVALID", "len(heap) > 5"]

    def run_queries():
        outputs = {}
        for text in queries:
            assert main(
                ["timeline", "query", "--tracedir", tracedir, text]
            ) == 0
            outputs[text] = capsys.readouterr().out
        return outputs

    outputs = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    # "when did x last change?" — the history answer ends at its last hit.
    history = outputs["x changed"]
    assert "matches for: x changed" in history
    assert "x =" in history
    # "which calls of f returned INVALID?" — answered (none on a Python
    # recording, where no value renders <invalid>), not an error.
    assert "0 matches for: f() == INVALID" in outputs["f() == INVALID"]
    # The len() predicate stream-scans the spilled segments.
    length = outputs["len(heap) > 5"]
    assert "matches for: len(heap) > 5" in length
    assert not length.startswith("0 matches")
    with capsys.disabled():
        print(
            f"\nCLI answered {len(queries)} acceptance queries on a "
            f"{total:,}-pause spilled recording ({len(segments)} segments)"
        )
