"""§II-C2 performance note — the cost of tracker-based control.

The paper is explicit about the design trade-off: because watchpoints are
checked before every line, even ``resume`` single-steps internally, which
"slows the execution down a lot" but "is not critical for the pedagogical
context". These benches quantify that honestly:

- native execution vs. Python-tracker resume (with and without a watch);
- MI round-trip latency of the GDB-style tracker (one command over the
  subprocess pipe), the cost every control/inspection call pays;
- the engine regression guard: per-event dispatch cost must stay flat as
  the number of installed (non-matching) breakpoints grows, because the
  ControlPointEngine answers the common no-hit case with one indexed
  lookup instead of a scan over every breakpoint.
"""

import statistics
import time

import pytest

from repro.gdbtracker.tracker import GDBTracker
from repro.pytracker.tracker import PythonTracker

LOOP_PROGRAM = """\
total = 0
for i in range(2000):
    total += i
final = total
"""


def run_native(path):
    with open(path, encoding="utf-8") as source:
        code = compile(source.read(), path, "exec")
    exec(code, {"__name__": "__main__"})


def run_tracked(path, watch=None):
    tracker = PythonTracker()
    tracker.load_program(path)
    if watch is not None:
        tracker.watch(watch)
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.resume()
    tracker.terminate()


def test_native_baseline(benchmark, write_program):
    path = write_program("loop.py", LOOP_PROGRAM)
    benchmark(run_native, path)


def test_tracked_resume_overhead(benchmark, write_program):
    path = write_program("loop.py", LOOP_PROGRAM)
    benchmark.pedantic(run_tracked, args=(path,), rounds=3, iterations=1)


def test_tracked_resume_with_watch(benchmark, write_program):
    path = write_program("loop.py", LOOP_PROGRAM)
    benchmark.pedantic(
        run_tracked, args=(path, "total"), rounds=3, iterations=1
    )


def test_slowdown_factor_reported(benchmark, write_program):
    """The headline number: tracked / native wall-clock ratio."""
    path = write_program("loop.py", LOOP_PROGRAM)

    def measure():
        start = time.perf_counter()
        run_native(path)
        native = time.perf_counter() - start
        start = time.perf_counter()
        run_tracked(path, watch="total")
        tracked = time.perf_counter() - start
        return native, tracked

    native, tracked = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = tracked / native
    print(
        f"\nnative {native * 1e3:.2f} ms vs tracked-with-watch "
        f"{tracked * 1e3:.2f} ms -> {factor:.0f}x slowdown "
        "(the paper's acknowledged cost of per-line watch checks)"
    )
    # Shape check, not a precise number: control is orders of magnitude
    # slower than native execution, exactly as the paper warns.
    assert factor > 10


GUARD_PROGRAM = """\
total = 0
for i in range(5000):
    total += i
final = total
"""


def _resume_seconds(path, breakpoints, tracker_class=PythonTracker):
    """Wall-clock of one resume-to-exit run with N non-matching line bps."""
    tracker = tracker_class()
    tracker.load_program(path)
    for index in range(breakpoints):
        tracker.break_before_line(100000 + index)  # never hit
    tracker.start()
    start = time.perf_counter()
    while tracker.get_exit_code() is None:
        tracker.resume()
    elapsed = time.perf_counter() - start
    tracker.terminate()
    return elapsed


def test_dispatch_flat_in_breakpoint_count(benchmark, write_program):
    """Engine regression guard: 200 installed breakpoints must not scale
    per-event cost.

    The seed trackers scanned every breakpoint on every line event, so
    cost grew linearly with N; the ControlPointEngine's frozenset
    membership test makes the no-hit case O(1). Runs are interleaved and
    medianed so clock drift hits both sides equally.
    """
    path = write_program("guard.py", GUARD_PROGRAM)
    _resume_seconds(path, 1)  # warm-up: imports, code objects, caches

    def measure():
        few, many = [], []
        for _ in range(5):
            few.append(_resume_seconds(path, 1))
            many.append(_resume_seconds(path, 200))
        return statistics.median(few), statistics.median(many)

    few, many = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = many / few
    print(
        f"\nresume with 1 bp {few * 1e3:.1f} ms vs 200 bps "
        f"{many * 1e3:.1f} ms -> {factor:.2f}x "
        "(indexed dispatch: must stay within 2x)"
    )
    assert factor <= 2.0


class _SingleThreadTracker(PythonTracker):
    """Pre-thread-support dispatch, resurrected as the overhead baseline.

    This is the ``_trace`` body exactly as it stood before the thread
    dimension was added: no all-stop park check, no thread-registration
    probe, no per-thread kill routing. A single-threaded inferior never
    exercises those branches, so the current tracker is allowed only
    their branch-predict cost — the guard below bounds it.
    """

    def _trace(self, frame, event, arg):
        if self._killed:
            from repro.pytracker.tracker import _KillInferior

            raise _KillInferior()
        if not self._is_inferior_frame(frame):
            return None
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return self._trace
        if event == "call":
            self._handle_call(frame)
            if self.engine.can_skip_frame(
                frame.f_code.co_filename, frame.f_code.co_name
            ):
                return None
        elif event == "line":
            self._handle_line(frame)
        elif event == "return":
            self._handle_return(frame, arg)
        return self._trace


def test_thread_dispatch_overhead_within_1_3x(benchmark, write_program):
    """ISSUE guard: the thread-aware ``_trace`` must cost a single-threaded
    inferior at most 1.3x the pre-thread dispatch. The added work on the
    hot path is three attribute checks (`_finished`, `_pause_active`,
    `_interrupt_requested`) and a registration probe that short-circuits
    while only one thread has ever traced — constant, branch-predictable
    overhead, not a multiplier. Runs are interleaved and medianed so clock
    drift hits both sides equally."""
    path = write_program("guard.py", GUARD_PROGRAM)
    _resume_seconds(path, 1)  # warm-up: imports, code objects, caches
    _resume_seconds(path, 1, tracker_class=_SingleThreadTracker)

    def measure():
        baseline, current = [], []
        for _ in range(5):
            baseline.append(
                _resume_seconds(path, 1, tracker_class=_SingleThreadTracker)
            )
            current.append(_resume_seconds(path, 1))
        return statistics.median(baseline), statistics.median(current)

    baseline, current = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = current / baseline
    print(
        f"\nresume single-thread baseline {baseline * 1e3:.1f} ms vs "
        f"thread-aware {current * 1e3:.1f} ms -> {factor:.2f}x "
        "(must stay within 1.3x)"
    )
    assert factor <= 1.3


# ---------------------------------------------------------------------------
# settrace vs sys.monitoring (python-mon) sweep
# ---------------------------------------------------------------------------


def test_monitoring_vs_settrace_sweep(benchmark, write_program):
    """The python-mon speedup, measured and guarded.

    Three resume-to-exit scenarios on the same module-level loop:

    - ``no-bp``: nothing installed. settrace still pays a per-line
      callback in the module frame (the frame-skip fast path only applies
      at frame *entry*); monitoring turns LINE events off entirely.
    - ``1-bp`` / ``200-cold-bp``: never-hit line breakpoints keep LINE
      events enabled, but monitoring DISABLEs each location after its
      first fire while settrace keeps paying per line.

    The regression guard pins the headline scenario: monitoring must run
    the no-breakpoint resume in at most half the settrace wall time.
    CI emits this sweep as ``--benchmark-json`` per matrix version and a
    guard step fails the build if the bound regresses.
    """
    from repro.pytracker.monitoring import (
        HAVE_MONITORING,
        SKIP_REASON,
        MonitoringTracker,
    )

    if not HAVE_MONITORING:
        pytest.skip(SKIP_REASON)

    path = write_program("sweep.py", GUARD_PROGRAM)
    scenarios = [("no-bp", 0), ("1-bp", 1), ("200-cold-bp", 200)]
    # Warm-up both backends: imports, code objects, caches.
    _resume_seconds(path, 0)
    _resume_seconds(path, 0, tracker_class=MonitoringTracker)

    def measure():
        ratios = {}
        for name, breakpoints in scenarios:
            settrace, monitoring = [], []
            for _ in range(5):
                settrace.append(_resume_seconds(path, breakpoints))
                monitoring.append(
                    _resume_seconds(
                        path, breakpoints, tracker_class=MonitoringTracker
                    )
                )
            ratios[name] = (
                statistics.median(settrace),
                statistics.median(monitoring),
            )
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = []
    for name, (settrace, monitoring) in ratios.items():
        lines.append(
            f"{name}: settrace {settrace * 1e3:.1f} ms vs monitoring "
            f"{monitoring * 1e3:.1f} ms -> {monitoring / settrace:.2f}x"
        )
    print("\n" + "\n".join(lines))
    settrace, monitoring = ratios["no-bp"]
    assert monitoring <= 0.5 * settrace, (
        "sys.monitoring no-breakpoint resume regressed: "
        f"{monitoring * 1e3:.1f} ms vs settrace {settrace * 1e3:.1f} ms "
        "(bound: <= 0.5x)"
    )


# ---------------------------------------------------------------------------
# Timeline recording overhead + delta-compression ratio
# ---------------------------------------------------------------------------

RECORD_PROGRAM = """\
def rec(n):
    x = n
    if n == 0:
        return [0]
    child = rec(n - 1)
    child.append(n)
    return child

result = rec(40)
final = len(result)
"""


def _step_to_exit(path, keyframe_interval=None, max_snapshots=None):
    """Step-run to completion; returns the timeline (or None, unrecorded)."""
    tracker = PythonTracker()
    tracker.load_program(path)
    if keyframe_interval is not None:
        tracker.enable_recording(
            keyframe_interval=keyframe_interval, max_snapshots=max_snapshots
        )
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.step()
    timeline = tracker.timeline
    tracker.terminate()
    return timeline


BREAKPOINT_PROGRAM = """\
def work(k):
    total = 0
    for i in range(150):
        total += i * k
    return total

acc = 0
for j in range(20):
    acc += work(j)
done = acc
"""


def _resume_recorded(path, keyframe_interval=None):
    """Resume breakpoint-to-breakpoint to exit, optionally recording."""
    tracker = PythonTracker()
    tracker.load_program(path)
    tracker.break_before_line(5)  # the return inside work(): 20 hits
    if keyframe_interval is not None:
        tracker.enable_recording(keyframe_interval=keyframe_interval)
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.resume()
    tracker.terminate()


def test_recording_overhead_within_3x(benchmark, write_program):
    """ISSUE guard: resuming with recording at keyframe interval 16 must
    stay within 3x of an unrecorded resume run. Snapshot capture + delta
    diff is per-*pause* work, so it rides on top of each resume's (already
    per-line) execution — the overhead must stay a fraction, not a
    multiple, of the control cost it extends."""
    path = write_program("bp.py", BREAKPOINT_PROGRAM)
    _resume_recorded(path)  # warm-up

    def measure():
        plain, recorded = [], []
        for _ in range(3):
            start = time.perf_counter()
            _resume_recorded(path)
            plain.append(time.perf_counter() - start)
            start = time.perf_counter()
            _resume_recorded(path, keyframe_interval=16)
            recorded.append(time.perf_counter() - start)
        return statistics.median(plain), statistics.median(recorded)

    plain, recorded = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = recorded / plain
    print(
        f"\nresume-to-exit unrecorded {plain * 1e3:.1f} ms vs recorded@K=16 "
        f"{recorded * 1e3:.1f} ms -> {factor:.2f}x (must stay within 3x)"
    )
    assert factor <= 3.0


def test_delta_compression_ratio(benchmark, write_program):
    """ISSUE acceptance: the delta timeline serializes to <= 50% of the
    all-keyframe encoding on the recursion example (deep stacks repeat
    almost verbatim between pauses, which is exactly what the structural
    diff exploits)."""
    path = write_program("record.py", RECORD_PROGRAM)

    def measure():
        delta = _step_to_exit(path, keyframe_interval=16)
        keyframed = _step_to_exit(path, keyframe_interval=1)
        return delta.stats(), keyframed.stats()

    delta, keyframed = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = delta["json_bytes"] / keyframed["json_bytes"]
    print(
        f"\n{delta['snapshots']} snapshots: delta@K=16 "
        f"{delta['json_bytes']:,} bytes vs all-keyframe "
        f"{keyframed['json_bytes']:,} bytes -> {ratio:.2%}"
    )
    assert ratio <= 0.5


@pytest.mark.parametrize("interval", [1, 4, 16, 64])
def test_keyframe_interval_ablation(benchmark, write_program, interval):
    """Ablation: storage bytes and record+reconstruct time per interval.

    Larger intervals shrink storage (more deltas) but lengthen worst-case
    reconstruction (more patches applied from the keyframe); the sweep
    makes the trade-off visible in the benchmark table.
    """
    path = write_program("record.py", RECORD_PROGRAM)

    def measure():
        timeline = _step_to_exit(path, keyframe_interval=interval)
        # Worst case for the cursor cache: walk the whole run backwards.
        for index in range(len(timeline) - 1, -1, -1):
            timeline.snapshot(index)
        return timeline.stats()

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nK={interval}: {stats['snapshots']} snapshots, "
        f"{stats['keyframes']} keyframes + {stats['deltas']} deltas, "
        f"{stats['json_bytes']:,} bytes"
    )


# ---------------------------------------------------------------------------
# Subprocess isolation overhead
# ---------------------------------------------------------------------------

ISOLATION_PROGRAM = """\
def work(k):
    total = 0
    for i in range(100):
        total += i * k
    return total

acc = 0
for j in range(15):
    acc += work(j)
done = acc
"""


def _resume_to_exit(tracker, path):
    tracker.load_program(path)
    tracker.break_before_line(5)  # the return inside work(): 15 hits
    tracker.start()
    start = time.perf_counter()
    while tracker.get_exit_code() is None:
        tracker.resume()
    elapsed = time.perf_counter() - start
    tracker.terminate()
    return elapsed


def test_subproc_isolation_overhead_within_5x(benchmark, write_program):
    """ISSUE guard: the out-of-process Python backend's resume path must
    stay within 5x of the in-process tracker on a breakpoint-to-breakpoint
    run. The tracking work is identical (the child hosts the same
    tracker); what the multiplier prices is the MI pipe — one command and
    one stop record per resume — so it must be a small constant factor,
    not a blow-up."""
    from repro.subproc.tracker import SubprocPythonTracker

    path = write_program("iso.py", ISOLATION_PROGRAM)
    _resume_to_exit(SubprocPythonTracker(), path)  # warm-up: child spawn

    def measure():
        inproc, subproc = [], []
        for _ in range(3):
            inproc.append(_resume_to_exit(PythonTracker(), path))
            subproc.append(_resume_to_exit(SubprocPythonTracker(), path))
        return statistics.median(inproc), statistics.median(subproc)

    inproc, subproc = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = subproc / inproc
    print(
        f"\nresume-to-exit in-process {inproc * 1e3:.1f} ms vs subprocess "
        f"{subproc * 1e3:.1f} ms -> {factor:.2f}x (must stay within 5x)"
    )
    assert factor <= 5.0


def test_mi_round_trip_latency(benchmark, write_program):
    """One -data-list-globals round trip over the live subprocess pipe."""
    path = write_program(
        "p.c",
        "int g = 1;\nint main(void) {\n    int x = 0;\n    for (x = 0; x < 100; x++) { g = g + x; }\n    return 0;\n}\n",
    )
    tracker = GDBTracker()
    tracker.load_program(path)
    tracker.start()
    try:
        benchmark(tracker.get_global_variables)
    finally:
        tracker.terminate()


def test_gdb_tracker_step_latency(benchmark, write_program):
    """Per-step cost of the GDB tracker: command + stop record round trip."""
    path = write_program(
        "loop.c",
        "int main(void) {\n"
        "    int total = 0;\n"
        "    for (int i = 0; i < 100000; i++) {\n"
        "        total += i;\n"
        "    }\n"
        "    return 0;\n"
        "}\n",
    )
    tracker = GDBTracker()
    tracker.load_program(path)
    tracker.start()
    try:
        benchmark(tracker.step)
    finally:
        tracker.terminate()
