"""Fig. 10 / §III-E — Python Tutor trace export, reduction, and replay.

The paper generates a *partial* PT trace for the Fig. 8 recursion example —
pausing only at entry/exit of the tracked function and recording only the
chosen variables — and reports that this "reduces the trace by a factor of
10 in this example". This bench regenerates both traces, measures the
factor, and replays the partial trace through the PT tracker (the
trace-as-inferior direction of §III-E).
"""

import json

from benchmarks.conftest import once
from repro.core.pause import PauseReasonType
from repro.pytutor import PTTracker, record_trace

# The Fig. 8-style workload: a recursive sort with enough bookkeeping
# locals that full line-by-line tracing is much heavier than the filtered
# call/return trace.
MERGE_SORT = """\
def merge_sort(arr):
    if len(arr) <= 1:
        return arr
    mid = len(arr) // 2
    left = merge_sort(arr[:mid])
    right = merge_sort(arr[mid:])
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged

data = [9, 3, 7, 1, 8, 2, 6, 4]
result = merge_sort(data)
"""


def test_fig10_partial_trace_reduction(benchmark, write_program):
    program = write_program("msort.py", MERGE_SORT)

    def build_both():
        full = record_trace(program, mode="full")
        partial = record_trace(
            program, mode="tracked", track=["merge_sort"], variables=["arr"]
        )
        return full, partial

    full, partial = once(benchmark, build_both)

    full_bytes = len(full.dumps())
    partial_bytes = len(partial.dumps())
    factor = full_bytes / partial_bytes
    print(
        f"\nfull trace: {len(full.steps)} steps / {full_bytes} bytes; "
        f"partial: {len(partial.steps)} steps / {partial_bytes} bytes; "
        f"reduction {factor:.1f}x (paper: ~10x on its example)"
    )
    # Shape: the partial trace is an order of magnitude smaller.
    assert factor > 5.0
    assert len(partial.steps) < len(full.steps) / 5
    # Both traces are valid PT JSON.
    assert json.loads(full.dumps())["trace"]
    assert json.loads(partial.dumps())["trace"]


def test_fig10_front_end_walkable(benchmark, write_program, tmp_path):
    """The partial trace drives a PT-style front-end walk (fig. 10)."""
    program = write_program("msort.py", MERGE_SORT)
    trace = record_trace(
        program, mode="tracked", track=["merge_sort"], variables=["arr"]
    )
    path = str(tmp_path / "partial.json")
    trace.save(path)

    def replay():
        tracker = PTTracker()
        tracker.load_program(path)
        tracker.track_function("merge_sort")
        tracker.start()
        events = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type in (
                PauseReasonType.CALL,
                PauseReasonType.RETURN,
            ):
                events.append(
                    (tracker.pause_reason.type.name, len(tracker.get_frames()))
                )
        # "Forward" to the end, then step back (recorded execution).
        tracker.step_back()
        return events, tracker.step_index

    events, back_index = once(benchmark, replay)
    calls = [depth for kind, depth in events if kind == "CALL"]
    returns = [depth for kind, depth in events if kind == "RETURN"]
    # 15 calls for 8 elements; the replay's start() consumes the first.
    assert len(calls) == 14
    assert len(returns) == 15
    assert max(calls) == 4  # recursion depth for 8 elements
    assert back_index >= 0
