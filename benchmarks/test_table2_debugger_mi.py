"""Table II — comparison with debugger machine interfaces.

The paper's analysis: existing debugger MIs (GDB/MI, pdb/bdb, DAP, JDWP)
expose *low-level* control/inspection abstractions that are specific to
either compiled or interpreted languages, which is why PV tools rarely
adopt them. EasyTracker's interface is high-level, language-agnostic, and
ships a serializable state model.

Literature rows are transcribed from the paper; the EasyTracker row is
probed live: every capability cell is exercised against this reproduction's
actual MI layer and trackers.
"""

import json

from benchmarks.conftest import once
from repro import init_tracker
from repro.core.state import frame_from_dict, frame_to_dict
from repro.mi.server import DebugServer
from repro.mi import protocol

# (interface, high-level API, compiled langs, interpreted langs,
#  serializable state model, function-exit events, depth filtering)
LITERATURE_ROWS = [
    ("GDB/MI", False, True, False, False, False, False),
    ("pdb/bdb", False, False, True, False, False, False),
    ("DAP", False, True, True, True, False, False),
    ("JDWP", False, False, True, False, True, False),
]

C_INFERIOR = (
    "int f(int n) {\n"
    "    return n * 2;\n"
    "}\n"
    "int main(void) {\n"
    "    int out = f(21);\n"
    "    return 0;\n"
    "}\n"
)


def probe_high_level_api(c_path):
    """One call expresses what takes several MI commands: track_function."""
    tracker = init_tracker("GDB")
    tracker.load_program(c_path)
    tracker.track_function("f")  # entry + exit + value, in one call
    tracker.start()
    tracker.resume()
    entry = tracker.pause_reason.type.name
    tracker.resume()
    exit_ = tracker.pause_reason.type.name
    tracker.terminate()
    return (entry, exit_) == ("CALL", "RETURN")


def probe_compiled_and_interpreted(write_program):
    """The same factory covers compiled-style and interpreted inferiors."""
    names = set()
    for source, name in (
        (C_INFERIOR, "p.c"),
        ("x = 1\n", "p.py"),
    ):
        path = write_program("probe_" + name, source)
        tracker = init_tracker("python" if name.endswith(".py") else "GDB")
        tracker.load_program(path)
        tracker.start()
        names.add(tracker.backend)
        tracker.terminate()
    return names == {"python", "GDB"}


def probe_serializable_state(c_path):
    """Frames cross the MI pipe as JSON and decode losslessly."""
    server = DebugServer(c_path)
    server.handle("-exec-run")
    record = protocol.parse_record(server.handle("-stack-list-frames")[0])
    wire = json.dumps(record.payload)  # actually JSON-serializable
    frame = frame_from_dict(json.loads(wire))
    return frame.name == "main" and frame_to_dict(frame) == record.payload


def probe_function_exit(c_path):
    tracker = init_tracker("GDB")
    tracker.load_program(c_path)
    tracker.track_function("f")
    tracker.start()
    tracker.resume()
    tracker.resume()
    value = tracker.pause_reason.return_value
    tracker.terminate()
    return value == "42"


def probe_depth_filtering(write_program):
    recursive = (
        "int down(int n) {\n"
        "    if (n == 0) { return 0; }\n"
        "    return down(n - 1);\n"
        "}\n"
        "int main(void) { return down(4); }\n"
    )
    path = write_program("rec_probe.c", recursive)
    tracker = init_tracker("GDB")
    tracker.load_program(path)
    tracker.break_before_func("down", maxdepth=2)
    tracker.start()
    hits = 0
    while tracker.get_exit_code() is None:
        tracker.resume()
        if tracker.pause_reason.type.name == "BREAKPOINT":
            hits += 1
    tracker.terminate()
    return hits == 2


def test_table2_debugger_mi_comparison(benchmark, write_program):
    c_path = write_program("p.c", C_INFERIOR)

    def probe_all():
        return (
            probe_high_level_api(c_path),
            probe_compiled_and_interpreted(write_program),
            probe_compiled_and_interpreted(write_program),  # both columns
            probe_serializable_state(c_path),
            probe_function_exit(c_path),
            probe_depth_filtering(write_program),
        )

    ours = once(benchmark, probe_all)

    rows = LITERATURE_ROWS + [("EasyTracker (this repro)",) + ours]
    header = (
        f"{'interface':24s} {'high-lvl':>8s} {'compiled':>9s} "
        f"{'interp':>7s} {'serial':>7s} {'fn-exit':>8s} {'maxdepth':>9s}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in rows:
        name, flags = row[0], row[1:]
        cells = " ".join(
            f"{('yes' if flag else 'no'):>{width}s}"
            for flag, width in zip(flags, (8, 9, 7, 7, 8, 9))
        )
        print(f"{name:24s} {cells}")

    assert all(ours)
    # No literature MI covers every column (the paper's adoption-gap point).
    assert not any(all(row[1:]) for row in LITERATURE_ROWS)
