"""Fig. 1 — the loop-invariant array visualization of insertion sort.

Regenerates the paper's figure: the source pane plus one array image per
executed line, with i/j markers and the sorted prefix highlighted. Shape
checks: the run steps through the whole sort, the prefix grows monotonically
to the array length, and every image pair exists.
"""

import os

from benchmarks.conftest import once
from repro.tools.array_invariant import ArrayInvariantTool

INSERTION_SORT = """\
def insertion_sort(arr):
    for i in range(1, len(arr)):
        j = i
        while j > 0 and arr[j - 1] > arr[j]:
            arr[j - 1], arr[j] = arr[j], arr[j - 1]
            j -= 1
    return arr

data = [5, 2, 8, 1, 9, 3, 7, 4]
insertion_sort(data)
"""


def test_fig1_generates_invariant_views(benchmark, write_program, output_dir):
    program = write_program("isort.py", INSERTION_SORT)
    tool = ArrayInvariantTool(
        program,
        array_name="arr",
        index_names=["i", "j"],
        sorted_upto="i",
        function="insertion_sort",
    )

    images = once(benchmark, tool.run, output_dir)

    # One array image per line executed inside the sort (plus module lines
    # where the array is visible), each with a matching source listing.
    assert len(images) > 20
    sources = [n for n in os.listdir(output_dir) if n.startswith("source")]
    assert len(sources) == len(images)

    # The invariant the figure teaches: the sorted prefix grows with i and
    # the final array is sorted.
    final = open(images[-1], encoding="utf-8").read()
    assert "#9fc5e8" in final  # sorted-prefix highlight present at the end
    assert ">i</text>" in open(images[5], encoding="utf-8").read()


def test_fig1_prefix_growth_is_monotonic(benchmark, write_program):
    """Drive the same tool headlessly and check the invariant itself."""
    from repro.pytracker.tracker import PythonTracker

    program = write_program("isort.py", INSERTION_SORT)

    def collect_states():
        tool = ArrayInvariantTool(
            program, "arr", ["i", "j"], sorted_upto="i",
            function="insertion_sort",
        )
        tracker = PythonTracker()
        tracker.load_program(program)
        tracker.start()
        states = []
        while tracker.get_exit_code() is None:
            snapshot = tool.snapshot(tracker)
            if snapshot is not None:
                states.append(snapshot)
            tracker.step()
        tracker.terminate()
        return states

    states = once(benchmark, collect_states)
    prefixes = [prefix for _, _, prefix in states]
    assert max(prefixes) == 7  # i reaches len(arr) - 1
    arrays = [array for array, _, _ in states]
    assert sorted(arrays[0]) == arrays[-1]
    # The multiset never changes (swaps only).
    for array, _indices, _prefix in states:
        assert sorted(array) == sorted(arrays[0])
    # The textbook invariant — arr[:i] sorted — holds once iteration i's
    # bubbling is complete, i.e. at the *last* pause of each i value
    # (mid-bubble the prefix carries one inversion, which is exactly what
    # the figure lets students watch).
    last_state_for_i = {}
    for array, indices, prefix in states:
        if indices.get("i") is not None:
            last_state_for_i[indices["i"]] = (array, prefix)
    for i_value, (array, prefix) in last_state_for_i.items():
        shown = array[:i_value]
        assert shown == sorted(shown), (i_value, array)
