"""Fig. 7 — the RISC-V registers-and-memory viewer.

Regenerates the compiler-course view: source beside the CPU registers (pc
and sp emphasized) and raw memory as a one-dimensional word array, stepped
line by line through the GDB tracker's ``get_registers_gdb`` and
``get_value_at_gdb``.
"""

import os

from benchmarks.conftest import once
from repro.riscv.assembler import DATA_BASE
from repro.tools.riscv_viewer import RiscvViewer

SUM_PROGRAM = """\
    .data
arr:    .word 3, 1, 4, 1, 5
n:      .word 5
    .text
main:
    la   t0, arr
    lw   t1, n
    li   t2, 0
loop:
    beqz t1, done
    lw   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 4
    addi t1, t1, -1
    j    loop
done:
    mv   a0, t2
    li   a7, 1
    ecall
    li   a7, 93
    li   a0, 0
    ecall
"""


def test_fig7_viewer_states(benchmark, write_program, output_dir):
    program = write_program("sum.s", SUM_PROGRAM)
    viewer = RiscvViewer(program, memory_base=DATA_BASE, memory_size=32)

    states = once(benchmark, viewer.run, output_dir)

    # One state per executed instruction line.
    assert len(states) > 20
    first, last = states[0], states[-1]
    # pc advances; sp starts at the stack top; memory shows the array.
    assert last["registers"]["pc"] > first["registers"]["pc"]
    assert first["registers"]["sp"] == 0x7FFF_F000
    words = [
        int.from_bytes(first["memory"][i : i + 4], "little")
        for i in range(0, 20, 4)
    ]
    assert words == [3, 1, 4, 1, 5]
    # The sum accumulates into t2: 3+1+4+1+5 = 14.
    assert states[-1]["registers"]["t2"] == 14
    # Register-change highlighting fires on every load into t3.
    assert any("t3" in state["changed"] for state in states)
    # Both the state SVGs and the source listings were written.
    files = os.listdir(output_dir)
    assert any(name.endswith("_src.svg") for name in files)
    assert any(name == "riscv_001.svg" for name in files)


def test_fig7_text_mode_panes(benchmark, write_program):
    program = write_program("sum.s", SUM_PROGRAM)
    viewer = RiscvViewer(program, memory_base=DATA_BASE, memory_size=16)

    text = once(benchmark, viewer.run_text, 100)

    # The split-terminal view: source marker, registers, memory rows.
    assert "=>" in text
    assert "pc = 0x000" in text
    assert f"{DATA_BASE:#010x}:" in text
