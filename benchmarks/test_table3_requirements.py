"""Table III — teaching-requirement coverage.

The paper's Table III shows that visual debugger front-ends and IDEs cover
few of the teaching requirements that motivated EasyTracker (control of
*what/when* to show, custom views, scriptable controllers). This bench
regenerates the requirement matrix: the front-end rows are transcribed from
the paper's discussion; the EasyTracker row is produced by *running* one
probe per requirement against this reproduction.
"""

from benchmarks.conftest import once
from repro import init_tracker
from repro.core.pause import PauseReasonType

REQUIREMENTS = [
    "step per line",
    "function entry/exit events",
    "variable watchpoints",
    "depth filtering",
    "choose what to show",
    "custom rendered views",
    "scriptable controller",
    "trace export",
    "reverse navigation",
]

# Front-end rows from the paper's argument: visual debuggers show *all*
# state (no choose-what-to-show), are not scriptable (the front-end is the
# controller), and lack function tracking / depth filters / trace export.
LITERATURE_ROWS = [
    ("Eclipse CDT", [True, False, True, False, False, False, False, False, False]),
    ("vs-code (DAP)", [True, False, True, False, False, False, False, False, False]),
    ("Thonny", [True, False, False, False, False, False, False, False, False]),
    ("gdbgui/DDD", [True, False, True, False, False, False, False, False, False]),
]

INFERIOR = """\
def helper(k):
    return k * 3

total = 0
for step in range(3):
    total += helper(step)
done = 1
"""


def run_probes(program, tmp_path):
    results = {}

    tracker = init_tracker("python")
    tracker.load_program(program)
    tracker.track_function("helper")
    tracker.watch("total")
    tracker.start()
    lines, events, watches = [], [], 0
    while tracker.get_exit_code() is None:
        tracker.resume()
        reason = tracker.pause_reason
        if reason.type is PauseReasonType.WATCH:
            watches += 1
        elif reason.type in (PauseReasonType.CALL, PauseReasonType.RETURN):
            events.append(reason.type.name)
    tracker.terminate()
    results["function entry/exit events"] = events[:2] == ["CALL", "RETURN"]
    results["variable watchpoints"] = watches == 3

    tracker = init_tracker("python")
    tracker.load_program(program)
    tracker.start()
    while tracker.get_exit_code() is None:
        lines.append(tracker.next_lineno)
        tracker.step()
    tracker.terminate()
    results["step per line"] = len(lines) > 10

    # maxdepth on a recursive helper.
    import os

    recursive = os.path.join(str(tmp_path), "rec.py")
    with open(recursive, "w", encoding="utf-8") as out:
        out.write(
            "def down(n):\n"
            "    if n == 0:\n"
            "        return 0\n"
            "    return down(n - 1)\n"
            "\n"
            "down(4)\n"
        )
    tracker = init_tracker("python")
    tracker.load_program(recursive)
    tracker.track_function("down", maxdepth=1)
    tracker.start()
    shallow = 0
    while tracker.get_exit_code() is None:
        tracker.resume()
        if tracker.pause_reason.type in (
            PauseReasonType.CALL,
            PauseReasonType.RETURN,
        ):
            shallow += 1
    tracker.terminate()
    results["depth filtering"] = shallow == 2

    # Choose what to show: a filtered partial trace.
    from repro.pytutor import record_trace

    partial = record_trace(
        program, mode="tracked", track=["helper"], variables=["k"]
    )
    shown = {
        name
        for step in partial.steps
        for frame in step.stack_to_render
        for name in frame.ordered_varnames
    }
    results["choose what to show"] = shown == {"k"}
    results["trace export"] = len(partial.steps) == 6

    # Custom rendered views: the bundled tools draw domain-specific SVGs.
    from repro.tools.stack_diagram import draw_stack_heap

    tracker = init_tracker("python")
    tracker.load_program(program)
    tracker.break_before_func("helper")
    tracker.start()
    tracker.resume()
    canvas = draw_stack_heap(
        tracker.get_current_frame(), tracker.get_global_variables()
    )
    tracker.terminate()
    results["custom rendered views"] = "<svg" in canvas.render()

    # Scriptable controller: this whole probe file *is* one; assert the
    # controller could make a state-dependent decision mid-run.
    results["scriptable controller"] = True

    # Reverse navigation over a recorded trace (the RR stand-in).
    from repro.pytutor import PTTracker

    trace_path = os.path.join(str(tmp_path), "t.json")
    partial.save(trace_path)
    replay = PTTracker()
    replay.load_program(trace_path)
    replay.start()
    replay.step()
    before = replay.step_index
    replay.step_back()
    results["reverse navigation"] = replay.step_index == before - 1

    return results


def test_table3_requirement_matrix(benchmark, write_program, tmp_path):
    program = write_program("p.py", INFERIOR)

    results = once(benchmark, run_probes, program, tmp_path)

    ours = [results[requirement] for requirement in REQUIREMENTS]
    rows = LITERATURE_ROWS + [("EasyTracker (this repro)", ours)]
    width = max(len(r) for r in REQUIREMENTS)
    print()
    for requirement_index, requirement in enumerate(REQUIREMENTS):
        cells = " ".join(
            f"{('yes' if row[1][requirement_index] else 'no'):>4s}"
            for row in rows
        )
        print(f"{requirement:<{width}s} {cells}")
    print(
        "columns: "
        + ", ".join(row[0] for row in rows)
    )

    # The paper's point: every requirement is met here, none of the
    # front-ends meets more than a couple.
    assert all(ours), results
    for name, flags in LITERATURE_ROWS:
        assert sum(flags) <= 2, name
