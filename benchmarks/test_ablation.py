"""Ablations of the design choices DESIGN.md calls out.

Each bench isolates one implementation decision from the paper and measures
its cost against the alternative:

1. per-line watch checking (the paper's choice) vs. a watch-free resume;
2. the thread handshake of the Python tracker: per-control-call cost;
3. serialized-over-the-pipe inspection (GDB tracker) vs. in-process
   inspection (Python tracker);
4. exhaustive vs. depth-capped object-graph snapshots.
"""

import pytest

from repro.gdbtracker.tracker import GDBTracker
from repro.pytracker.introspect import Snapshotter
from repro.pytracker.tracker import PythonTracker

LOOP = """\
total = 0
for i in range(1500):
    total += i
final = total
"""


# ---------------------------------------------------------------------------
# 1. Watch checking per line
# ---------------------------------------------------------------------------


def _resume_to_end(path, watches):
    tracker = PythonTracker()
    tracker.load_program(path)
    for watch in watches:
        tracker.watch(watch)
    tracker.start()
    while tracker.get_exit_code() is None:
        tracker.resume()
    tracker.terminate()


def test_ablation_resume_without_watch(benchmark, write_program):
    path = write_program("loop.py", LOOP)
    benchmark.pedantic(_resume_to_end, args=(path, []), rounds=3, iterations=1)


def test_ablation_resume_with_one_watch(benchmark, write_program):
    path = write_program("loop.py", LOOP)
    benchmark.pedantic(
        _resume_to_end, args=(path, ["final"]), rounds=3, iterations=1
    )


def test_ablation_resume_with_four_watches(benchmark, write_program):
    path = write_program("loop.py", LOOP)
    benchmark.pedantic(
        _resume_to_end,
        args=(path, ["final", "total", "i", "missing"]),
        rounds=3,
        iterations=1,
    )


# ---------------------------------------------------------------------------
# 2. Thread handshake cost (one step() = one wake + one wait)
# ---------------------------------------------------------------------------


def test_ablation_handshake_per_step(benchmark, write_program):
    path = write_program("steps.py", "\n".join(f"x{i} = {i}" for i in range(200)))
    tracker = PythonTracker()
    tracker.load_program(path)
    tracker.start()
    steps = iter(range(150))

    def one_step():
        next(steps)
        tracker.step()

    try:
        benchmark.pedantic(one_step, rounds=100, iterations=1)
    finally:
        tracker.terminate()


# ---------------------------------------------------------------------------
# 3. In-process vs. serialized-over-the-pipe inspection
# ---------------------------------------------------------------------------

PY_STATE = """\
def hold():
    data = [[j for j in range(10)] for _ in range(10)]
    table = {str(k): k for k in range(20)}
    marker = 1
    return data, table

out = hold()
"""

C_STATE = """\
int main(void) {
    int grid[10][10];
    for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 10; j++) {
            grid[i][j] = i * 10 + j;
        }
    }
    int marker = 1;
    return 0;
}
"""


def test_ablation_inspect_in_process(benchmark, write_program):
    path = write_program("state.py", PY_STATE)
    tracker = PythonTracker()
    tracker.load_program(path)
    tracker.break_before_line(5)
    tracker.start()
    tracker.resume()
    try:
        benchmark(tracker.get_current_frame)
    finally:
        tracker.terminate()


def test_ablation_inspect_over_pipe(benchmark, write_program):
    path = write_program("state.c", C_STATE)
    tracker = GDBTracker()
    tracker.load_program(path)
    tracker.break_before_line(8)
    tracker.start()
    tracker.resume()
    try:
        benchmark(tracker.get_current_frame)
    finally:
        tracker.terminate()


# ---------------------------------------------------------------------------
# 4. Snapshot depth caps
# ---------------------------------------------------------------------------


def _deep_structure(depth, width=3):
    node = 0
    for _ in range(depth):
        node = [node] * width
    return node


@pytest.mark.parametrize("max_depth", [None, 4, 2])
def test_ablation_snapshot_depth(benchmark, max_depth):
    structure = _deep_structure(8)

    def snap():
        return Snapshotter(max_depth=max_depth).snapshot(structure)

    value = benchmark(snap)
    assert value is not None
