"""Table I — comparison with existing PV/AV tools.

The paper's Table I positions EasyTracker against program/algorithm
visualization tools along the decoupling axes: is the *program* separate
from the visualization code, is there *online control* of the execution
(vs. post-processing a recorded trace), and is the interface
*language-agnostic*.

Literature rows are transcribed from the paper's Related Work discussion;
the EasyTracker row is **probed live** against this reproduction — each
``True`` is demonstrated by actually exercising the capability, so the
regenerated table is evidence, not assertion.
"""

from benchmarks.conftest import once
from repro import init_tracker
from repro.core.pause import PauseReasonType

# (tool, decoupled program, online control, language-agnostic) — from the
# paper: JSaV/VisuAlgo hand-write each algorithm with its visualization;
# OGRE/PVC.js interpret one language; trace-level tools decouple but lose
# online control; instrumentation tools lack control and agnosticity.
LITERATURE_ROWS = [
    ("JSaV", False, False, False),
    ("VisuAlgo", False, False, False),
    ("OGRE", True, True, False),
    ("PlayVisualizerC", True, False, False),
    ("Vlsee", True, False, False),
    ("Jeliot", True, False, False),
    ("SeeC", True, False, False),
    ("Eye", True, False, False),
    ("C Tutor", True, False, False),
    ("Python Tutor", True, False, False),
]

PY_INFERIOR = "def f(n):\n    return n + 1\n\nvalue = f(1)\ndone = 1\n"
C_INFERIOR = (
    "int value = 0;\n"
    "int f(int n) {\n"
    "    return n + 1;\n"
    "}\n"
    "int main(void) {\n"
    "    value = f(1);\n"
    "    return 0;\n"
    "}\n"
)


def probe_decoupled_program(py_path, c_path):
    """The inferior sources contain zero visualization code, yet a generic
    controller can drive them — decoupling between program and tool."""
    for path in (py_path, c_path):
        with open(path, encoding="utf-8") as source:
            text = source.read()
        assert "tracker" not in text and "import" not in text
    return True


def probe_online_control(py_path):
    """Mid-run inspection feeding a control decision (not post-mortem)."""
    tracker = init_tracker("python")
    tracker.load_program(py_path)
    tracker.track_function("f")
    tracker.start()
    tracker.resume()  # pause at the CALL of f
    decided = False
    if tracker.pause_reason.type is PauseReasonType.CALL:
        argument = tracker.get_current_frame().variables["n"].value
        # The control decision depends on the inspected live state.
        if argument.content.content == 1:
            tracker.finish()
            decided = True
    tracker.terminate()
    return decided


def probe_language_agnostic(py_path, c_path):
    """The same loop yields the same event shapes for Python and C."""

    def events(path):
        tracker = init_tracker("python" if path.endswith(".py") else "GDB")
        tracker.load_program(path)
        tracker.track_function("f")
        tracker.start()
        seen = []
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type in (
                PauseReasonType.CALL,
                PauseReasonType.RETURN,
            ):
                seen.append(tracker.pause_reason.type.name)
        tracker.terminate()
        return seen

    return events(py_path) == events(c_path) == ["CALL", "RETURN"]


def test_table1_pv_tool_comparison(benchmark, write_program):
    py_path = write_program("inferior.py", PY_INFERIOR)
    c_path = write_program("inferior.c", C_INFERIOR)

    def probe_all():
        return (
            probe_decoupled_program(py_path, c_path),
            probe_online_control(py_path),
            probe_language_agnostic(py_path, c_path),
        )

    ours = once(benchmark, probe_all)

    rows = LITERATURE_ROWS + [("EasyTracker (this repro)",) + ours]
    header = f"{'tool':24s} {'decoupled':>10s} {'online':>8s} {'agnostic':>9s}"
    print("\n" + header)
    print("-" * len(header))
    for name, decoupled, online, agnostic in rows:
        print(
            f"{name:24s} {_mark(decoupled):>10s} {_mark(online):>8s} "
            f"{_mark(agnostic):>9s}"
        )

    # The paper's claim: only EasyTracker has all three.
    assert ours == (True, True, True)
    assert not any(d and o and a for _, d, o, a in LITERATURE_ROWS)


def _mark(flag):
    return "yes" if flag else "no"
