"""Fig. 6 — stack and stack-and-heap diagrams for Python and C.

Regenerates the three sub-figures with the paper's Listing 1 tool:

- 6(a): Python stack diagram with *inlined* values for all types;
- 6(b): Python stack-and-heap diagram (every variable a REF to the heap);
- 6(c): C stack-and-heap diagram: values in the stack, pointers into the
  stack, and an invalid pointer drawn as a cross.
"""

from benchmarks.conftest import once
from repro.tools.stepper import generate_diagrams

PY_PROGRAM = """\
def scale(values, factor):
    doubled = [v * factor for v in values]
    pair = (values, doubled)
    return pair

nums = [1, 2, 3]
result = scale(nums, 2)
"""

C_PROGRAM = """\
#include <stdlib.h>

int main(void) {
    int a = 5;
    int *p = &a;
    int *h = malloc(3 * sizeof(int));
    h[0] = 10; h[1] = 20; h[2] = 30;
    int *dangling;
    free(h);
    return 0;
}
"""


def test_fig6a_python_stack_diagram(benchmark, write_program, output_dir):
    program = write_program("fig6a.py", PY_PROGRAM)
    images = once(
        benchmark, generate_diagrams, program, output_dir, mode="stack"
    )
    assert len(images) >= 6
    # The inlined rendering PT cannot produce: lists and tuples in the box.
    content = "".join(open(path, encoding="utf-8").read() for path in images)
    assert "[1, 2, 3]" in content
    assert "(" in content and "doubled" in content


def test_fig6b_python_stack_heap(benchmark, write_program, output_dir):
    program = write_program("fig6b.py", PY_PROGRAM)
    images = once(benchmark, generate_diagrams, program, output_dir)
    assert images[0].endswith("001-stack_heap.svg")
    # Deepest snapshot: frame boxes for the module and scale(), heap
    # objects on the right, and reference arrows between the columns.
    deepest = max(images, key=lambda p: len(open(p, encoding="utf-8").read()))
    content = open(deepest, encoding="utf-8").read()
    assert "scale (depth 1)" in content
    assert "list" in content
    assert "globals" in content


def test_fig6c_c_stack_heap_with_invalid_pointer(
    benchmark, write_program, output_dir
):
    program = write_program("fig6c.c", C_PROGRAM)
    images = once(benchmark, generate_diagrams, program, output_dir)
    assert len(images) >= 7
    final = open(images[-1], encoding="utf-8").read()
    # After free(h): both `dangling` and `h` draw as the invalid-pointer
    # cross (red strokes), and `a` holds its value *in the stack*.
    assert "#c0392b" in final
    assert "a = " in final
    # Before the free, the heap block is visible with its recorded size.
    before_free = open(images[-2], encoding="utf-8").read()
    assert "(12 bytes)" in before_free
