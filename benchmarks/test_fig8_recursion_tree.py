"""Fig. 8 — the recursive-call tree visualization.

Regenerates the paper's Listing 6 run: track a recursive function, build
the dynamic call tree with argument values snapshotted at call time, live
nodes red and exited nodes gray, return values on back edges, one image per
call/return event.
"""

import os

from benchmarks.conftest import once
from repro.tools.recursion_tree import record_call_tree

MERGE_SORT = """\
def merge_sort(arr):
    if len(arr) <= 1:
        return arr
    mid = len(arr) // 2
    left = merge_sort(arr[:mid])
    right = merge_sort(arr[mid:])
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged

data = [6, 2, 9, 4, 7, 1]
print(merge_sort(data))
"""


def test_fig8_call_tree_generation(benchmark, write_program, output_dir):
    program = write_program("msort.py", MERGE_SORT)

    recording = once(
        benchmark,
        record_call_tree,
        program,
        "merge_sort",
        ["arr"],
        output_dir,
    )

    # One snapshot per call/return event, as the paper's rec-NNN.svg series.
    assert recording.events == len(recording.images)
    assert os.path.exists(recording.images[-1])
    root = recording.roots[0]
    # Shape of the figure: the root shows the call-time argument and the
    # returned (sorted) array on its annotation.
    assert root.label("merge_sort") == "merge_sort([6, 2, 9, 4, 7, 1])"
    assert root.retval == "[1, 2, 4, 6, 7, 9]"
    assert len(root.children) == 2
    # Everything returned by the end: no live (red) nodes remain.
    def all_inactive(node):
        return not node.active and all(all_inactive(c) for c in node.children)

    assert all_inactive(root)
    # Intermediate images show live (red) nodes.
    middle = open(recording.images[3], encoding="utf-8").read()
    assert "#c0392b" in middle
    final = open(recording.images[-1], encoding="utf-8").read()
    assert "#2980b9" in final  # return-value back edges


def test_fig8_skip_parameter(benchmark, write_program):
    """The paper's interactive `skip` query: skip the first call tree."""
    program = write_program(
        "two_trees.py",
        "def rec(n):\n"
        "    if n <= 0:\n"
        "        return 0\n"
        "    return rec(n - 1)\n"
        "\n"
        "rec(2)\n"
        "rec(3)\n",
    )

    recording = once(
        benchmark, record_call_tree, program, "rec", ["n"], None, 1
    )

    # Only the second top-level tree (rec(3), 4 calls deep) is recorded.
    assert len(recording.roots) == 1
    assert recording.roots[0].args == {"n": "3"}
