"""Fig. 9 — the game for learning debugging.

Regenerates the paper's scenario: a mini-C level whose ``check_key`` forgets
to pick up the key, played live under the GDB tracker. Shape checks: the
character reaches the exit with the door closed, the controller generates
incrementally useful hints *while the level runs* (the capability that
post-mortem traces cannot provide), and after fixing the source the replay
wins.
"""

from benchmarks.conftest import once
from repro.tools.debug_game import (
    LEVEL1_FIXED,
    fix_and_replay,
    play_level,
    write_level,
)


def test_fig9_buggy_level_produces_hints(benchmark, tmp_path):
    level = write_level(str(tmp_path / "level1.c"))

    result = once(benchmark, play_level, level)

    assert result.reached_exit
    assert not result.door_opened
    assert not result.won
    # The two live hints of the scenario: key not picked up, door closed.
    assert any("check_key" in hint for hint in result.hints)
    assert any("door" in hint for hint in result.hints)
    # The map animates with the character's path (watch on x and y).
    assert result.path[0] == (1, 1)
    assert result.path[-1] == (5, 3)
    assert (3, 1) in result.path
    assert len(result.frames) >= len(result.path)


def test_fig9_fix_loop_wins(benchmark, tmp_path):
    level = write_level(str(tmp_path / "level1.c"))

    before, after = once(benchmark, fix_and_replay, level, LEVEL1_FIXED)

    assert not before.won
    assert after.won
    assert after.has_key and after.door_opened
    # The fixed run no longer triggers the check_key hint.
    assert not any("check_key" in hint for hint in after.hints)
