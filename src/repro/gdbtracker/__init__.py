"""The GDB-style tracker: Tracker API over the MI debug-server subprocess."""

from repro.gdbtracker.tracker import GDBTracker

__all__ = ["GDBTracker"]
