"""The GDB tracker: the Tracker API over the MI debug server.

This is the reproduction of the paper's GDB-based implementation
(Section II-C1): the tracker runs the debugger as a subprocess in
machine-interface mode and adapts the high-level control/inspection API to
MI commands. The two GDB gaps the paper closes are closed the same way
here:

- **maxdepth** rides along on every breakpoint/watch command (the paper
  adds custom breakpoint commands via a GDB Python extension; our server
  accepts the extension natively);
- **function-exit tracking**: GDB can break on entry but not exit. For
  assembly inferiors we use the paper's mechanism literally — disassemble
  the function, find its return instruction (``ret`` = ``jalr x0, 0(ra)``
  on RISC-V, standing in for x86 ``retq``), and plant an address breakpoint
  there; entry/exit pauses are then synthesized client-side from which
  breakpoint fired. For mini-C inferiors the server's ``-track-function``
  does the equivalent natively.

Inspection state (frames, variables, values) is built server-side,
serialized, piped across, and deserialized here — both sides speak the
:mod:`repro.core.state` model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import TrackerStats
from repro.core.errors import TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import (
    Frame,
    Variable,
    frame_from_dict,
    variable_from_dict,
)
from repro.core.tracker import (
    FunctionBreakpoint,
    LineBreakpoint,
    TrackedFunction,
    Tracker,
    Watchpoint,
)
from repro.mi.client import MIClient


class GDBTracker(Tracker):
    """Tracker for mini-C (.c) and RISC-V assembly (.s) inferiors."""

    backend = "GDB"

    def __init__(self) -> None:
        super().__init__()
        self._client: Optional[MIClient] = None
        #: bkptno -> function, for exit breakpoints planted by the ret-scan
        self._exit_breakpoints: Dict[int, str] = {}
        #: bkptno -> function, for the matching entry breakpoints
        self._entry_breakpoints: Dict[int, str] = {}
        self._is_assembly = False
        self._filename = ""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self._client = MIClient(path, args)
        self._is_assembly = path.endswith((".s", ".S", ".asm"))
        loaded = self._client.execute("-file-exec-and-symbols", [path])
        self._filename = loaded["file"] if loaded else path

    def _start(self) -> None:
        self._sync_control_points()
        self._ingest(self._client.run_control("-exec-run"))

    def _terminate(self) -> None:
        if self._client is not None:
            self._client.close()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._ingest(self._client.run_control("-exec-continue"))

    def _next(self) -> None:
        self._ingest(self._client.run_control("-exec-next"))

    def _step(self) -> None:
        self._ingest(self._client.run_control("-exec-step"))

    def _finish(self) -> None:
        self._ingest(self._client.run_control("-exec-finish"))

    def _control_points_changed(self) -> None:
        super()._control_points_changed()
        if self._client is not None:
            self._sync_control_points()

    def clear_control_points(self) -> None:
        """Remove every control point, server side included."""
        super().clear_control_points()
        self._exit_breakpoints.clear()
        self._entry_breakpoints.clear()
        if self._client is not None:
            self._client.execute("-break-delete", ["all"])

    def _sync_control_points(self) -> None:
        """Send any not-yet-registered control points to the server.

        The engine tracks which points have already crossed the pipe
        (:meth:`ControlPointEngine.take_unsynced`), so re-syncs after new
        installs are incremental.
        """
        if self._client is None:
            return
        for point in self.engine.take_unsynced():
            if isinstance(point, LineBreakpoint):
                self._client.execute(
                    "-break-insert",
                    [str(point.line)],
                    _maxdepth(point.maxdepth),
                )
            elif isinstance(point, FunctionBreakpoint):
                self._client.execute(
                    "-break-insert",
                    [point.function],
                    _maxdepth(point.maxdepth),
                )
            elif isinstance(point, Watchpoint):
                self._client.execute(
                    "-break-watch",
                    [point.variable_id],
                    _maxdepth(point.maxdepth),
                )
            elif isinstance(point, TrackedFunction):
                if self._is_assembly:
                    self._track_function_via_ret_scan(
                        point.function, point.maxdepth
                    )
                else:
                    self._client.execute(
                        "-track-function",
                        [point.function],
                        _maxdepth(point.maxdepth),
                    )

    def _track_function_via_ret_scan(
        self, function: str, maxdepth: Optional[int]
    ) -> None:
        """The paper's retq-scan, retargeted to RISC-V.

        Disassemble the function, find its return instruction(s), and plant
        address breakpoints there plus an entry breakpoint at the function.
        Works whenever the compiler/author used the common single-epilogue
        layout; multiple ``ret`` sites each get their own breakpoint.
        """
        listing = self._client.execute("-data-disassemble", [function])
        returns = [entry for entry in listing if entry["is_return"]]
        if not returns:
            raise TrackerError(
                f"no return instruction found in {function!r}; "
                "cannot track its exit"
            )
        entry = self._client.execute(
            "-break-insert", [function], _maxdepth(maxdepth)
        )
        self._entry_breakpoints[entry["number"]] = function
        for site in returns:
            planted = self._client.execute(
                "-break-insert",
                [f"*{site['address']:#x}"],
                _maxdepth(maxdepth),
            )
            self._exit_breakpoints[planted["number"]] = function

    # ------------------------------------------------------------------
    # Stopped-payload ingestion
    # ------------------------------------------------------------------

    def _ingest(self, payload: Dict[str, Any]) -> None:
        reason = payload.get("reason")
        line = payload.get("line")
        if line is not None:
            self.last_lineno = self.next_lineno
            self.next_lineno = line
        if reason == "exited":
            self._exit_code = payload.get("exitcode", 0)
            self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
            self.exit_error = payload.get("error")
            return
        if reason == "watchpoint-trigger":
            self._pause_reason = PauseReason(
                type=PauseReasonType.WATCH,
                variable=payload.get("var"),
                old_value=payload.get("old"),
                new_value=payload.get("new"),
                line=line,
            )
            return
        if reason == "function-entry":
            self._pause_reason = PauseReason(
                type=PauseReasonType.CALL,
                function=payload.get("func"),
                line=line,
            )
            return
        if reason == "function-exit":
            self._pause_reason = PauseReason(
                type=PauseReasonType.RETURN,
                function=payload.get("func"),
                return_value=payload.get("retval"),
                line=line,
            )
            return
        if reason == "breakpoint-hit":
            number = payload.get("bkptno")
            if number in self._exit_breakpoints:
                self._pause_reason = PauseReason(
                    type=PauseReasonType.RETURN,
                    function=self._exit_breakpoints[number],
                    line=line,
                )
                return
            if number in self._entry_breakpoints:
                self._pause_reason = PauseReason(
                    type=PauseReasonType.CALL,
                    function=self._entry_breakpoints[number],
                    line=line,
                )
                return
            self._pause_reason = PauseReason(
                type=PauseReasonType.BREAKPOINT,
                function=payload.get("func"),
                line=line,
            )
            return
        self._pause_reason = PauseReason(type=PauseReasonType.STEP, line=line)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        return frame_from_dict(self._client.execute("-stack-list-frames"))

    def _get_global_variables(self) -> Dict[str, Variable]:
        payload = self._client.execute("-data-list-globals")
        return {
            name: variable_from_dict(data) for name, data in payload.items()
        }

    def _get_position(self) -> Tuple[str, Optional[int]]:
        payload = self._client.execute("-inferior-position")
        return payload["file"], payload["line"]

    def get_stats(self) -> TrackerStats:
        """Client-side counters merged with the server's ``-tracker-stats``.

        The pause decisions happen server-side (the server runs the same
        :class:`ControlPointEngine` over the raw event stream), so the
        event/pause counters come across the pipe; the local engine only
        contributes client-side bookkeeping.
        """
        local = self.engine.stats
        if self._client is None:
            return local
        try:
            payload = self._client.execute("-tracker-stats")
        except TrackerError:
            return local
        return local.merged(TrackerStats.from_dict(payload))

    # ------------------------------------------------------------------
    # GDB-tracker-specific extensions (named as in the paper)
    # ------------------------------------------------------------------

    def get_registers_gdb(self) -> Dict[str, int]:
        """All machine registers by name (assembly inferiors only)."""
        return self._client.execute("-data-list-register-values")

    def get_value_at_gdb(self, address: int, count: int) -> bytes:
        """Read ``count`` raw bytes of inferior memory at ``address``."""
        payload = self._client.execute(
            "-data-read-memory", [hex(address), str(count)]
        )
        return bytes.fromhex(payload["bytes"])

    def get_heap_blocks(self) -> Dict[int, int]:
        """Live heap blocks (address -> size) from the allocator registry."""
        payload = self._client.execute("-heap-blocks")
        return {int(address, 16): size for address, size in payload.items()}

    def disassemble(self, function: str) -> List[Dict[str, Any]]:
        """The function's instruction listing (assembly inferiors)."""
        return self._client.execute("-data-disassemble", [function])

    def get_output(self) -> str:
        """Everything the inferior printed so far."""
        return "".join(self._client.console)

    def list_functions(self) -> List[str]:
        """Names of the inferior's functions."""
        return self._client.execute("-list-functions")


def _maxdepth(value: Optional[int]) -> Optional[Dict[str, int]]:
    return {"maxdepth": value} if value is not None else None
