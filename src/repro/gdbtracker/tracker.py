"""The GDB tracker: the Tracker API over the MI debug server.

This is the reproduction of the paper's GDB-based implementation
(Section II-C1): the tracker runs the debugger as a subprocess in
machine-interface mode and adapts the high-level control/inspection API to
MI commands. All the client plumbing — supervised calls with deadlines and
crash recovery, control-point sync, payload ingestion, server-side
timeline recording — is the shared :class:`repro.mi.remote.MIRemoteTracker`
base (also used by the subprocess-isolated Python tracker); this class
adds what is specific to the mini-C / RISC-V substrate. The two GDB gaps
the paper closes are closed the same way here:

- **maxdepth** rides along on every breakpoint/watch command (the paper
  adds custom breakpoint commands via a GDB Python extension; our server
  accepts the extension natively);
- **function-exit tracking**: GDB can break on entry but not exit. For
  assembly inferiors we use the paper's mechanism literally — disassemble
  the function, find its return instruction (``ret`` = ``jalr x0, 0(ra)``
  on RISC-V, standing in for x86 ``retq``), and plant an address breakpoint
  there; entry/exit pauses are then synthesized client-side from which
  breakpoint fired. For mini-C inferiors the server's ``-track-function``
  does the equivalent natively.

Inspection state (frames, variables, values) is built server-side,
serialized, piped across, and deserialized here — both sides speak the
:mod:`repro.core.state` model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.supervision import BackoffPolicy
from repro.core.tracker import TrackedFunction
from repro.mi.remote import MIRemoteTracker, _maxdepth


class GDBTracker(MIRemoteTracker):
    """Tracker for mini-C (.c) and RISC-V assembly (.s) inferiors.

    Args:
        restart_policy: backoff schedule for debug-server crash recovery
            (see :class:`repro.mi.remote.MIRemoteTracker`).
        transport_factory: forwarded to :class:`MIClient` (fault
            injection hook, see :mod:`repro.testing.faults`).
    """

    backend = "GDB"

    def __init__(
        self,
        restart_policy: Optional[BackoffPolicy] = None,
        transport_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__(
            restart_policy=restart_policy, transport_factory=transport_factory
        )
        #: bkptno -> function, for exit breakpoints planted by the ret-scan
        self._exit_breakpoints: Dict[int, str] = {}
        #: bkptno -> function, for the matching entry breakpoints
        self._entry_breakpoints: Dict[int, str] = {}
        self._is_assembly = False

    def _load_program(self, path: str, args: List[str]) -> None:
        self._is_assembly = path.endswith((".s", ".S", ".asm"))
        super()._load_program(path, args)

    # ------------------------------------------------------------------
    # Substrate hooks (see MIRemoteTracker)
    # ------------------------------------------------------------------

    def _reset_backend_state(self) -> None:
        self._exit_breakpoints.clear()
        self._entry_breakpoints.clear()

    def _install_tracked(self, point: TrackedFunction) -> None:
        if self._is_assembly:
            self._track_function_via_ret_scan(point.function, point.maxdepth)
        else:
            super()._install_tracked(point)

    def _map_breakpoint_pause(
        self, payload: Dict[str, Any], line: Optional[int]
    ) -> Optional[PauseReason]:
        """Synthesize entry/exit pauses from ret-scan breakpoint numbers."""
        number = payload.get("bkptno")
        if number in self._exit_breakpoints:
            return PauseReason(
                type=PauseReasonType.RETURN,
                function=self._exit_breakpoints[number],
                line=line,
            )
        if number in self._entry_breakpoints:
            return PauseReason(
                type=PauseReasonType.CALL,
                function=self._entry_breakpoints[number],
                line=line,
            )
        return None

    def _track_function_via_ret_scan(
        self, function: str, maxdepth: Optional[int]
    ) -> None:
        """The paper's retq-scan, retargeted to RISC-V.

        Disassemble the function, find its return instruction(s), and plant
        address breakpoints there plus an entry breakpoint at the function.
        Works whenever the compiler/author used the common single-epilogue
        layout; multiple ``ret`` sites each get their own breakpoint.
        """
        listing = self._client.execute("-data-disassemble", [function])
        returns = [entry for entry in listing if entry["is_return"]]
        if not returns:
            raise TrackerError(
                f"no return instruction found in {function!r}; "
                "cannot track its exit"
            )
        entry = self._client.execute(
            "-break-insert", [function], _maxdepth(maxdepth)
        )
        self._entry_breakpoints[entry["number"]] = function
        for site in returns:
            planted = self._client.execute(
                "-break-insert",
                [f"*{site['address']:#x}"],
                _maxdepth(maxdepth),
            )
            self._exit_breakpoints[planted["number"]] = function

    # ------------------------------------------------------------------
    # GDB-tracker-specific extensions (named as in the paper)
    # ------------------------------------------------------------------

    def get_registers_gdb(self) -> Dict[str, int]:
        """All machine registers by name (assembly inferiors only)."""
        return self._execute("-data-list-register-values")

    def get_value_at_gdb(self, address: int, count: int) -> bytes:
        """Read ``count`` raw bytes of inferior memory at ``address``."""
        payload = self._execute(
            "-data-read-memory", [hex(address), str(count)]
        )
        return bytes.fromhex(payload["bytes"])

    def get_heap_blocks(self) -> Dict[int, int]:
        """Live heap blocks (address -> size) from the allocator registry."""
        payload = self._execute("-heap-blocks")
        return {int(address, 16): size for address, size in payload.items()}

    def disassemble(self, function: str) -> List[Dict[str, Any]]:
        """The function's instruction listing (assembly inferiors)."""
        return self._execute("-data-disassemble", [function])
