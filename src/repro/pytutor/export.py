"""Generate Python Tutor traces from a controlled execution.

Section III-E of the paper: instead of a full step-by-step trace, a
controller script can pause only where interesting (e.g. at the entry/exit
of one tracked function) and record only the variables it cares about —
producing a PT trace an order of magnitude smaller that the PT front-end
can still walk. Both modes live here:

- ``mode="full"``: one step per executed line (what PT itself records);
- ``mode="tracked"``: one step per entry/exit of ``track`` functions only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import TrackerError
from repro.core.pause import PauseReasonType
from repro.core.state import Frame, Variable
from repro.core.tracker import Tracker
from repro.pytutor.trace import (
    EVENT_CALL,
    EVENT_RETURN,
    EVENT_STEP,
    PTEncoder,
    PTFrame,
    PTStep,
    PTTrace,
)

_EVENT_BY_REASON = {
    PauseReasonType.STEP: EVENT_STEP,
    PauseReasonType.BREAKPOINT: EVENT_STEP,
    PauseReasonType.WATCH: EVENT_STEP,
    PauseReasonType.CALL: EVENT_CALL,
    PauseReasonType.RETURN: EVENT_RETURN,
}


def record_trace(
    program: str,
    mode: str = "full",
    track: Optional[List[str]] = None,
    variables: Optional[List[str]] = None,
    max_steps: int = 20000,
) -> PTTrace:
    """Run ``program`` under the Python tracker and record a PT trace.

    Args:
        program: path of the Python inferior.
        mode: ``"full"`` for a step per line; ``"tracked"`` for a step per
            entry/exit of the functions in ``track``.
        track: function names to track (required for ``mode="tracked"``).
        variables: if given, only these variable names are recorded —
            the "subset of variables chosen when generating the trace".
        max_steps: safety bound on recorded steps.

    Returns:
        The recorded :class:`PTTrace`.
    """
    from repro.pytracker.tracker import PythonTracker

    if mode not in ("full", "tracked"):
        raise TrackerError(f"unknown trace mode {mode!r}")
    if mode == "tracked" and not track:
        raise TrackerError("mode='tracked' needs at least one function name")

    tracker = PythonTracker(capture_output=True)
    tracker.load_program(program)
    for function in track or []:
        tracker.track_function(function)
    with open(program, "r", encoding="utf-8") as source:
        code = source.read()
    trace = PTTrace(code=code)
    tracker.start()
    try:
        if mode == "full":
            _record_full(tracker, trace, variables, max_steps)
        else:
            _record_tracked(tracker, trace, variables, max_steps)
    finally:
        tracker.terminate()
    return trace


def _record_full(
    tracker, trace: PTTrace, variables: Optional[List[str]], max_steps: int
) -> None:
    while tracker.get_exit_code() is None and len(trace.steps) < max_steps:
        trace.steps.append(build_step(tracker, variables))
        tracker.step()
    crash = tracker.get_inferior_exception()
    if crash is not None and trace.steps:
        # PT records uncaught exceptions as a final "exception" step.
        last = trace.steps[-1]
        trace.steps.append(
            PTStep(
                event="exception",
                line=last.line,
                func_name=last.func_name,
                stack_to_render=last.stack_to_render,
                globals=last.globals,
                ordered_globals=last.ordered_globals,
                heap=last.heap,
                stdout=tracker.get_output(),
            )
        )


def _record_tracked(
    tracker, trace: PTTrace, variables: Optional[List[str]], max_steps: int
) -> None:
    while tracker.get_exit_code() is None and len(trace.steps) < max_steps:
        tracker.resume()
        if tracker.get_exit_code() is not None:
            break
        reason = tracker.pause_reason
        if reason.type in (PauseReasonType.CALL, PauseReasonType.RETURN):
            trace.steps.append(build_step(tracker, variables))


def build_step(tracker: Tracker, variables: Optional[List[str]] = None) -> PTStep:
    """Snapshot the paused tracker into one PT trace step."""
    reason = tracker.pause_reason
    event = _EVENT_BY_REASON.get(reason.type, EVENT_STEP) if reason else EVENT_STEP
    encoder = PTEncoder()
    frames = list(reversed(tracker.get_frames()))  # outermost first, PT-style
    stack_to_render: List[PTFrame] = []
    module_variables: Dict[str, Variable] = {}
    for index, frame in enumerate(frames):
        if frame.name == "<module>":
            # PT shows module scope as the globals pane, not a stack frame.
            module_variables.update(frame.variables)
            continue
        stack_to_render.append(_encode_frame(frame, index, encoder, variables))
    if stack_to_render:
        stack_to_render[-1].is_highlighted = True
    try:
        global_variables = dict(tracker.get_global_variables())
    except TrackerError:
        global_variables = {}
    global_variables.update(module_variables)
    encoded_globals: Dict[str, object] = {}
    ordered_globals: List[str] = []
    for name, variable in global_variables.items():
        if variables is not None and name not in variables:
            continue
        ordered_globals.append(name)
        encoded_globals[name] = encoder.encode(variable.value)
    line = reason.line if reason and reason.line is not None else 0
    stdout = tracker.get_output() if hasattr(tracker, "get_output") else ""
    func_name = frames[-1].name if frames else "<module>"
    return PTStep(
        event=event,
        line=line,
        func_name=func_name,
        stack_to_render=stack_to_render,
        globals=encoded_globals,
        ordered_globals=ordered_globals,
        heap=encoder.heap,
        stdout=stdout,
    )


def _encode_frame(
    frame: Frame,
    frame_id: int,
    encoder: PTEncoder,
    variables: Optional[List[str]],
) -> PTFrame:
    encoded_locals: Dict[str, object] = {}
    ordered_varnames: List[str] = []
    for name, variable in frame.variables.items():
        if variables is not None and name not in variables:
            continue
        ordered_varnames.append(name)
        encoded_locals[name] = encoder.encode(variable.value)
    return PTFrame(
        func_name=frame.name,
        frame_id=frame_id,
        encoded_locals=encoded_locals,
        ordered_varnames=ordered_varnames,
    )
