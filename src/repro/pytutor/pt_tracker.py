"""The PT tracker: the full tracker API replayed over a recorded trace.

Section III-E of the paper: "one can also use an existing trace format and
navigate the trace with the EasyTracker API by implementing a dedicated
tracker... This enables the full power of control through the API on a
pre-generated trace." This tracker loads a Python Tutor JSON trace and
implements every control and inspection call over it — plus, because the
execution is recorded, *reverse* stepping (:meth:`step_back`), which stands
in for the paper's preliminary RR-based tracker.

The heavy lifting lives in :class:`repro.core.replay.ReplayTracker`: the
PT trace is converted into a delta-compressed timeline by the codec in
:mod:`repro.pytutor.timeline_codec`, and this subclass only pins the
PT-specific surfaces — inspection decoded straight from the recorded
steps (preserving heap identity sharing that a snapshot round-trip would
lose) and watch rendering over the raw PT encoding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import ProgramLoadError
from repro.core.replay import ReplayTracker
from repro.core.state import Frame, Variable
from repro.core.timeline import StateSnapshot
from repro.pytutor.timeline_codec import timeline_from_pt_trace
from repro.pytutor.trace import (
    PTStep,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)


class PTTracker(ReplayTracker):
    """Tracker backend replaying a recorded Python Tutor trace."""

    backend = "pt"

    def __init__(self) -> None:
        super().__init__()
        self.trace: Optional[PTTrace] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self.trace = PTTrace.load(path)
        if not self.trace.steps:
            raise ProgramLoadError(f"trace {path!r} contains no steps")
        self._timeline = timeline_from_pt_trace(self.trace)

    def step_back(self) -> None:
        """Reverse-step one recorded execution point (the RR stand-in)."""
        self._backward("step")

    def _current_step(self) -> PTStep:
        return self.trace.steps[self._index]

    # ------------------------------------------------------------------
    # Watch rendering over the raw PT encoding (pinned behavior: values
    # render as the repr of their encoded form, e.g. "1" or "['REF', 3]")
    # ------------------------------------------------------------------

    def _watch_render(
        self, snapshot: StateSnapshot, function: Optional[str], name: str
    ) -> Optional[str]:
        step = self._current_step()
        frames = step.stack_to_render
        if function is not None:
            for pt_frame in reversed(frames):
                if pt_frame.func_name == function:
                    if name in pt_frame.encoded_locals:
                        return repr(pt_frame.encoded_locals[name])
                    return None
            return None
        if frames and name in frames[-1].encoded_locals:
            return repr(frames[-1].encoded_locals[name])
        if name in step.globals:
            return repr(step.globals[name])
        return None

    # ------------------------------------------------------------------
    # Inspection decoded directly from the recorded steps
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        return step_to_frame_chain(self._current_step())

    def _get_global_variables(self) -> Dict[str, Variable]:
        return step_globals(self._current_step())

    def _get_position(self) -> Tuple[str, Optional[int]]:
        return self._program or "<trace>", self._current_step().line

    def get_source_lines(self) -> List[str]:
        """The traced program's source, embedded in the trace itself."""
        return self.trace.code.splitlines()

    def get_output(self) -> str:
        """Inferior stdout recorded up to the current step."""
        return self._current_step().stdout
