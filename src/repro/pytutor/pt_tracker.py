"""The PT tracker: the full tracker API replayed over a recorded trace.

Section III-E of the paper: "one can also use an existing trace format and
navigate the trace with the EasyTracker API by implementing a dedicated
tracker... This enables the full power of control through the API on a
pre-generated trace." This tracker loads a Python Tutor JSON trace and
implements every control and inspection call over it — plus, because the
execution is recorded, *reverse* stepping (:meth:`step_back`), which stands
in for the paper's preliminary RR-based tracker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import NotPausedError, ProgramLoadError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import Frame, Variable
from repro.core.tracker import Tracker
from repro.pytutor.trace import (
    EVENT_CALL,
    EVENT_RETURN,
    PTStep,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)

_MISSING = object()


class PTTracker(Tracker):
    """Tracker backend replaying a recorded Python Tutor trace."""

    backend = "pt"

    def __init__(self) -> None:
        super().__init__()
        self.trace: Optional[PTTrace] = None
        self._index = -1
        self._watch_snapshots: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self.trace = PTTrace.load(path)
        if not self.trace.steps:
            raise ProgramLoadError(f"trace {path!r} contains no steps")

    def _start(self) -> None:
        self._index = 0
        self._mark_pause(PauseReason(type=PauseReasonType.STEP,
                                     line=self._current_step().line))

    def _terminate(self) -> None:
        self._index = len(self.trace.steps)

    def _allows_post_exit_inspection(self) -> bool:
        # A trace is immutable history: the final state stays inspectable.
        return True

    # ------------------------------------------------------------------
    # Control: walk the recorded steps
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._advance(lambda step, depth0: self._control_point(step))

    def _current_step(self) -> PTStep:
        return self.trace.steps[self._index]

    def _current_depth(self) -> int:
        return len(self._current_step().stack_to_render)

    def _step(self) -> None:
        self._advance(lambda step, depth0: PauseReason(
            type=PauseReasonType.STEP, line=step.line))

    # base-class hooks ---------------------------------------------------

    def _next(self) -> None:
        depth0 = self._current_depth()
        self._advance(
            lambda step, _d: (
                self._control_point(step)
                or (
                    PauseReason(type=PauseReasonType.STEP, line=step.line)
                    if len(step.stack_to_render) <= depth0
                    else None
                )
            )
        )

    def _finish(self) -> None:
        depth0 = self._current_depth()
        self._advance(
            lambda step, _d: (
                self._control_point(step)
                or (
                    PauseReason(type=PauseReasonType.STEP, line=step.line)
                    if len(step.stack_to_render) < depth0
                    else None
                )
            )
        )

    def _advance(self, decide) -> None:
        while True:
            self._index += 1
            if self._index >= len(self.trace.steps):
                self._index = len(self.trace.steps) - 1
                self._exit_code = 0
                self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
                return
            step = self.trace.steps[self._index]
            reason = decide(step, None)
            if reason is not None:
                self._mark_pause(reason)
                return

    def step_back(self) -> None:
        """Reverse-step one recorded execution point (the RR stand-in)."""
        if self._index <= 0:
            raise NotPausedError("already at the first recorded step")
        self._index -= 1
        self._exit_code = None
        step = self._current_step()
        self._mark_pause(PauseReason(type=PauseReasonType.STEP, line=step.line))

    def _mark_pause(self, reason: PauseReason) -> None:
        self._pause_reason = reason
        step = self._current_step()
        self.last_lineno = self.next_lineno
        self.next_lineno = step.line

    # ------------------------------------------------------------------
    # Control points evaluated against recorded steps
    # ------------------------------------------------------------------

    def _control_point(self, step: PTStep) -> Optional[PauseReason]:
        depth = len(step.stack_to_render)
        watch_hit = self._check_watches(step, depth)
        if watch_hit is not None:
            return watch_hit
        for breakpoint_ in self.line_breakpoints:
            if (
                breakpoint_.enabled
                and breakpoint_.line == step.line
                and self._depth_allows(breakpoint_.maxdepth, depth)
            ):
                return PauseReason(
                    type=PauseReasonType.BREAKPOINT, line=step.line
                )
        for breakpoint_ in self.function_breakpoints:
            if (
                breakpoint_.enabled
                and step.event == EVENT_CALL
                and step.func_name == breakpoint_.function
                and self._depth_allows(breakpoint_.maxdepth, depth)
            ):
                return PauseReason(
                    type=PauseReasonType.BREAKPOINT,
                    function=step.func_name,
                    line=step.line,
                )
        for tracked in self.tracked_functions:
            if not tracked.enabled or step.func_name != tracked.function:
                continue
            if not self._depth_allows(tracked.maxdepth, depth):
                continue
            if step.event == EVENT_CALL:
                return PauseReason(
                    type=PauseReasonType.CALL,
                    function=step.func_name,
                    line=step.line,
                )
            if step.event == EVENT_RETURN:
                return PauseReason(
                    type=PauseReasonType.RETURN,
                    function=step.func_name,
                    line=step.line,
                )
        return None

    def _check_watches(self, step: PTStep, depth: int) -> Optional[PauseReason]:
        for watchpoint in self.watchpoints:
            if not watchpoint.enabled:
                continue
            function, name = watchpoint.split()
            rendered = self._render_in_step(step, function, name)
            key = id(watchpoint)
            previous = self._watch_snapshots.get(key, _MISSING)
            self._watch_snapshots[key] = rendered
            if previous is _MISSING and rendered is _MISSING:
                continue
            if previous != rendered and rendered is not _MISSING:
                if self._depth_allows(watchpoint.maxdepth, depth):
                    return PauseReason(
                        type=PauseReasonType.WATCH,
                        variable=watchpoint.variable_id,
                        old_value=None if previous is _MISSING else previous,
                        new_value=rendered,
                        line=step.line,
                    )
        return None

    def _render_in_step(
        self, step: PTStep, function: Optional[str], name: str
    ):
        frames = step.stack_to_render
        if function is not None:
            for pt_frame in reversed(frames):
                if pt_frame.func_name == function:
                    if name in pt_frame.encoded_locals:
                        return repr(pt_frame.encoded_locals[name])
                    return _MISSING
            return _MISSING
        if frames and name in frames[-1].encoded_locals:
            return repr(frames[-1].encoded_locals[name])
        if name in step.globals:
            return repr(step.globals[name])
        return _MISSING

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        return step_to_frame_chain(self._current_step())

    def _get_global_variables(self) -> Dict[str, Variable]:
        return step_globals(self._current_step())

    def _get_position(self) -> Tuple[str, Optional[int]]:
        return self._program or "<trace>", self._current_step().line

    def get_source_lines(self) -> List[str]:
        """The traced program's source, embedded in the trace itself."""
        return self.trace.code.splitlines()

    def get_output(self) -> str:
        """Inferior stdout recorded up to the current step."""
        return self._current_step().stdout

    @property
    def step_index(self) -> int:
        """Position in the trace (useful for tools showing a timeline)."""
        return self._index

    @property
    def step_count(self) -> int:
        """Total number of recorded steps."""
        return len(self.trace.steps) if self.trace else 0
