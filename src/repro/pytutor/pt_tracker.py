"""The PT tracker: the full tracker API replayed over a recorded trace.

Section III-E of the paper: "one can also use an existing trace format and
navigate the trace with the EasyTracker API by implementing a dedicated
tracker... This enables the full power of control through the API on a
pre-generated trace." This tracker loads a Python Tutor JSON trace and
implements every control and inspection call over it — plus, because the
execution is recorded, *reverse* stepping (:meth:`step_back`), which stands
in for the paper's preliminary RR-based tracker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import NotPausedError, ProgramLoadError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import Frame, Variable
from repro.core.tracker import Tracker
from repro.pytutor.trace import (
    EVENT_CALL,
    EVENT_RETURN,
    PTStep,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)


class PTTracker(Tracker):
    """Tracker backend replaying a recorded Python Tutor trace."""

    backend = "pt"

    def __init__(self) -> None:
        super().__init__()
        self.trace: Optional[PTTrace] = None
        self._index = -1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self.trace = PTTrace.load(path)
        if not self.trace.steps:
            raise ProgramLoadError(f"trace {path!r} contains no steps")

    def _start(self) -> None:
        self._index = 0
        self._mark_pause(PauseReason(type=PauseReasonType.STEP,
                                     line=self._current_step().line))

    def _terminate(self) -> None:
        self._index = len(self.trace.steps)

    def _allows_post_exit_inspection(self) -> bool:
        # A trace is immutable history: the final state stays inspectable.
        return True

    # ------------------------------------------------------------------
    # Control: walk the recorded steps
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self.engine.arm("resume")
        self._advance()

    def _current_step(self) -> PTStep:
        return self.trace.steps[self._index]

    def _current_depth(self) -> int:
        return len(self._current_step().stack_to_render)

    def _step(self) -> None:
        self.engine.arm("step")
        self._advance()

    # base-class hooks ---------------------------------------------------

    def _next(self) -> None:
        self.engine.arm("next", self._current_depth())
        self._advance()

    def _finish(self) -> None:
        self.engine.arm("finish", self._current_depth())
        self._advance()

    def _advance(self) -> None:
        while True:
            self._index += 1
            if self._index >= len(self.trace.steps):
                self._index = len(self.trace.steps) - 1
                self._exit_code = 0
                self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
                self.engine.note_event("exit")
                self.engine.record_pause(PauseReasonType.EXIT)
                return
            reason = self._decide(self.trace.steps[self._index])
            if reason is not None:
                self._mark_pause(reason)
                return

    def _decide(self, step: PTStep) -> Optional[PauseReason]:
        """One recorded step in, pause decision out — all via the engine."""
        engine = self.engine
        engine.refresh()
        engine.note_event(step.event or "step")
        depth = len(step.stack_to_render)
        # A plain step pauses at the very next recorded point, before any
        # control point gets a look — matching the live trackers, where a
        # step lands on the next line unconditionally.
        if engine.mode != "step":
            reason = self._control_point(step, depth)
            if reason is not None:
                return reason
        if engine.should_step_pause(depth):
            return PauseReason(type=PauseReasonType.STEP, line=step.line)
        return None

    def step_back(self) -> None:
        """Reverse-step one recorded execution point (the RR stand-in)."""
        if self._index <= 0:
            raise NotPausedError("already at the first recorded step")
        self._index -= 1
        self._exit_code = None
        step = self._current_step()
        self._mark_pause(PauseReason(type=PauseReasonType.STEP, line=step.line))

    def _mark_pause(self, reason: PauseReason) -> None:
        self.engine.record_pause(reason.type)
        self._pause_reason = reason
        step = self._current_step()
        self.last_lineno = self.next_lineno
        self.next_lineno = step.line

    # ------------------------------------------------------------------
    # Control points evaluated against recorded steps
    # ------------------------------------------------------------------

    def _control_point(
        self, step: PTStep, depth: int
    ) -> Optional[PauseReason]:
        engine = self.engine
        if engine.has_watchpoints:
            hit = engine.evaluate_watches(
                depth,
                lambda function, name: self._render_in_step(
                    step, function, name
                ),
            )
            if hit is not None:
                watchpoint, old, new = hit
                return PauseReason(
                    type=PauseReasonType.WATCH,
                    variable=watchpoint.variable_id,
                    old_value=old,
                    new_value=new,
                    line=step.line,
                )
        if engine.may_match_line(step.line):
            if engine.match_line(None, step.line, depth) is not None:
                return PauseReason(
                    type=PauseReasonType.BREAKPOINT, line=step.line
                )
        if step.func_name and engine.may_match_function(step.func_name):
            if step.event == EVENT_CALL:
                if (
                    engine.match_function_breakpoint(step.func_name, depth)
                    is not None
                ):
                    return PauseReason(
                        type=PauseReasonType.BREAKPOINT,
                        function=step.func_name,
                        line=step.line,
                    )
            if step.event in (EVENT_CALL, EVENT_RETURN):
                if engine.match_tracked(step.func_name, depth) is not None:
                    return PauseReason(
                        type=(
                            PauseReasonType.CALL
                            if step.event == EVENT_CALL
                            else PauseReasonType.RETURN
                        ),
                        function=step.func_name,
                        line=step.line,
                    )
        return None

    def _render_in_step(
        self, step: PTStep, function: Optional[str], name: str
    ) -> Optional[str]:
        frames = step.stack_to_render
        if function is not None:
            for pt_frame in reversed(frames):
                if pt_frame.func_name == function:
                    if name in pt_frame.encoded_locals:
                        return repr(pt_frame.encoded_locals[name])
                    return None
            return None
        if frames and name in frames[-1].encoded_locals:
            return repr(frames[-1].encoded_locals[name])
        if name in step.globals:
            return repr(step.globals[name])
        return None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        return step_to_frame_chain(self._current_step())

    def _get_global_variables(self) -> Dict[str, Variable]:
        return step_globals(self._current_step())

    def _get_position(self) -> Tuple[str, Optional[int]]:
        return self._program or "<trace>", self._current_step().line

    def get_source_lines(self) -> List[str]:
        """The traced program's source, embedded in the trace itself."""
        return self.trace.code.splitlines()

    def get_output(self) -> str:
        """Inferior stdout recorded up to the current step."""
        return self._current_step().stdout

    @property
    def step_index(self) -> int:
        """Position in the trace (useful for tools showing a timeline)."""
        return self._index

    @property
    def step_count(self) -> int:
        """Total number of recorded steps."""
        return len(self.trace.steps) if self.trace else 0
