"""Python Tutor (PT) execution-trace model and value encoding.

Python Tutor's front-end walks a JSON trace: one entry per execution point,
each carrying the event kind, position, the stack with encoded locals,
encoded globals, a heap dictionary, and accumulated stdout. This module
implements that trace format (the subset the PT front-end needs to render
frames and heap objects) plus lossless conversion between PT's value
encoding and our abstract :class:`~repro.core.state.Value` model:

- primitives encode as themselves;
- references encode as ``["REF", heap_id]``;
- heap objects encode as ``["LIST", ...]``, ``["TUPLE", ...]``,
  ``["DICT", [k, v], ...]``, ``["INSTANCE", class, [name, v], ...]`` or
  ``["FUNCTION", name, null]``, keyed by heap id in the step's heap dict.

Section III-E of the paper uses this in both directions: *generating* a PT
trace from a controlled execution (so the PT front-end can display it), and
*replaying* an existing PT trace behind the tracker API.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ProgramLoadError
from repro.core.state import AbstractType, Frame, Location, Value, Variable

#: PT event names for the execution points we record.
EVENT_STEP = "step_line"
EVENT_CALL = "call"
EVENT_RETURN = "return"
EVENT_EXCEPTION = "exception"


@dataclass
class PTFrame:
    """One rendered stack frame of a PT trace step."""

    func_name: str
    frame_id: int
    encoded_locals: Dict[str, Any] = field(default_factory=dict)
    ordered_varnames: List[str] = field(default_factory=list)
    is_highlighted: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "func_name": self.func_name,
            "frame_id": self.frame_id,
            "encoded_locals": self.encoded_locals,
            "ordered_varnames": self.ordered_varnames,
            "is_highlighted": self.is_highlighted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PTFrame":
        return cls(
            func_name=data["func_name"],
            frame_id=data["frame_id"],
            encoded_locals=data.get("encoded_locals", {}),
            ordered_varnames=data.get("ordered_varnames", []),
            is_highlighted=data.get("is_highlighted", False),
        )


@dataclass
class PTStep:
    """One execution point of a PT trace."""

    event: str
    line: int
    func_name: str
    stack_to_render: List[PTFrame] = field(default_factory=list)
    globals: Dict[str, Any] = field(default_factory=dict)
    ordered_globals: List[str] = field(default_factory=list)
    heap: Dict[str, Any] = field(default_factory=dict)
    stdout: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": self.event,
            "line": self.line,
            "func_name": self.func_name,
            "stack_to_render": [f.to_dict() for f in self.stack_to_render],
            "globals": self.globals,
            "ordered_globals": self.ordered_globals,
            "heap": self.heap,
            "stdout": self.stdout,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PTStep":
        return cls(
            event=data["event"],
            line=data["line"],
            func_name=data.get("func_name", ""),
            stack_to_render=[
                PTFrame.from_dict(f) for f in data.get("stack_to_render", [])
            ],
            globals=data.get("globals", {}),
            ordered_globals=data.get("ordered_globals", []),
            heap=data.get("heap", {}),
            stdout=data.get("stdout", ""),
        )


@dataclass
class PTTrace:
    """A complete PT trace: the program text and its execution points."""

    code: str
    steps: List[PTStep] = field(default_factory=list)
    language: str = "py3"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "language": self.language,
            "trace": [step.to_dict() for step in self.steps],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as output:
            output.write(self.dumps())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PTTrace":
        return cls(
            code=data.get("code", ""),
            language=data.get("language", "py3"),
            steps=[PTStep.from_dict(step) for step in data.get("trace", [])],
        )

    @classmethod
    def loads(cls, text: str) -> "PTTrace":
        try:
            return cls.from_dict(json.loads(text))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ProgramLoadError(f"not a PT trace: {error}") from error

    @classmethod
    def load(cls, path: str) -> "PTTrace":
        with open(path, "r", encoding="utf-8") as source:
            return cls.loads(source.read())


# ---------------------------------------------------------------------------
# Value model -> PT encoding
# ---------------------------------------------------------------------------


class PTEncoder:
    """Encodes :class:`Value` graphs into PT's (value, heap) representation.

    One encoder is used per step so the heap dict accumulates every object
    referenced from that step's frames, with sharing preserved through heap
    ids (we use the model's addresses).
    """

    def __init__(self) -> None:
        self.heap: Dict[str, Any] = {}
        self._next_synthetic_id = 1

    def encode(self, value: Value) -> Any:
        """Encode one value; heap objects are interned into :attr:`heap`."""
        kind = value.abstract_type
        if kind is AbstractType.PRIMITIVE:
            content = value.content
            if isinstance(content, bytes):
                return content.decode("latin-1")
            return content
        if kind is AbstractType.NONE:
            return None
        if kind is AbstractType.INVALID:
            # Heap-located invalid values (decoded from a SPECIAL_FLOAT heap
            # entry) go back to the heap, so REFs at them stay REFs.
            if value.location is Location.HEAP and value.address is not None:
                return ["REF", self._intern(value)]
            return ["SPECIAL_FLOAT", "<invalid>"]
        if kind is AbstractType.REF:
            return ["REF", self._intern(value.content)]
        # Bare aggregates (e.g. C arrays inlined in a frame) also go to the
        # heap so the front-end can draw arrows at them.
        return ["REF", self._intern(value)]

    def _heap_id(self, value: Value) -> int:
        if value.address is not None:
            return value.address
        synthetic = self._next_synthetic_id
        self._next_synthetic_id += 1
        return -synthetic

    def _intern(self, value: Value) -> int:
        heap_id = self._heap_id(value)
        key = str(heap_id)
        if key in self.heap:
            return heap_id
        kind = value.abstract_type
        if kind is AbstractType.PRIMITIVE:
            content = value.content
            if isinstance(content, bytes):
                content = content.decode("latin-1")
            self.heap[key] = ["HEAP_PRIMITIVE", value.language_type, content]
            return heap_id
        if kind is AbstractType.NONE:
            self.heap[key] = ["HEAP_PRIMITIVE", "NoneType", None]
            return heap_id
        if kind is AbstractType.FUNCTION:
            # The third slot is PT's enclosing-frame id for closures; a
            # decoded function carries it through so it round-trips.
            parent = getattr(value, "closure_parent", None)
            self.heap[key] = ["FUNCTION", value.content, parent]
            return heap_id
        if kind is AbstractType.INVALID:
            self.heap[key] = ["SPECIAL_FLOAT", "<invalid>"]
            return heap_id
        if kind is AbstractType.LIST:
            tag = "TUPLE" if value.language_type == "tuple" else "LIST"
            encoded: List[Any] = [tag]
            self.heap[key] = encoded  # intern before recursing (cycles)
            encoded.extend(self.encode(element) for element in value.content)
            return heap_id
        if kind is AbstractType.DICT:
            encoded = ["DICT"]
            self.heap[key] = encoded
            encoded.extend(
                [self.encode(k), self.encode(v)] for k, v in value.content.items()
            )
            return heap_id
        if kind is AbstractType.STRUCT:
            encoded = ["INSTANCE", value.language_type]
            self.heap[key] = encoded
            encoded.extend(
                [name, self.encode(v)] for name, v in value.content.items()
            )
            return heap_id
        if kind is AbstractType.REF:
            # A REF stored inside a container: chase to the target.
            return self._intern(value.content)
        raise TypeError(f"cannot encode {kind}")  # pragma: no cover


# ---------------------------------------------------------------------------
# PT encoding -> Value model (for trace replay)
# ---------------------------------------------------------------------------


class PTDecoder:
    """Decodes one step's (encoded value, heap) pairs back into Values."""

    def __init__(self, heap: Dict[str, Any]):
        self.heap = heap
        self._memo: Dict[str, Value] = {}

    def decode(self, encoded: Any, location: Location = Location.STACK) -> Value:
        if encoded is None:
            return Value(AbstractType.NONE, None, location=location)
        if isinstance(encoded, (int, float, str, bool)):
            return Value(
                AbstractType.PRIMITIVE,
                encoded,
                location=location,
                language_type=type(encoded).__name__,
            )
        if isinstance(encoded, list) and encoded and encoded[0] == "REF":
            target = self._decode_heap(str(encoded[1]))
            return Value(
                AbstractType.REF, target, location=location,
                language_type=target.language_type,
            )
        if isinstance(encoded, list) and encoded and encoded[0] == "SPECIAL_FLOAT":
            return Value(AbstractType.INVALID, None, location=location)
        raise ProgramLoadError(f"unknown PT encoding: {encoded!r}")

    def _decode_heap(self, key: str) -> Value:
        if key in self._memo:
            return self._memo[key]
        encoded = self.heap.get(key)
        address = int(key) if key.lstrip("-").isdigit() else None
        if encoded is None:
            return Value(
                AbstractType.INVALID, None,
                location=Location.HEAP, address=address,
            )
        tag = encoded[0]
        if tag == "HEAP_PRIMITIVE":
            content = encoded[2]
            if content is None:
                # The encoder interns a heap-referenced None this way;
                # PRIMITIVE cannot legally hold None.
                value = Value(
                    AbstractType.NONE,
                    None,
                    location=Location.HEAP,
                    address=address,
                    language_type=encoded[1],
                )
            else:
                if encoded[1] == "bytes" and isinstance(content, str):
                    content = content.encode("latin-1")
                value = Value(
                    AbstractType.PRIMITIVE,
                    content,
                    location=Location.HEAP,
                    address=address,
                    language_type=encoded[1],
                )
            self._memo[key] = value
            return value
        if tag == "FUNCTION":
            value = Value(
                AbstractType.FUNCTION,
                encoded[1],
                location=Location.HEAP,
                address=address,
                language_type="function",
            )
            if len(encoded) > 2 and encoded[2] is not None:
                value.closure_parent = encoded[2]
            self._memo[key] = value
            return value
        if tag == "SPECIAL_FLOAT":
            value = Value(
                AbstractType.INVALID, None,
                location=Location.HEAP, address=address,
            )
            self._memo[key] = value
            return value
        if tag in ("LIST", "TUPLE"):
            value = Value(
                AbstractType.LIST,
                (),
                location=Location.HEAP,
                address=address,
                language_type="tuple" if tag == "TUPLE" else "list",
            )
            self._memo[key] = value
            value.content = tuple(
                self.decode(item, Location.HEAP) for item in encoded[1:]
            )
            return value
        if tag == "DICT":
            value = Value(
                AbstractType.DICT,
                {},
                location=Location.HEAP,
                address=address,
                language_type="dict",
            )
            self._memo[key] = value
            content: Dict[Value, Value] = {}
            for pair in encoded[1:]:
                key_value = _KeyedValue.wrap(self.decode(pair[0], Location.HEAP))
                content[key_value] = self.decode(pair[1], Location.HEAP)
            value.content = content
            return value
        if tag == "INSTANCE":
            value = Value(
                AbstractType.STRUCT,
                {},
                location=Location.HEAP,
                address=address,
                language_type=encoded[1],
            )
            self._memo[key] = value
            value.content = {
                pair[0]: self.decode(pair[1], Location.HEAP)
                for pair in encoded[2:]
            }
            return value
        raise ProgramLoadError(f"unknown PT heap tag: {tag!r}")


class _KeyedValue(Value):
    """Structurally hashable Value for decoded DICT keys."""

    @classmethod
    def wrap(cls, value: Value) -> "_KeyedValue":
        wrapped = cls.__new__(cls)
        wrapped.abstract_type = value.abstract_type
        wrapped.content = value.content
        wrapped.location = value.location
        wrapped.address = value.address
        wrapped.language_type = value.language_type
        return wrapped

    def __hash__(self) -> int:
        return hash((self.abstract_type, self.render()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.abstract_type is other.abstract_type
            and self.render() == other.render()
        )


def step_to_frame_chain(step: PTStep) -> Frame:
    """Rebuild the model :class:`Frame` chain from one trace step."""
    decoder = PTDecoder(step.heap)
    frames: List[Frame] = []
    for depth, pt_frame in enumerate(step.stack_to_render):
        variables = {
            name: Variable(
                name=name,
                value=decoder.decode(pt_frame.encoded_locals[name]),
                scope="local",
            )
            for name in pt_frame.ordered_varnames
            if name in pt_frame.encoded_locals
        }
        frames.append(
            Frame(
                name=pt_frame.func_name,
                depth=depth,
                variables=variables,
                line=step.line if depth == len(step.stack_to_render) - 1 else None,
            )
        )
    for inner, outer in zip(frames[::-1], frames[-2::-1]):
        inner.parent = outer
    if not frames:
        return Frame(name="<module>", depth=0, line=step.line)
    return frames[-1]


def step_globals(step: PTStep) -> Dict[str, Variable]:
    """Rebuild the model global variables from one trace step."""
    decoder = PTDecoder(step.heap)
    return {
        name: Variable(
            name=name,
            value=decoder.decode(step.globals[name], Location.GLOBAL),
            scope="global",
        )
        for name in step.ordered_globals
        if name in step.globals
    }
