"""Python Tutor interoperability: trace model, exporter, replay tracker."""

from repro.pytutor.export import build_step, record_trace
from repro.pytutor.pt_tracker import PTTracker
from repro.pytutor.trace import (
    EVENT_CALL,
    EVENT_EXCEPTION,
    EVENT_RETURN,
    EVENT_STEP,
    PTDecoder,
    PTEncoder,
    PTFrame,
    PTStep,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)

__all__ = [
    "EVENT_CALL",
    "EVENT_EXCEPTION",
    "EVENT_RETURN",
    "EVENT_STEP",
    "PTDecoder",
    "PTEncoder",
    "PTFrame",
    "PTStep",
    "PTTrace",
    "PTTracker",
    "build_step",
    "record_trace",
    "step_globals",
    "step_to_frame_chain",
]
