"""Python Tutor traces as a timeline codec.

Section III-E shows a recorded trace sitting behind the tracker API; this
module closes the loop by making the PT JSON format *one codec* for the
general :class:`repro.core.timeline.Timeline`: ``load_timeline()`` (and
therefore ``ReplayTracker.load_program``) accepts a PT trace file exactly
like a native ``.timeline.json``.

Each PT step becomes one :class:`StateSnapshot`; the snapshot ``depth``
is the PT stack depth (``len(stack_to_render)``), which intentionally
counts only function frames — the module frame is synthesized by
:func:`step_to_frame_chain` but contributes no depth, matching how the
live trackers number maxdepth.
"""

from __future__ import annotations

from typing import Any

from repro.core.timeline import (
    EVENT_LINE,
    StateSnapshot,
    Timeline,
    register_timeline_codec,
)
from repro.pytutor.trace import (
    PTStep,
    PTTrace,
    step_globals,
    step_to_frame_chain,
)


def snapshot_from_pt_step(step: PTStep) -> StateSnapshot:
    """Convert one recorded PT step into a :class:`StateSnapshot`."""
    frame = step_to_frame_chain(step)
    return StateSnapshot(
        frame=frame,
        globals=step_globals(step),
        filename="<trace>",
        line=step.line,
        depth=len(step.stack_to_render),
        stdout=step.stdout,
        event=step.event or EVENT_LINE,
        func_name=step.func_name or frame.name,
    )


def timeline_from_pt_trace(trace: PTTrace) -> Timeline:
    """Re-encode a whole PT trace as a delta-compressed timeline."""
    timeline = Timeline(program="<trace>", source=trace.code, backend="pt")
    for step in trace.steps:
        timeline.append(snapshot_from_pt_step(step))
    return timeline


def _sniff(data: Any) -> bool:
    return (
        isinstance(data, dict)
        and isinstance(data.get("trace"), list)
        and data.get("format") != Timeline.FORMAT
    )


def _build(data: Any) -> Timeline:
    return timeline_from_pt_trace(PTTrace.from_dict(data))


register_timeline_codec("pt", _sniff, _build)
