"""The debugging-learning game (paper Section III-D, Fig. 9).

Each level is a mini-C program moving a character on a map. The player must
find and fix the bug in the level's source so that the character reaches
the exit *with the door open* when the program runs. The game controller
uses the tracker API live: it watches the character's coordinates to animate
the map, breaks around ``check_key`` to detect the classic bug (walking over
the key without picking it up), and emits *incrementally useful hints*
generated from inspecting the level's variables while it runs — the kind of
control-dependent visualization a post-mortem trace cannot provide.

The bundled level reproduces the paper's example: ``check_key`` forgets the
``has_key = 1`` assignment, so the door stays closed at the exit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pause import PauseReasonType
from repro.core.state import AbstractType
from repro.gdbtracker.tracker import GDBTracker

#: The paper's Fig. 9 level, simplified: the character starts at (1, 1)
#: facing right, the key is at (3, 1), the exit door at (5, 3).
LEVEL1_BUGGY = """\
/* Level 1: bring the key to the exit door. */
typedef enum { RIGHT, DOWN, LEFT, UP } orientation;

int x = 1;
int y = 1;
orientation dir = RIGHT;
int has_key = 0;
int key_x = 3;
int key_y = 1;
int exit_x = 5;
int exit_y = 3;
int door_open = 0;

void check_key(void) {
    if (x == key_x && y == key_y) {
        /* BUG: the key is never picked up. */
    }
}

void forward(void) {
    switch (dir) {
    case RIGHT: x = x + 1; break;
    case DOWN:  y = y + 1; break;
    case LEFT:  x = x - 1; break;
    case UP:    y = y - 1; break;
    }
    check_key();
}

void turn_right(void) {
    dir = (dir + 1) % 4;
}

void verify_exit(void) {
    if (x == exit_x && y == exit_y && has_key) {
        door_open = 1;
    }
}

int main(void) {
    /* Movements are simulated for the example, as in the paper. */
    forward();
    forward();
    forward();
    forward();
    turn_right();
    forward();
    forward();
    verify_exit();
    return 0;
}
"""

#: The same level with the bug fixed (what the player should produce).
LEVEL1_FIXED = LEVEL1_BUGGY.replace(
    "        /* BUG: the key is never picked up. */",
    "        has_key = 1;",
)

#: Level 2: the key pickup works, but turn_left turns the wrong way, so
#: the character wanders off instead of reaching the exit.
LEVEL2_BUGGY = LEVEL1_FIXED.replace(
    """void turn_right(void) {
    dir = (dir + 1) % 4;
}""",
    """void turn_right(void) {
    dir = (dir + 1) % 4;
}

void turn_left(void) {
    dir = (dir + 1) % 4;  /* BUG: this turns right too */
}""",
).replace(
    """    forward();
    forward();
    forward();
    forward();
    turn_right();
    forward();
    forward();
    verify_exit();""",
    """    forward();
    forward();
    turn_right();
    forward();
    forward();
    turn_left();
    forward();
    forward();
    verify_exit();""",
)

LEVEL2_FIXED = LEVEL2_BUGGY.replace(
    "    dir = (dir + 1) % 4;  /* BUG: this turns right too */",
    "    dir = (dir + 3) % 4;",
)

MAP_WIDTH = 7
MAP_HEIGHT = 5


@dataclass
class GameResult:
    """Outcome of playing one level."""

    reached_exit: bool
    door_opened: bool
    has_key: bool
    path: List[Tuple[int, int]] = field(default_factory=list)
    hints: List[str] = field(default_factory=list)
    frames: List[str] = field(default_factory=list)

    @property
    def won(self) -> bool:
        return self.reached_exit and self.door_opened


def write_level(path: str, fixed: bool = False) -> str:
    """Write the bundled level source to ``path``; return the path."""
    with open(path, "w", encoding="utf-8") as output:
        output.write(LEVEL1_FIXED if fixed else LEVEL1_BUGGY)
    return path


def render_map(
    position: Tuple[int, int],
    key: Tuple[int, int],
    exit_pos: Tuple[int, int],
    has_key: bool,
    door_open: bool,
) -> str:
    """ASCII map: ``@`` character, ``K`` key, ``E``/``O`` closed/open door."""
    rows: List[str] = []
    for row in range(MAP_HEIGHT):
        cells: List[str] = []
        for column in range(MAP_WIDTH):
            if row in (0, MAP_HEIGHT - 1) or column in (0, MAP_WIDTH - 1):
                cells.append("#")
            elif (column, row) == position:
                cells.append("@")
            elif (column, row) == key and not has_key:
                cells.append("K")
            elif (column, row) == exit_pos:
                cells.append("O" if door_open else "E")
            else:
                cells.append(".")
        rows.append("".join(cells))
    return "\n".join(rows)


class DebugGame:
    """Plays one level under the GDB tracker, generating hints live."""

    def __init__(self, level_path: str):
        self.level_path = level_path

    def play(self, max_pauses: int = 200) -> GameResult:
        """Run the level; return what happened plus the generated hints."""
        tracker = GDBTracker()
        tracker.load_program(self.level_path)
        tracker.track_function("check_key")
        tracker.break_before_func("verify_exit")
        tracker.watch("x")
        tracker.watch("y")
        tracker.start()
        result = GameResult(reached_exit=False, door_opened=False, has_key=False)
        key = self._point(tracker, "key_x", "key_y")
        exit_pos = self._point(tracker, "exit_x", "exit_y")
        position = self._point(tracker, "x", "y")
        result.path.append(position)
        result.frames.append(
            render_map(position, key, exit_pos, False, False)
        )
        on_key_at_check = False
        pauses = 0
        try:
            while tracker.get_exit_code() is None and pauses < max_pauses:
                tracker.resume()
                pauses += 1
                if tracker.get_exit_code() is not None:
                    break
                reason = tracker.pause_reason
                if reason.type is PauseReasonType.WATCH:
                    position = self._point(tracker, "x", "y")
                    has_key = bool(self._int(tracker, "has_key"))
                    door_open = bool(self._int(tracker, "door_open"))
                    if not result.path or result.path[-1] != position:
                        result.path.append(position)
                        result.frames.append(
                            render_map(position, key, exit_pos, has_key, door_open)
                        )
                elif (
                    reason.type is PauseReasonType.CALL
                    and reason.function == "check_key"
                ):
                    on_key_at_check = self._point(tracker, "x", "y") == key
                elif (
                    reason.type is PauseReasonType.RETURN
                    and reason.function == "check_key"
                ):
                    has_key = bool(self._int(tracker, "has_key"))
                    if on_key_at_check and not has_key:
                        result.hints.append(
                            f"You are standing on the key at {key}, but after "
                            "check_key() returned, has_key is still 0 — "
                            "look closely at what check_key() does."
                        )
                elif (
                    reason.type is PauseReasonType.BREAKPOINT
                    and reason.function == "verify_exit"
                ):
                    # Let verify_exit finish, then inspect its effect.
                    tracker.finish()
                    if tracker.get_exit_code() is not None:
                        break
                    has_key = bool(self._int(tracker, "has_key"))
                    door_open = bool(self._int(tracker, "door_open"))
                    position = self._point(tracker, "x", "y")
                    result.reached_exit = position == exit_pos
                    result.door_opened = door_open
                    result.has_key = has_key
                    if result.reached_exit and not door_open:
                        result.hints.append(
                            "The character reached the exit but the door "
                            f"stayed closed: verify_exit() saw has_key={int(has_key)}."
                        )
                    if not result.reached_exit:
                        result.hints.append(
                            f"verify_exit() ran with the character at "
                            f"{position}, not at the exit {exit_pos} — watch "
                            "x, y and dir to see where the movement goes "
                            "wrong."
                        )
                    result.frames.append(
                        render_map(position, key, exit_pos, has_key, door_open)
                    )
        finally:
            tracker.terminate()
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _int(tracker: GDBTracker, name: str) -> int:
        variable = tracker.get_global_variables().get(name)
        if variable is None:
            return 0
        value = variable.value
        if value.abstract_type is AbstractType.PRIMITIVE and isinstance(
            value.content, int
        ):
            return value.content
        return 0

    @classmethod
    def _point(
        cls, tracker: GDBTracker, x_name: str, y_name: str
    ) -> Tuple[int, int]:
        return cls._int(tracker, x_name), cls._int(tracker, y_name)


def play_level(path: str) -> GameResult:
    """Convenience wrapper: play the level at ``path`` once."""
    return DebugGame(path).play()


def fix_and_replay(
    buggy_path: str, fixed_source: str = LEVEL1_FIXED
) -> Tuple[GameResult, GameResult]:
    """The full game loop, scripted: play, 'edit the source', play again.

    Returns (result before the fix, result after the fix).
    """
    before = play_level(buggy_path)
    with open(buggy_path, "w", encoding="utf-8") as output:
        output.write(fixed_source)
    after = play_level(buggy_path)
    return before, after
