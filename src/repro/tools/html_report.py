"""Self-contained HTML step players (the paper's course-material scenario).

The paper's introduction motivates *generated* representations for
"generating images and videos for the material complementing/replacing
lectures". This tool packages a per-step image sequence (as produced by the
steppers in :mod:`repro.tools`) into one self-contained HTML file with
keyboard/slider navigation — no server, no external assets; students open
the file and scrub through the execution.
"""

from __future__ import annotations

import base64
import html
import os
from typing import List, Optional, Sequence

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<title>{title}</title>
<style>
  body {{ font-family: sans-serif; margin: 1.5rem; background: #fafafa; }}
  h1 {{ font-size: 1.2rem; }}
  .controls {{ margin: 0.8rem 0; display: flex; gap: 0.6rem;
               align-items: center; }}
  button {{ font-size: 1rem; padding: 0.2rem 0.9rem; }}
  #slider {{ flex: 1; }}
  .frame {{ border: 1px solid #cccccc; background: white; padding: 0.6rem;
            min-height: 200px; }}
  .frame img {{ max-width: 100%; }}
  #counter {{ min-width: 6rem; text-align: right; color: #555555; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="controls">
  <button id="prev" title="left arrow">&#9664;</button>
  <button id="next" title="right arrow">&#9654;</button>
  <input type="range" id="slider" min="0" max="{last_index}" value="0"/>
  <span id="counter"></span>
</div>
<div class="frame"><img id="view" alt="execution step"/></div>
<script>
const frames = [{frames}];
let index = 0;
const view = document.getElementById("view");
const slider = document.getElementById("slider");
const counter = document.getElementById("counter");
function show(i) {{
  index = Math.max(0, Math.min(frames.length - 1, i));
  view.src = frames[index];
  slider.value = index;
  counter.textContent = (index + 1) + " / " + frames.length;
}}
document.getElementById("prev").onclick = () => show(index - 1);
document.getElementById("next").onclick = () => show(index + 1);
slider.oninput = () => show(Number(slider.value));
document.addEventListener("keydown", (event) => {{
  if (event.key === "ArrowLeft") show(index - 1);
  if (event.key === "ArrowRight") show(index + 1);
}});
show(0);
</script>
</body>
</html>
"""


def build_step_player(
    image_paths: Sequence[str],
    output_path: str,
    title: str = "Program execution",
) -> str:
    """Bundle SVG/PNG step images into one navigable HTML file.

    Args:
        image_paths: images in execution order (as returned by
            ``generate_diagrams`` or the other steppers).
        output_path: where to write the ``.html`` file.
        title: page heading.

    Returns:
        ``output_path``, for chaining.

    Raises:
        ValueError: if no images are given.
    """
    if not image_paths:
        raise ValueError("build_step_player needs at least one image")
    frames: List[str] = []
    for path in image_paths:
        with open(path, "rb") as image:
            payload = base64.b64encode(image.read()).decode("ascii")
        mime = "image/svg+xml" if path.endswith(".svg") else "image/png"
        frames.append(f'"data:{mime};base64,{payload}"')
    page = _PAGE_TEMPLATE.format(
        title=html.escape(title),
        last_index=len(frames) - 1,
        frames=",".join(frames),
    )
    with open(output_path, "w", encoding="utf-8") as output:
        output.write(page)
    return output_path


def record_execution_player(
    program: str,
    output_path: str,
    mode: str = "stack_heap",
    max_images: int = 200,
    workdir: Optional[str] = None,
) -> str:
    """One call from inferior source to a finished HTML player.

    Steps ``program`` with the Listing-1 tool, then bundles the diagrams.
    """
    import tempfile

    from repro.tools.stepper import generate_diagrams

    if workdir is None:
        with tempfile.TemporaryDirectory() as temp:
            images = generate_diagrams(program, temp, mode=mode,
                                       max_images=max_images)
            return build_step_player(
                images, output_path, title=os.path.basename(program)
            )
    images = generate_diagrams(program, workdir, mode=mode,
                               max_images=max_images)
    return build_step_player(
        images, output_path, title=os.path.basename(program)
    )
