"""The RISC-V registers-and-memory viewer (paper Section III-B, Fig. 7).

Shows the CPU registers — with the program counter and stack pointer
emphasized — next to the raw memory rendered as a one-dimensional array of
words, stepping the program line by line. State comes from the GDB
tracker's ``get_registers_gdb`` and ``get_value_at_gdb`` entry points,
exactly as in the paper.

Both a terminal rendering (the paper's tool used a split terminal) and an
SVG rendering are provided.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.gdbtracker.tracker import GDBTracker
from repro.viz.source import render_source, render_source_text
from repro.viz.svg import SVGCanvas, text_width

PC_COLOR = "#c0392b"
SP_COLOR = "#2980b9"
CHANGED_FILL = "#fff3b0"
WORDS_PER_ROW = 4


def render_registers_text(
    registers: Dict[str, int], changed: Optional[set] = None
) -> str:
    """Registers as a fixed-width table; changed ones marked with ``*``."""
    changed = changed or set()
    names = [name for name in registers if name != "pc"]
    rows: List[str] = [f"pc = {registers['pc']:#010x}"]
    for start in range(0, len(names), 4):
        cells = []
        for name in names[start : start + 4]:
            marker = "*" if name in changed else " "
            cells.append(f"{marker}{name:>4} = {registers[name] & 0xFFFFFFFF:#010x}")
        rows.append("  ".join(cells))
    return "\n".join(rows)


def render_memory_text(raw: bytes, base: int) -> str:
    """Memory as rows of little-endian words, one address column per row."""
    rows: List[str] = []
    for offset in range(0, len(raw), 4 * WORDS_PER_ROW):
        words = []
        for word_offset in range(offset, min(offset + 4 * WORDS_PER_ROW, len(raw)), 4):
            chunk = raw[word_offset : word_offset + 4]
            if len(chunk) < 4:
                chunk = chunk + b"\x00" * (4 - len(chunk))
            words.append(f"{int.from_bytes(chunk, 'little'):#010x}")
        rows.append(f"{base + offset:#010x}: " + " ".join(words))
    return "\n".join(rows)


def render_state_svg(
    registers: Dict[str, int],
    memory: bytes,
    memory_base: int,
    changed: Optional[set] = None,
) -> SVGCanvas:
    """One combined SVG: register grid on top, memory word array below."""
    changed = changed or set()
    canvas = SVGCanvas()
    canvas.text(14, 22, "registers", size=15, bold=True)
    cell_w, cell_h = 172, 22
    names = list(registers)
    for index, name in enumerate(names):
        column, row = index % 4, index // 4
        x = 14 + column * cell_w
        y = 34 + row * cell_h
        fill = CHANGED_FILL if name in changed else "#f7f7f7"
        if name == "pc":
            fill = "#fdecea"
        elif name == "sp":
            fill = "#eaf2fb"
        canvas.rect(x, y, cell_w - 4, cell_h - 2, fill=fill, stroke="#bbbbbb")
        color = PC_COLOR if name == "pc" else (SP_COLOR if name == "sp" else "black")
        canvas.text(
            x + 6,
            y + cell_h - 7,
            f"{name:>4} = {registers[name] & 0xFFFFFFFF:#010x}",
            size=12,
            fill=color,
            bold=name in ("pc", "sp"),
        )
    memory_top = 34 + ((len(names) + 3) // 4) * cell_h + 26
    canvas.text(14, memory_top - 8, "memory", size=15, bold=True)
    for row_index, offset in enumerate(range(0, len(memory), 4 * WORDS_PER_ROW)):
        y = memory_top + row_index * cell_h
        canvas.text(
            14, y + cell_h - 7, f"{memory_base + offset:#010x}:", size=12,
            fill="#777777",
        )
        for word_index in range(WORDS_PER_ROW):
            word_offset = offset + word_index * 4
            if word_offset >= len(memory):
                break
            chunk = memory[word_offset : word_offset + 4]
            if len(chunk) < 4:
                chunk = chunk + b"\x00" * (4 - len(chunk))
            x = 110 + word_index * 110
            canvas.rect(x, y, 104, cell_h - 2, fill="#f0f7f0", stroke="#bbbbbb")
            canvas.text(
                x + 6,
                y + cell_h - 7,
                f"{int.from_bytes(chunk, 'little'):#010x}",
                size=12,
            )
    return canvas


class RiscvViewer:
    """Step an assembly program, emitting register/memory views per line.

    Args:
        program: the ``.s`` inferior.
        memory_base: first address of the displayed memory window.
        memory_size: size of the window in bytes.
    """

    def __init__(self, program: str, memory_base: int, memory_size: int = 64):
        self.program = program
        self.memory_base = memory_base
        self.memory_size = memory_size

    def run(
        self, output_dir: Optional[str] = None, max_steps: int = 200
    ) -> List[Dict[str, object]]:
        """Execute step by step; return one state record per step.

        Each record holds ``registers``, ``memory`` (bytes), ``line`` and
        ``changed`` (register names modified by the previous step). When
        ``output_dir`` is given, ``riscv_NNN.svg`` and source listings are
        written there.
        """
        if output_dir is not None:
            os.makedirs(output_dir, exist_ok=True)
        tracker = GDBTracker()
        tracker.load_program(self.program)
        tracker.start()
        source_lines = tracker.get_source_lines()
        states: List[Dict[str, object]] = []
        previous: Optional[Dict[str, int]] = None
        try:
            step = 1
            while tracker.get_exit_code() is None and step <= max_steps:
                registers = tracker.get_registers_gdb()
                memory = tracker.get_value_at_gdb(
                    self.memory_base, self.memory_size
                )
                changed = set()
                if previous is not None:
                    changed = {
                        name
                        for name, value in registers.items()
                        if previous.get(name) != value and name != "pc"
                    }
                states.append(
                    {
                        "registers": registers,
                        "memory": memory,
                        "line": tracker.next_lineno,
                        "changed": changed,
                    }
                )
                if output_dir is not None:
                    render_state_svg(
                        registers, memory, self.memory_base, changed
                    ).save(os.path.join(output_dir, f"riscv_{step:03d}.svg"))
                    render_source(
                        source_lines, tracker.next_lineno, tracker.last_lineno
                    ).save(os.path.join(output_dir, f"riscv_{step:03d}_src.svg"))
                previous = registers
                tracker.step()
                step += 1
        finally:
            tracker.terminate()
        return states

    def run_text(self, max_steps: int = 50) -> str:
        """A terminal-friendly run: the split-pane view, concatenated."""
        panes: List[str] = []
        tracker = GDBTracker()
        tracker.load_program(self.program)
        tracker.start()
        source_lines = tracker.get_source_lines()
        try:
            step = 0
            while tracker.get_exit_code() is None and step < max_steps:
                registers = tracker.get_registers_gdb()
                memory = tracker.get_value_at_gdb(
                    self.memory_base, self.memory_size
                )
                panes.append(
                    "=" * 72
                    + "\n"
                    + render_source_text(
                        source_lines, tracker.next_lineno, context=3
                    )
                    + "\n\n"
                    + render_registers_text(registers)
                    + "\n\n"
                    + render_memory_text(memory, self.memory_base)
                )
                tracker.step()
                step += 1
        finally:
            tracker.terminate()
        return "\n".join(panes)
