"""Stack and stack-and-heap diagrams (paper Section III-A, Fig. 6).

Language-agnostic: both functions consume only the abstract state model, so
the same tool draws Python inferiors (where every variable is a REF into
the heap) and mini-C inferiors (where values can live in the stack and
pointers can target the stack). Invalid pointers are drawn as a cross, as
in Fig. 6(c).

- :func:`draw_stack` — the plain stack diagram of Fig. 6(a): one box per
  frame with *inlined* values for every type, including lists and tuples
  (the rendering a generic tool like Python Tutor cannot produce).
- :func:`draw_stack_heap` — Fig. 6(b)/(c): stack and globals on the left,
  heap objects on the right, reference arrows between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.state import AbstractType, Frame, Location, Value, Variable
from repro.core.timeline import StateSnapshot
from repro.viz.svg import SVGCanvas, text_width

ROW_HEIGHT = 24
CELL_PAD = 8
FRAME_GAP = 16
HEAP_GAP = 18
STACK_FILL = "#eaf2fb"
GLOBAL_FILL = "#fdf3e3"
HEAP_FILL = "#eef8ee"
TITLE_FILL = "#d3e3f5"


@dataclass
class _Anchors:
    """Arrow bookkeeping across the two columns."""

    #: value address -> (x, y) point an arrow may target
    targets: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    #: (x, y, target_address) arrow sources waiting for their target
    sources: List[Tuple[float, float, int]] = field(default_factory=list)
    #: (x, y) cells whose pointer is invalid (drawn as a cross)
    invalid: List[Tuple[float, float]] = field(default_factory=list)
    #: heap objects still to draw, in first-reference order
    queue: List[Value] = field(default_factory=list)
    queued: set = field(default_factory=set)

    def enqueue(self, value: Value) -> None:
        key = value.address if value.address is not None else id(value)
        if key not in self.queued:
            self.queued.add(key)
            self.queue.append(value)


def _frame_and_globals(
    frame: Union[Frame, StateSnapshot],
    global_variables: Optional[Dict[str, Variable]],
) -> Tuple[Frame, Optional[Dict[str, Variable]]]:
    """Both diagram entry points accept a Frame or a whole StateSnapshot."""
    if isinstance(frame, StateSnapshot):
        snapshot = frame
        if snapshot.frame is None:
            raise ValueError("this snapshot recorded no frames to draw")
        if global_variables is None:
            global_variables = dict(snapshot.globals)
        frame = snapshot.frame
    return frame, global_variables


def draw_stack(
    frame: Union[Frame, StateSnapshot],
    global_variables: Optional[Dict[str, Variable]] = None,
    title: str = "stack",
) -> SVGCanvas:
    """Draw the plain stack diagram: every value inlined into its frame box.

    ``frame`` may be the innermost :class:`Frame` or a whole
    :class:`StateSnapshot` (in which case the snapshot's globals are drawn
    too, unless ``global_variables`` overrides them).
    """
    frame, global_variables = _frame_and_globals(frame, global_variables)
    canvas = SVGCanvas()
    x, y = 16, 16
    if global_variables:
        y = _draw_plain_box(canvas, x, y, "globals", global_variables, GLOBAL_FILL)
        y += FRAME_GAP
    for stack_frame in reversed(frame.stack()):  # outermost (entry) on top
        label = f"{stack_frame.name} (depth {stack_frame.depth})"
        y = _draw_plain_box(
            canvas, x, y, label, stack_frame.variables, STACK_FILL
        )
        y += FRAME_GAP
    return canvas


def _draw_plain_box(
    canvas: SVGCanvas,
    x: float,
    y: float,
    label: str,
    variables: Dict[str, Variable],
    fill: str,
) -> float:
    rows = [
        (variable.name, _inline_render(variable.value))
        for variable in variables.values()
    ]
    width = max(
        [text_width(label, 14) + 2 * CELL_PAD]
        + [text_width(f"{name} = {value}", 14) + 2 * CELL_PAD for name, value in rows]
        + [120]
    )
    height = ROW_HEIGHT * (len(rows) + 1)
    canvas.rect(x, y, width, ROW_HEIGHT, fill=TITLE_FILL, rx=3)
    canvas.text(x + CELL_PAD, y + ROW_HEIGHT - 7, label, bold=True)
    canvas.rect(x, y, width, height, fill="none", rx=3)
    for index, (name, rendered) in enumerate(rows, start=1):
        row_y = y + index * ROW_HEIGHT
        canvas.rect(x, row_y, width, ROW_HEIGHT, fill=fill, stroke="#999999")
        canvas.text(
            x + CELL_PAD, row_y + ROW_HEIGHT - 7, f"{name} = {rendered}"
        )
    return y + height


def _inline_render(value: Value) -> str:
    """Inlined rendering: references are followed, not drawn as arrows."""
    kind = value.abstract_type
    if kind is AbstractType.REF:
        return _inline_render(value.content)
    if kind is AbstractType.LIST:
        inner = ", ".join(_inline_render(v) for v in value.content)
        if value.language_type == "tuple":
            return f"({inner})"
        return f"[{inner}]"
    if kind is AbstractType.DICT:
        inner = ", ".join(
            f"{_inline_render(k)}: {_inline_render(v)}"
            for k, v in value.content.items()
        )
        return f"{{{inner}}}"
    if kind is AbstractType.STRUCT:
        inner = ", ".join(
            f".{name}={_inline_render(v)}" for name, v in value.content.items()
        )
        return f"{{{inner}}}"
    if kind is AbstractType.PRIMITIVE:
        return repr(value.content)
    if kind is AbstractType.NONE:
        return "None"
    if kind is AbstractType.INVALID:
        return "✗"
    return f"<fn {value.content}>"


# ---------------------------------------------------------------------------
# Stack-and-heap diagram
# ---------------------------------------------------------------------------


def draw_stack_heap(
    frame: Union[Frame, StateSnapshot],
    global_variables: Optional[Dict[str, Variable]] = None,
    heap_blocks: Optional[Dict[int, int]] = None,
    title: str = "stack & heap",
) -> SVGCanvas:
    """Draw the stack-and-heap diagram with reference arrows.

    Args:
        frame: the innermost frame (parents are drawn too), or a whole
            :class:`StateSnapshot` (its globals are drawn unless
            ``global_variables`` overrides them).
        global_variables: drawn in their own box above the stack.
        heap_blocks: optional live-allocation map (address -> size) used to
            annotate mini-C heap objects with their block size.
    """
    frame, global_variables = _frame_and_globals(frame, global_variables)
    canvas = SVGCanvas()
    anchors = _Anchors()
    x, y = 16, 16
    column_width = 0.0
    boxes: List[Tuple[float, str, Dict[str, Variable], str]] = []
    if global_variables:
        boxes.append((y, "globals", global_variables, GLOBAL_FILL))
        y += ROW_HEIGHT * (len(global_variables) + 1) + FRAME_GAP
    for stack_frame in reversed(frame.stack()):
        boxes.append(
            (
                y,
                f"{stack_frame.name} (depth {stack_frame.depth})",
                stack_frame.variables,
                STACK_FILL,
            )
        )
        y += ROW_HEIGHT * (len(stack_frame.variables) + 1) + FRAME_GAP
    for box_y, label, variables, fill in boxes:
        width = _stack_box_width(label, variables)
        column_width = max(column_width, width)
    for box_y, label, variables, fill in boxes:
        _draw_ref_box(canvas, anchors, x, box_y, column_width, label, variables, fill)

    heap_x = x + column_width + 150
    heap_y = 16
    drawn = 0
    while anchors.queue:
        value = anchors.queue.pop(0)
        key = value.address if value.address is not None else id(value)
        if key in anchors.targets:
            continue
        heap_y = _draw_heap_object(
            canvas, anchors, heap_x, heap_y, value, heap_blocks
        )
        heap_y += HEAP_GAP
        drawn += 1
        if drawn > 200:  # defensive bound for pathological graphs
            break

    for source_x, source_y, target_address in anchors.sources:
        target = anchors.targets.get(target_address)
        if target is None:
            canvas.cross(source_x + 18, source_y)
            continue
        canvas.arrow(source_x, source_y, target[0], target[1], stroke="#2c3e50")
    for cross_x, cross_y in anchors.invalid:
        canvas.cross(cross_x + 18, cross_y)
    return canvas


def _stack_box_width(label: str, variables: Dict[str, Variable]) -> float:
    candidates = [text_width(label, 14) + 2 * CELL_PAD, 140.0]
    for variable in variables.values():
        rendered = _cell_preview(variable.value)
        candidates.append(
            text_width(f"{variable.name} = {rendered}", 14) + 44
        )
    return max(candidates)


def _cell_preview(value: Value) -> str:
    if value.abstract_type in (AbstractType.REF,):
        return "*"
    if value.abstract_type in (
        AbstractType.LIST,
        AbstractType.DICT,
        AbstractType.STRUCT,
    ):
        return _inline_render(value)
    return _inline_render(value)


def _draw_ref_box(
    canvas: SVGCanvas,
    anchors: _Anchors,
    x: float,
    y: float,
    width: float,
    label: str,
    variables: Dict[str, Variable],
    fill: str,
) -> None:
    canvas.rect(x, y, width, ROW_HEIGHT, fill=TITLE_FILL, rx=3)
    canvas.text(x + CELL_PAD, y + ROW_HEIGHT - 7, label, bold=True)
    height = ROW_HEIGHT * (len(variables) + 1)
    canvas.rect(x, y, width, height, fill="none", rx=3)
    for index, variable in enumerate(variables.values(), start=1):
        row_y = y + index * ROW_HEIGHT
        canvas.rect(x, row_y, width, ROW_HEIGHT, fill=fill, stroke="#999999")
        mid_y = row_y + ROW_HEIGHT / 2
        value = variable.value
        # The cell itself is addressable in C: register it as a target.
        if value.address is not None:
            anchors.targets[value.address] = (x, mid_y)
        label_text = f"{variable.name} = "
        canvas.text(x + CELL_PAD, row_y + ROW_HEIGHT - 7, label_text)
        content_x = x + CELL_PAD + text_width(label_text, 14)
        _draw_cell_content(
            canvas, anchors, content_x, mid_y, row_y, x + width, value
        )


def _draw_cell_content(
    canvas: SVGCanvas,
    anchors: _Anchors,
    content_x: float,
    mid_y: float,
    row_y: float,
    right_edge: float,
    value: Value,
) -> None:
    kind = value.abstract_type
    if kind is AbstractType.REF:
        target = value.content
        canvas.rect(content_x, mid_y - 4, 8, 8, fill="#2c3e50")
        if target.abstract_type is AbstractType.INVALID:
            anchors.invalid.append((content_x + 8, mid_y))
            return
        address = target.address if target.address is not None else id(target)
        anchors.sources.append((content_x + 8, mid_y, address))
        if target.location is not Location.STACK:
            anchors.enqueue(target)
        return
    if kind is AbstractType.INVALID:
        anchors.invalid.append((content_x, mid_y))
        return
    rendered = _inline_render(value)
    canvas.text(content_x, row_y + ROW_HEIGHT - 7, rendered)
    # Inline aggregates in the stack (C arrays/structs): anchor their
    # elements so pointers into the stack resolve.
    if value.address is not None:
        anchors.targets.setdefault(value.address, (content_x - 4, mid_y))


def _draw_heap_object(
    canvas: SVGCanvas,
    anchors: _Anchors,
    x: float,
    y: float,
    value: Value,
    heap_blocks: Optional[Dict[int, int]],
) -> float:
    """Draw one heap object; register anchors; return the new bottom y."""
    key = value.address if value.address is not None else id(value)
    kind = value.abstract_type
    label = value.language_type or kind.value
    if heap_blocks and value.address in heap_blocks:
        label += f" ({heap_blocks[value.address]} bytes)"
    if kind is AbstractType.LIST:
        cells = [_cell_text(element) for element in value.content] or ["(empty)"]
        cell_widths = [max(text_width(text, 13) + 12, 26) for text in cells]
        canvas.text(x, y + 12, label, size=12, fill="#777777")
        top = y + 18
        anchors.targets[key] = (x - 4, top + ROW_HEIGHT / 2)
        cell_x = x
        for element, text, width in zip(value.content, cells, cell_widths):
            canvas.rect(cell_x, top, width, ROW_HEIGHT, fill=HEAP_FILL)
            element_key = (
                element.address if element.address is not None else id(element)
            )
            anchors.targets.setdefault(
                element_key, (cell_x, top + ROW_HEIGHT / 2)
            )
            if _needs_arrow(element):
                canvas.rect(cell_x + width / 2 - 4, top + ROW_HEIGHT / 2 - 4, 8, 8,
                            fill="#2c3e50")
                target = (
                    element.content
                    if element.abstract_type is AbstractType.REF
                    else element
                )
                if target.abstract_type is AbstractType.INVALID:
                    anchors.invalid.append(
                        (cell_x + width / 2, top + ROW_HEIGHT / 2)
                    )
                else:
                    target_key = (
                        target.address if target.address is not None else id(target)
                    )
                    anchors.sources.append(
                        (cell_x + width / 2, top + ROW_HEIGHT, target_key)
                    )
                    anchors.enqueue(target)
            else:
                canvas.text(cell_x + 6, top + ROW_HEIGHT - 7, text, size=13)
            cell_x += width
        if not value.content:
            canvas.rect(x, top, 60, ROW_HEIGHT, fill=HEAP_FILL)
            canvas.text(x + 6, top + ROW_HEIGHT - 7, "(empty)", size=13)
        return top + ROW_HEIGHT
    if kind in (AbstractType.DICT, AbstractType.STRUCT):
        entries: List[Tuple[str, Value]] = []
        if kind is AbstractType.DICT:
            entries = [
                (_cell_text(k), v) for k, v in value.content.items()
            ]
        else:
            entries = list(value.content.items())
        canvas.text(x, y + 12, label, size=12, fill="#777777")
        top = y + 18
        anchors.targets[key] = (x - 4, top + ROW_HEIGHT / 2)
        width = max(
            [text_width(f"{name}: ", 13) + 90 for name, _ in entries] + [110.0]
        )
        for index, (name, element) in enumerate(entries):
            row_y = top + index * ROW_HEIGHT
            canvas.rect(x, row_y, width, ROW_HEIGHT, fill=HEAP_FILL)
            canvas.text(x + 6, row_y + ROW_HEIGHT - 7, f"{name}: ", size=13)
            content_x = x + 6 + text_width(f"{name}: ", 13)
            element_key = (
                element.address if element.address is not None else id(element)
            )
            anchors.targets.setdefault(element_key, (x, row_y + ROW_HEIGHT / 2))
            if _needs_arrow(element):
                canvas.rect(content_x, row_y + ROW_HEIGHT / 2 - 4, 8, 8,
                            fill="#2c3e50")
                target = (
                    element.content
                    if element.abstract_type is AbstractType.REF
                    else element
                )
                if target.abstract_type is AbstractType.INVALID:
                    anchors.invalid.append((content_x + 8, row_y + ROW_HEIGHT / 2))
                else:
                    target_key = (
                        target.address if target.address is not None else id(target)
                    )
                    anchors.sources.append(
                        (content_x + 8, row_y + ROW_HEIGHT / 2, target_key)
                    )
                    anchors.enqueue(target)
            else:
                canvas.text(
                    content_x, row_y + ROW_HEIGHT - 7, _cell_text(element),
                    size=13,
                )
        if not entries:
            canvas.rect(x, top, width, ROW_HEIGHT, fill=HEAP_FILL)
            canvas.text(x + 6, top + ROW_HEIGHT - 7, "(empty)", size=13)
            return top + ROW_HEIGHT
        return top + len(entries) * ROW_HEIGHT
    # Scalar heap object (Python int/str..., C malloc'd scalar, function).
    text = _inline_render(value)
    width = max(text_width(text, 13) + 16, 40)
    canvas.text(x, y + 12, label, size=12, fill="#777777")
    top = y + 18
    canvas.rect(x, top, width, ROW_HEIGHT, fill=HEAP_FILL)
    canvas.text(x + 8, top + ROW_HEIGHT - 7, text, size=13)
    anchors.targets[key] = (x - 4, top + ROW_HEIGHT / 2)
    return top + ROW_HEIGHT


def _needs_arrow(value: Value) -> bool:
    """Whether a container element draws as a pointer bullet + arrow."""
    if value.abstract_type is AbstractType.REF:
        return True
    return value.abstract_type in (
        AbstractType.LIST,
        AbstractType.DICT,
        AbstractType.STRUCT,
    )


def _cell_text(value: Value) -> str:
    if value.abstract_type is AbstractType.PRIMITIVE:
        return repr(value.content)
    if value.abstract_type is AbstractType.NONE:
        return "None"
    if value.abstract_type is AbstractType.INVALID:
        return "✗"
    if value.abstract_type is AbstractType.FUNCTION:
        return f"<fn {value.content}>"
    return _inline_render(value)
