"""The language-agnostic step-and-draw tool of the paper's Listing 1.

Steps through every line of the inferior and generates one image per
executed line — the control loop is exactly the paper's::

    tracker = init_tracker("python" if inf.endswith(".py") else "GDB")
    tracker.load_program(inf)
    tracker.start()
    while tracker.get_exit_code() is None:
        frame = tracker.get_current_frame()
        draw_stack_heap(frame, f"img{img_count}.svg")
        tracker.step()

Only the tracker-initialization line is language-specific; data
representation and program control are language-agnostic.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.core.factory import init_tracker
from repro.tools.stack_diagram import draw_stack, draw_stack_heap


def generate_diagrams(
    program: str,
    output_dir: str,
    mode: str = "stack_heap",
    include_globals: bool = True,
    max_images: int = 200,
) -> List[str]:
    """Step through ``program`` and write one diagram per executed line.

    Args:
        program: inferior path; ``.py`` uses the Python tracker, ``.c``/
            ``.s`` the GDB tracker (as in the paper's Listing 1).
        output_dir: where the ``NNN-stack[_heap].svg`` files go.
        mode: ``"stack"`` (Fig. 6a) or ``"stack_heap"`` (Fig. 6b/c).
        include_globals: draw the globals box too.
        max_images: stop after this many steps (safety bound).

    Returns:
        The list of image paths written, in execution order.
    """
    os.makedirs(output_dir, exist_ok=True)
    tracker = init_tracker("python" if program.endswith(".py") else "GDB")
    tracker.load_program(program)
    tracker.start()
    written: List[str] = []
    try:
        image_count = 1
        while tracker.get_exit_code() is None and image_count <= max_images:
            frame = tracker.get_current_frame()
            global_variables = (
                tracker.get_global_variables() if include_globals else None
            )
            if mode == "stack":
                canvas = draw_stack(frame, global_variables)
                name = f"{image_count:03d}-stack.svg"
            else:
                heap_blocks = None
                if hasattr(tracker, "get_heap_blocks"):
                    heap_blocks = tracker.get_heap_blocks()
                canvas = draw_stack_heap(frame, global_variables, heap_blocks)
                name = f"{image_count:03d}-stack_heap.svg"
            path = os.path.join(output_dir, name)
            canvas.save(path)
            written.append(path)
            tracker.step()
            image_count += 1
    finally:
        tracker.terminate()
    return written
