"""Timeline scrubber: omniscient exploration of a recorded execution.

The ROADMAP's "opens a new workload" direction made concrete: instead of
the forward-only steppers of Section III, this tool renders a recorded
:class:`repro.core.timeline.Timeline` as a scrub strip — one tick per
snapshot, colored by why execution paused there — with the selected
snapshot's stack diagram below it. Writing one image per snapshot gives a
flip-book a front-end can scrub through; the strip shows, at a glance,
where the breakpoints/watch hits cluster in the run.

Everything is drawn with :mod:`repro.viz` and consumes only
:class:`StateSnapshot`, so the same images come out of a timeline recorded
live from ``PythonTracker``, fetched from the MiniC debug server over
``-timeline-dump``, or converted from a Python Tutor trace.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.core.pause import PauseReasonType
from repro.core.timeline import StateSnapshot, Timeline
from repro.tools.stack_diagram import draw_stack
from repro.viz.svg import SVGCanvas, _Element, text_width

TICK_WIDTH = 10
TICK_HEIGHT = 26
TICK_GAP = 2
STRIP_TOP = 40

#: pause-reason kind -> tick color (the scrub strip legend)
TICK_COLORS = {
    PauseReasonType.STEP: "#b8c4ce",
    PauseReasonType.BREAKPOINT: "#c0392b",
    PauseReasonType.WATCH: "#e67e22",
    PauseReasonType.CALL: "#2980b9",
    PauseReasonType.RETURN: "#8e44ad",
    PauseReasonType.EXIT: "#2c3e50",
    PauseReasonType.INTERRUPT: "#f1c40f",
}
DEFAULT_TICK = "#b8c4ce"
SELECTED_STROKE = "#27ae60"


def _tick_color(snapshot: StateSnapshot) -> str:
    reason = snapshot.reason
    if snapshot.exit_code is not None and snapshot.frame is None:
        return TICK_COLORS[PauseReasonType.EXIT]
    if reason is None:
        return DEFAULT_TICK
    return TICK_COLORS.get(reason.type, DEFAULT_TICK)


def draw_scrubber(
    timeline: Timeline, selected: Optional[int] = None
) -> SVGCanvas:
    """The scrub strip alone: one colored tick per retained snapshot.

    Args:
        timeline: the recorded history.
        selected: global snapshot index to highlight, or ``None``.
    """
    canvas = SVGCanvas()
    label = (
        f"{timeline.program or '<timeline>'} — "
        f"{timeline.retained} snapshots "
        f"[{timeline.start_index}..{len(timeline) - 1}]"
        + (f" ({timeline.backend})" if timeline.backend else "")
    )
    canvas.text(14, 20, label, size=13, bold=True)
    x = 14
    for index in range(timeline.start_index, len(timeline)):
        snapshot = timeline.snapshot(index)
        canvas.rect(
            x,
            STRIP_TOP,
            TICK_WIDTH,
            TICK_HEIGHT,
            fill=_tick_color(snapshot),
            stroke="#ffffff",
        )
        if index == selected:
            canvas.rect(
                x - 2,
                STRIP_TOP - 4,
                TICK_WIDTH + 4,
                TICK_HEIGHT + 8,
                fill="none",
                stroke=SELECTED_STROKE,
                rx=2,
            )
            marker = f"#{index}"
            if snapshot.line is not None:
                marker += f" line {snapshot.line}"
            canvas.text(
                max(14.0, x - text_width(marker, 12) / 2),
                STRIP_TOP + TICK_HEIGHT + 18,
                marker,
                size=12,
                fill=SELECTED_STROKE,
            )
        x += TICK_WIDTH + TICK_GAP
    return canvas


def draw_timeline_view(timeline: Timeline, index: int) -> SVGCanvas:
    """Scrub strip with the selected snapshot's stack diagram below it."""
    snapshot = timeline.snapshot(index)
    canvas = draw_scrubber(timeline, selected=index)
    offset = canvas.height + 24
    if snapshot.frame is None:
        canvas.text(
            16,
            offset + 14,
            f"exited with code {snapshot.exit_code}",
            size=14,
            bold=True,
        )
        return canvas
    stack = draw_stack(snapshot)
    # Reuse the stack diagram untouched: wrap its elements in a translated
    # group rather than rewriting every coordinate.
    canvas._elements.append(
        _Element(
            "g",
            {"transform": f"translate(0 {round(offset, 2)})"},
            children=list(stack._elements),
        )
    )
    canvas._track(stack._max_x, stack._max_y + offset)
    return canvas


def render_timeline(
    timeline: Timeline, output_dir: str, max_images: int = 50
) -> List[str]:
    """One scrubber-plus-stack image per retained snapshot (flip-book).

    At most ``max_images`` images are written, evenly spaced over the
    retained window so long runs still produce a representative strip.
    """
    os.makedirs(output_dir, exist_ok=True)
    start, end = timeline.start_index, len(timeline)
    indexes = list(range(start, end))
    if len(indexes) > max_images:
        stride = len(indexes) / max_images
        indexes = [indexes[int(i * stride)] for i in range(max_images)]
    written: List[str] = []
    for order, index in enumerate(indexes):
        path = os.path.join(output_dir, f"timeline_{order:04d}.svg")
        draw_timeline_view(timeline, index).save(path)
        written.append(path)
    return written
