"""Behavioral equivalence testing through contextual traces (paper §V).

One of the paper's proposed applications: "generation of partial and
contextual traces for program equivalence testing". Two implementations of
the same algorithm — possibly in *different languages* — are behaviorally
equivalent at a function boundary when tracking that function produces the
same sequence of (entry arguments, exit return value) pairs.

This tool records that *behavioral signature* with ``track_function`` and
compares signatures across programs. Because the state model is
language-agnostic and :func:`repro.core.state.value_to_python` projects it
onto plain Python data, a recursive C ``fact`` and a recursive Python
``fact`` compare equal when they really do compute the same thing the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.factory import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.state import value_to_python


@dataclass
class SignatureEvent:
    """One boundary event of a behavioral signature."""

    kind: str  # "call" or "return"
    depth: int
    #: projected argument values at entry (call events only)
    arguments: Dict[str, Any] = field(default_factory=dict)
    #: projected (or rendered) return value (return events only)
    value: Any = None

    def comparable(self) -> Tuple:
        if self.kind == "call":
            return ("call", self.depth, tuple(sorted(
                (name, _stable(value)) for name, value in self.arguments.items()
            )))
        return ("return", self.depth, _stable(self.value))


def _stable(value: Any) -> str:
    """A normalization that compares across languages.

    mini-C return values arrive pre-rendered as strings over the pipe;
    Python ones as model values already projected. Rendering both to
    canonical text makes ``42`` == ``"42"`` and ``[1, 2]`` == ``"[1, 2]"``.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(_stable(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{k}: {_stable(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return "{" + inner + "}"
    return str(value)


@dataclass
class EquivalenceReport:
    """The verdict of comparing two behavioral signatures."""

    equivalent: bool
    first: List[SignatureEvent]
    second: List[SignatureEvent]
    divergence_index: Optional[int] = None

    def explain(self) -> str:
        if self.equivalent:
            return (
                f"equivalent: {len(self.first)} boundary events match exactly"
            )
        index = self.divergence_index
        left = (
            self.first[index].comparable() if index < len(self.first) else "<end>"
        )
        right = (
            self.second[index].comparable()
            if index < len(self.second)
            else "<end>"
        )
        return (
            f"divergence at event {index}: {left!r} vs {right!r}"
        )


def behavioral_signature(
    program: str,
    function: str,
    argument_names: Optional[List[str]] = None,
    max_events: int = 10_000,
    backend: Optional[str] = None,
) -> List[SignatureEvent]:
    """Record the call/return signature of ``function`` in ``program``.

    Args:
        program: inferior path (``.py``, ``.c`` or ``.s``).
        function: the boundary function to track.
        argument_names: restrict recorded arguments to these names
            (``None`` records every argument of the frame).
        max_events: safety bound.
        backend: tracker backend override; defaults by file extension
            (``"python-subproc"`` records an untrusted program's
            signature without running it in the tool process).
    """
    if backend is None:
        backend = "python" if program.endswith(".py") else "GDB"
    tracker = init_tracker(backend)
    tracker.load_program(program)
    tracker.track_function(function)
    tracker.start()
    events: List[SignatureEvent] = []
    base_depth: Optional[int] = None
    try:
        while tracker.get_exit_code() is None and len(events) < max_events:
            tracker.resume()
            reason = tracker.pause_reason
            if reason is None or tracker.get_exit_code() is not None:
                break
            if reason.type is PauseReasonType.CALL:
                frame = tracker.get_current_frame()
                if base_depth is None:
                    base_depth = frame.depth
                arguments = {}
                for name, variable in frame.variables.items():
                    if variable.scope != "argument":
                        continue
                    if argument_names is not None and name not in argument_names:
                        continue
                    arguments[name] = value_to_python(variable.value)
                events.append(
                    SignatureEvent(
                        kind="call",
                        depth=frame.depth - base_depth,
                        arguments=arguments,
                    )
                )
            elif reason.type is PauseReasonType.RETURN:
                frame = tracker.get_current_frame()
                if base_depth is None:
                    base_depth = frame.depth
                value = reason.return_value
                if hasattr(value, "abstract_type"):
                    value = value_to_python(value)
                events.append(
                    SignatureEvent(
                        kind="return",
                        depth=frame.depth - base_depth,
                        value=value,
                    )
                )
    finally:
        tracker.terminate()
    return events


def check_equivalence(
    program_a: str,
    program_b: str,
    function_a: str,
    function_b: Optional[str] = None,
    argument_names: Optional[List[str]] = None,
    backend_a: Optional[str] = None,
    backend_b: Optional[str] = None,
) -> EquivalenceReport:
    """Compare two programs' behavioral signatures at a function boundary.

    Args:
        program_a: first implementation (any supported language).
        program_b: second implementation (any supported language).
        function_a: boundary function in the first program.
        function_b: boundary function in the second (defaults to the same
            name).
        argument_names: restrict compared arguments.
        backend_a: tracker backend for the first program (default: by
            file extension).
        backend_b: tracker backend for the second program.
    """
    first = behavioral_signature(
        program_a, function_a, argument_names, backend=backend_a
    )
    second = behavioral_signature(
        program_b, function_b or function_a, argument_names, backend=backend_b
    )
    for index, (left, right) in enumerate(zip(first, second)):
        if left.comparable() != right.comparable():
            return EquivalenceReport(
                equivalent=False,
                first=first,
                second=second,
                divergence_index=index,
            )
    if len(first) != len(second):
        return EquivalenceReport(
            equivalent=False,
            first=first,
            second=second,
            divergence_index=min(len(first), len(second)),
        )
    return EquivalenceReport(equivalent=True, first=first, second=second)
