"""Behavioral equivalence testing through contextual traces (paper §V).

One of the paper's proposed applications: "generation of partial and
contextual traces for program equivalence testing". Two implementations of
the same algorithm — possibly in *different languages* — are behaviorally
equivalent at a function boundary when tracking that function produces the
same sequence of (entry arguments, exit return value) pairs.

This tool records that *behavioral signature* with ``track_function`` and
compares signatures across programs. Because the state model is
language-agnostic and :func:`repro.core.state.value_to_python` projects it
onto plain Python data, a recursive C ``fact`` and a recursive Python
``fact`` compare equal when they really do compute the same thing the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import TrackerError
from repro.core.factory import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.state import value_to_python
from repro.core.tracker import Tracker


@dataclass
class SignatureEvent:
    """One boundary event of a behavioral signature."""

    kind: str  # "call" or "return"
    depth: int
    #: projected argument values at entry (call events only)
    arguments: Dict[str, Any] = field(default_factory=dict)
    #: projected (or rendered) return value (return events only)
    value: Any = None

    def comparable(self) -> Tuple:
        if self.kind == "call":
            return ("call", self.depth, tuple(sorted(
                (name, _stable(value)) for name, value in self.arguments.items()
            )))
        return ("return", self.depth, _stable(self.value))


def _stable(value: Any) -> str:
    """A normalization that compares across languages.

    mini-C return values arrive pre-rendered as strings over the pipe;
    Python ones as model values already projected. Rendering both to
    canonical text makes ``42`` == ``"42"`` and ``[1, 2]`` == ``"[1, 2]"``.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(_stable(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{k}: {_stable(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return "{" + inner + "}"
    return str(value)


@dataclass
class EquivalenceReport:
    """The verdict of comparing two behavioral signatures."""

    equivalent: bool
    first: List[SignatureEvent]
    second: List[SignatureEvent]
    divergence_index: Optional[int] = None

    def explain(self) -> str:
        if self.equivalent:
            return (
                f"equivalent: {len(self.first)} boundary events match exactly"
            )
        index = self.divergence_index
        left = (
            self.first[index].comparable() if index < len(self.first) else "<end>"
        )
        right = (
            self.second[index].comparable()
            if index < len(self.second)
            else "<end>"
        )
        return (
            f"divergence at event {index}: {left!r} vs {right!r}"
        )


def behavioral_signature(
    program: str,
    function: str,
    argument_names: Optional[List[str]] = None,
    max_events: int = 10_000,
    backend: Optional[str] = None,
) -> List[SignatureEvent]:
    """Record the call/return signature of ``function`` in ``program``.

    Args:
        program: inferior path (``.py``, ``.c`` or ``.s``).
        function: the boundary function to track.
        argument_names: restrict recorded arguments to these names
            (``None`` records every argument of the frame).
        max_events: safety bound.
        backend: tracker backend override; defaults by file extension
            (``"python-subproc"`` records an untrusted program's
            signature without running it in the tool process).
    """
    if backend is None:
        backend = "python" if program.endswith(".py") else "GDB"
    tracker = init_tracker(backend)
    tracker.load_program(program)
    tracker.track_function(function)
    tracker.start()
    events: List[SignatureEvent] = []
    base_depth: Optional[int] = None
    try:
        while tracker.get_exit_code() is None and len(events) < max_events:
            tracker.resume()
            reason = tracker.pause_reason
            if reason is None or tracker.get_exit_code() is not None:
                break
            if reason.type is PauseReasonType.CALL:
                frame = tracker.get_current_frame()
                if base_depth is None:
                    base_depth = frame.depth
                arguments = {}
                for name, variable in frame.variables.items():
                    if variable.scope != "argument":
                        continue
                    if argument_names is not None and name not in argument_names:
                        continue
                    arguments[name] = value_to_python(variable.value)
                events.append(
                    SignatureEvent(
                        kind="call",
                        depth=frame.depth - base_depth,
                        arguments=arguments,
                    )
                )
            elif reason.type is PauseReasonType.RETURN:
                frame = tracker.get_current_frame()
                if base_depth is None:
                    base_depth = frame.depth
                value = reason.return_value
                if hasattr(value, "abstract_type"):
                    value = value_to_python(value)
                events.append(
                    SignatureEvent(
                        kind="return",
                        depth=frame.depth - base_depth,
                        value=value,
                    )
                )
    finally:
        tracker.terminate()
    return events


def check_equivalence(
    program_a: str,
    program_b: str,
    function_a: str,
    function_b: Optional[str] = None,
    argument_names: Optional[List[str]] = None,
    backend_a: Optional[str] = None,
    backend_b: Optional[str] = None,
) -> EquivalenceReport:
    """Compare two programs' behavioral signatures at a function boundary.

    Args:
        program_a: first implementation (any supported language).
        program_b: second implementation (any supported language).
        function_a: boundary function in the first program.
        function_b: boundary function in the second (defaults to the same
            name).
        argument_names: restrict compared arguments.
        backend_a: tracker backend for the first program (default: by
            file extension).
        backend_b: tracker backend for the second program.
    """
    first = behavioral_signature(
        program_a, function_a, argument_names, backend=backend_a
    )
    second = behavioral_signature(
        program_b, function_b or function_a, argument_names, backend=backend_b
    )
    for index, (left, right) in enumerate(zip(first, second)):
        if left.comparable() != right.comparable():
            return EquivalenceReport(
                equivalent=False,
                first=first,
                second=second,
                divergence_index=index,
            )
    if len(first) != len(second):
        return EquivalenceReport(
            equivalent=False,
            first=first,
            second=second,
            divergence_index=min(len(first), len(second)),
        )
    return EquivalenceReport(equivalent=True, first=first, second=second)


# ----------------------------------------------------------------------
# Lockstep differential debugging
# ----------------------------------------------------------------------


@dataclass
class MemberState:
    """One group member's normalized state at a lockstep boundary.

    The projection is deliberately address-free (``value_to_python`` plus
    :func:`_stable` text rendering), so a live backend, a subprocess
    backend and a replayed recording of the same program compare equal
    snapshot-for-snapshot — the first *unequal* one is the divergence.
    """

    label: str
    exited: bool = False
    exit_code: Optional[int] = None
    function: Optional[str] = None
    line: Optional[int] = None
    depth: Optional[int] = None
    variables: Dict[str, Any] = field(default_factory=dict)

    def comparable(self) -> Tuple:
        if self.exited:
            return ("exit", self.exit_code)
        return (
            self.function,
            self.line,
            self.depth,
            tuple(sorted(
                (name, _stable(value))
                for name, value in self.variables.items()
            )),
        )

    def describe(self) -> str:
        if self.exited:
            return f"{self.label}: exited with code {self.exit_code}"
        variables = ", ".join(
            f"{name}={_stable(value)}"
            for name, value in sorted(self.variables.items())
        )
        return (
            f"{self.label}: {self.function}:{self.line} "
            f"depth={self.depth} {{{variables}}}"
        )


@dataclass
class DivergenceReport:
    """The verdict of a lockstep run over a :class:`TrackerGroup`."""

    diverged: bool
    #: Lockstep index of the first unequal snapshot (``None`` when the
    #: members stayed equal until every one of them exited).
    step: Optional[int]
    #: Every member's normalized state at that boundary.
    states: List[MemberState]
    steps_executed: int = 0

    def explain(self) -> str:
        if not self.diverged:
            return (
                f"no divergence: {len(self.states)} member(s) stayed "
                f"state-equal across {self.steps_executed} lockstep step(s)"
            )
        lines = [f"divergence at lockstep step {self.step}:"]
        lines.extend(f"  {state.describe()}" for state in self.states)
        return "\n".join(lines)


class TrackerGroup:
    """Drive N inferiors in lockstep and report the first divergence.

    Differential debugging per the paper's equivalence-testing theme, one
    level deeper than :func:`check_equivalence`: instead of comparing
    function-boundary signatures after the fact, the group advances every
    member one step at a time and compares *whole normalized states* at
    each boundary. Members can mix backends freely — a live settrace run
    against a recorded ``replay`` timeline is the canonical pairing for
    "when did this run start behaving differently from the good one?".

    Usage::

        group = TrackerGroup()
        group.add("live", live_tracker)      # trackers already loaded
        group.add("recorded", replay_tracker)
        group.start()
        report = group.run_lockstep(max_steps=500)
        print(report.explain())
        group.terminate()
    """

    def __init__(self) -> None:
        self._members: List[Tuple[str, Tracker]] = []

    @property
    def labels(self) -> List[str]:
        return [label for label, _ in self._members]

    def add(self, label: str, tracker: Tracker) -> None:
        """Register a member (any backend, program already loaded)."""
        if label in self.labels:
            raise TrackerError(f"duplicate group member label {label!r}")
        self._members.append((label, tracker))

    def start(self) -> None:
        for _, tracker in self._members:
            if not tracker._started:
                tracker.start()

    def terminate(self) -> None:
        for _, tracker in self._members:
            try:
                tracker.terminate()
            except TrackerError:
                pass

    # -- state capture --------------------------------------------------

    def _capture(self, label: str, tracker: Tracker) -> MemberState:
        if tracker.get_exit_code() is not None:
            return MemberState(
                label=label, exited=True, exit_code=tracker.get_exit_code()
            )
        frame = tracker.get_current_frame()
        variables = {
            name: value_to_python(variable.value)
            for name, variable in frame.variables.items()
        }
        return MemberState(
            label=label,
            function=frame.name,
            line=frame.line,
            depth=frame.depth,
            variables=variables,
        )

    def states(self) -> List[MemberState]:
        """Every member's normalized state right now."""
        return [
            self._capture(label, tracker) for label, tracker in self._members
        ]

    # -- lockstep -------------------------------------------------------

    def run_lockstep(
        self, max_steps: int = 10_000, mode: str = "step"
    ) -> DivergenceReport:
        """Advance all members together until they disagree or all exit.

        Args:
            max_steps: safety bound on lockstep iterations.
            mode: the control motion used each iteration (``"step"``,
                ``"next"`` or ``"resume"`` — resume turns the group into a
                breakpoint-to-breakpoint comparator).
        """
        if len(self._members) < 2:
            raise TrackerError("a lockstep group needs at least two members")
        step = 0
        states = self.states()
        while step < max_steps:
            divergence = self._check(states, step)
            if divergence is not None:
                return divergence
            if all(state.exited for state in states):
                return DivergenceReport(
                    diverged=False, step=None, states=states,
                    steps_executed=step,
                )
            self._advance_all(mode)
            states = self.states()
            step += 1
        return DivergenceReport(
            diverged=False, step=None, states=states, steps_executed=step
        )

    def _check(
        self, states: List[MemberState], step: int
    ) -> Optional[DivergenceReport]:
        reference = states[0].comparable()
        if any(state.comparable() != reference for state in states[1:]):
            return DivergenceReport(
                diverged=True, step=step, states=states, steps_executed=step
            )
        return None

    def _advance_all(self, mode: str) -> None:
        for _, tracker in self._members:
            if tracker.get_exit_code() is not None:
                continue
            if mode == "resume":
                tracker.resume()
            elif mode == "next":
                tracker.next()
            else:
                tracker.step()
