"""The loop-invariant array visualizer of the paper's Fig. 1.

Shows the source code of a sorting program next to the state of the array
as it is sorted: index variables (``i``, ``j``) are drawn as markers under
their cells and an already-sorted prefix is highlighted with a darker
background — making the loop invariant *visible* while the student steps
line by line.

The tool is generic over the variable names: any program with an array and
any set of index variables works.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.factory import init_tracker
from repro.core.state import AbstractType, Value
from repro.core.tracker import Tracker
from repro.viz.source import render_source
from repro.viz.svg import SVGCanvas, text_width

CELL_SIZE = 42
SORTED_FILL = "#9fc5e8"
PLAIN_FILL = "#f5f5f5"
MARKER_COLORS = ["#c0392b", "#27ae60", "#8e44ad", "#d35400"]


def extract_array(value: Value) -> Optional[List[object]]:
    """Pull a flat Python list out of a model value (REF/LIST chase)."""
    if value.abstract_type is AbstractType.REF:
        return extract_array(value.content)
    if value.abstract_type is not AbstractType.LIST:
        return None
    items: List[object] = []
    for element in value.content:
        inner = element
        while inner.abstract_type is AbstractType.REF:
            inner = inner.content
        if inner.abstract_type is AbstractType.PRIMITIVE:
            items.append(inner.content)
        elif inner.abstract_type is AbstractType.NONE:
            items.append(None)
        else:
            items.append(inner.render())
    return items


def draw_array_state(
    array: List[object],
    indices: Dict[str, Optional[int]],
    sorted_prefix: int = 0,
    title: str = "",
) -> SVGCanvas:
    """Draw the array as cells with index markers and a sorted prefix.

    Args:
        array: current element values.
        indices: marker name -> position (``None`` markers are skipped).
        sorted_prefix: number of leading cells drawn as "already sorted".
        title: optional heading.
    """
    canvas = SVGCanvas()
    top = 14
    if title:
        canvas.text(14, top + 6, title, size=15, bold=True)
        top += 26
    x0 = 20
    for position, element in enumerate(array):
        x = x0 + position * CELL_SIZE
        fill = SORTED_FILL if position < sorted_prefix else PLAIN_FILL
        canvas.rect(x, top, CELL_SIZE, CELL_SIZE, fill=fill)
        canvas.text(
            x + CELL_SIZE / 2,
            top + CELL_SIZE / 2 + 5,
            str(element),
            anchor="middle",
        )
        canvas.text(
            x + CELL_SIZE / 2,
            top + CELL_SIZE + 14,
            str(position),
            size=11,
            fill="#999999",
            anchor="middle",
        )
    marker_y = top + CELL_SIZE + 30
    for slot, (name, position) in enumerate(indices.items()):
        if position is None or not (0 <= position < max(len(array), 1)):
            continue
        color = MARKER_COLORS[slot % len(MARKER_COLORS)]
        x = x0 + position * CELL_SIZE + CELL_SIZE / 2
        canvas.arrow(x, marker_y + 18, x, top + CELL_SIZE + 22, stroke=color)
        canvas.text(
            x, marker_y + 34, name, fill=color, bold=True, anchor="middle"
        )
    return canvas


class ArrayInvariantTool:
    """Step a sorting program and emit (source, array) image pairs.

    Args:
        program: the inferior (Python or mini-C).
        array_name: the array variable to display.
        index_names: index variables drawn as markers (e.g. ``["i", "j"]``).
        sorted_upto: name of the variable giving the sorted-prefix length
            (typically the outer loop index of an insertion sort).
        function: the function whose locals hold those variables.
    """

    def __init__(
        self,
        program: str,
        array_name: str,
        index_names: List[str],
        sorted_upto: Optional[str] = None,
        function: Optional[str] = None,
    ):
        self.program = program
        self.array_name = array_name
        self.index_names = index_names
        self.sorted_upto = sorted_upto
        self.function = function

    def run(self, output_dir: str, max_steps: int = 300) -> List[str]:
        """Execute the program, saving one array image per line executed.

        Returns the list of array-image paths (source images are written
        next to them as ``sourceNN.svg``).
        """
        os.makedirs(output_dir, exist_ok=True)
        tracker: Tracker = init_tracker(
            "python" if self.program.endswith(".py") else "GDB"
        )
        tracker.load_program(self.program)
        tracker.start()
        source_lines = tracker.get_source_lines()
        written: List[str] = []
        try:
            step = 1
            while tracker.get_exit_code() is None and step <= max_steps:
                state = self.snapshot(tracker)
                if state is not None:
                    array, indices, prefix = state
                    array_canvas = draw_array_state(
                        array, indices, prefix, title=self.array_name
                    )
                    array_path = os.path.join(output_dir, f"array{step:02d}.svg")
                    array_canvas.save(array_path)
                    source_canvas = render_source(
                        source_lines, tracker.next_lineno, tracker.last_lineno
                    )
                    source_canvas.save(
                        os.path.join(output_dir, f"source{step:02d}.svg")
                    )
                    written.append(array_path)
                tracker.step()
                step += 1
        finally:
            tracker.terminate()
        return written

    def snapshot(self, tracker: Tracker):
        """Read (array, indices, sorted prefix) from the paused inferior."""
        variable = tracker.get_variable(self.array_name, self.function)
        if variable is None:
            return None
        array = extract_array(variable.value)
        if array is None:
            return None
        indices: Dict[str, Optional[int]] = {}
        for name in self.index_names:
            index_variable = tracker.get_variable(name, self.function)
            indices[name] = _as_int(index_variable)
        prefix = 0
        if self.sorted_upto is not None:
            upto = _as_int(tracker.get_variable(self.sorted_upto, self.function))
            prefix = upto if upto is not None else 0
        return array, indices, prefix


def _as_int(variable) -> Optional[int]:
    if variable is None:
        return None
    value = variable.value
    while value.abstract_type is AbstractType.REF:
        value = value.content
    if value.abstract_type is AbstractType.PRIMITIVE and isinstance(
        value.content, int
    ):
        return value.content
    return None
