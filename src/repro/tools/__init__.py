"""The tools of the paper's Section III, built on the tracker API.

- :mod:`repro.tools.stepper` — Listing 1: step-and-draw every line.
- :mod:`repro.tools.stack_diagram` — Fig. 6 stack / stack-and-heap diagrams.
- :mod:`repro.tools.array_invariant` — Fig. 1 loop-invariant array view.
- :mod:`repro.tools.riscv_viewer` — Fig. 7 registers and memory viewer.
- :mod:`repro.tools.recursion_tree` — Fig. 8 recursive-call tree.
- :mod:`repro.tools.debug_game` — Fig. 9 game for learning debugging.
- :mod:`repro.tools.timeline_view` — scrub strip over a recorded timeline.
"""

from repro.tools.array_invariant import (
    ArrayInvariantTool,
    draw_array_state,
    extract_array,
)
from repro.tools.debug_game import (
    DebugGame,
    GameResult,
    LEVEL1_BUGGY,
    LEVEL1_FIXED,
    LEVEL2_BUGGY,
    LEVEL2_FIXED,
    fix_and_replay,
    play_level,
    render_map,
    write_level,
)
from repro.tools.html_report import build_step_player, record_execution_player
from repro.tools.scope_view import (
    Binding,
    ScopeViewTool,
    collect_bindings,
    render_scopes_svg,
    render_scopes_text,
)
from repro.tools.equivalence import (
    EquivalenceReport,
    SignatureEvent,
    behavioral_signature,
    check_equivalence,
)
from repro.tools.recursion_tree import (
    CallNode,
    CallTreeRecording,
    draw_call_tree,
    record_call_tree,
)
from repro.tools.riscv_viewer import (
    RiscvViewer,
    render_memory_text,
    render_registers_text,
    render_state_svg,
)
from repro.tools.stack_diagram import draw_stack, draw_stack_heap
from repro.tools.stepper import generate_diagrams
from repro.tools.timeline_view import (
    draw_scrubber,
    draw_timeline_view,
    render_timeline,
)

__all__ = [
    "ArrayInvariantTool",
    "CallNode",
    "CallTreeRecording",
    "DebugGame",
    "GameResult",
    "EquivalenceReport",
    "LEVEL1_BUGGY",
    "LEVEL1_FIXED",
    "LEVEL2_BUGGY",
    "LEVEL2_FIXED",
    "SignatureEvent",
    "Binding",
    "ScopeViewTool",
    "behavioral_signature",
    "build_step_player",
    "check_equivalence",
    "collect_bindings",
    "record_execution_player",
    "render_scopes_svg",
    "render_scopes_text",
    "RiscvViewer",
    "draw_array_state",
    "draw_call_tree",
    "draw_scrubber",
    "draw_stack",
    "draw_stack_heap",
    "draw_timeline_view",
    "extract_array",
    "fix_and_replay",
    "generate_diagrams",
    "play_level",
    "record_call_tree",
    "render_map",
    "render_memory_text",
    "render_registers_text",
    "render_state_svg",
    "render_timeline",
    "write_level",
]
