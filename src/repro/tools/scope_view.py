"""Scope visualization (the paper's language-teaching scenario).

The introduction's second scenario: "the teaching of languages where one
wants to show important notions such as scopes, pointers and stack
frames". This tool renders, for a paused inferior, which binding of each
name is *visible* and which are *shadowed*: every frame's variables plus
the globals, with shadowed bindings struck through and annotated by the
frame that wins.

Language-agnostic: works identically for Python closures-free teaching
programs and mini-C block scoping (both resolve innermost-frame-first,
then globals — exactly what :meth:`Tracker.get_variable` implements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.state import AbstractType, Frame, Value, Variable
from repro.core.timeline import StateSnapshot
from repro.core.tracker import Tracker
from repro.viz.svg import SVGCanvas, text_width

ROW_HEIGHT = 24
VISIBLE_FILL = "#eaf6ea"
SHADOWED_FILL = "#f5e3e3"
GLOBAL_FILL = "#fdf3e3"


@dataclass
class Binding:
    """One (scope, name, value) binding and its visibility."""

    scope: str  # frame name or "<globals>"
    depth: Optional[int]  # None for globals
    name: str
    rendered: str
    visible: bool
    shadowed_by: Optional[str] = None


def collect_bindings(tracker: Union[Tracker, StateSnapshot]) -> List[Binding]:
    """All bindings of the paused inferior, innermost scopes first.

    Accepts a live (paused) :class:`Tracker` or a recorded
    :class:`StateSnapshot` — e.g. one pulled from a timeline — since both
    expose the same frames-plus-globals view of a paused state.

    Visibility follows the inspection rule: the innermost frame holding a
    name wins; a global is visible only when no frame binds the name.
    (Only the *current* frame and globals are actually in scope in both
    Python and C, but showing the whole stack is the point of the lesson:
    students see why a caller's `x` is untouchable.)
    """
    if isinstance(tracker, StateSnapshot):
        frames = tracker.frames()
        globals_map = dict(tracker.globals)
    else:
        frames = tracker.get_frames()
        globals_map = tracker.get_global_variables()
    bindings: List[Binding] = []
    current = frames[0] if frames else None
    for frame in frames:
        for name, variable in frame.variables.items():
            visible = frame is current
            shadowed_by = None
            if not visible:
                shadowed_by = current.name if name in current.variables else None
                if shadowed_by is None and name not in globals_map:
                    # Not shadowed, merely out of scope in the callee.
                    shadowed_by = f"(not in scope in {current.name})"
            bindings.append(
                Binding(
                    scope=frame.name,
                    depth=frame.depth,
                    name=name,
                    rendered=_render(variable),
                    visible=visible,
                    shadowed_by=shadowed_by,
                )
            )
    frame_names = {
        name for frame in frames[:1] for name in frame.variables
    }
    for name, variable in globals_map.items():
        shadowing = name in frame_names
        bindings.append(
            Binding(
                scope="<globals>",
                depth=None,
                name=name,
                rendered=_render(variable),
                visible=not shadowing,
                shadowed_by=(current.name if shadowing and current else None),
            )
        )
    return bindings


def _render(variable: Variable) -> str:
    value = variable.value
    while value.abstract_type is AbstractType.REF:
        value = value.content
    return value.render()


def render_scopes_text(bindings: List[Binding]) -> str:
    """A terminal table of the bindings; shadowed ones marked."""
    lines = [f"{'scope':<16} {'name':<12} {'value':<24} visibility"]
    lines.append("-" * len(lines[0]))
    for binding in bindings:
        scope = binding.scope
        if binding.depth is not None:
            scope = f"{scope} (d{binding.depth})"
        status = "visible"
        if not binding.visible:
            status = (
                f"shadowed by {binding.shadowed_by}"
                if binding.shadowed_by
                else "out of scope"
            )
        lines.append(
            f"{scope:<16} {binding.name:<12} {binding.rendered:<24} {status}"
        )
    return "\n".join(lines)


def render_scopes_svg(bindings: List[Binding], title: str = "scopes") -> SVGCanvas:
    """The scope table as SVG: visible rows green, shadowed rows red."""
    canvas = SVGCanvas()
    canvas.text(14, 22, title, size=15, bold=True)
    top = 34
    width = max(
        [
            text_width(
                f"{b.scope}  {b.name} = {b.rendered}  {b.shadowed_by or ''}", 13
            )
            + 40
            for b in bindings
        ]
        + [280.0]
    )
    for index, binding in enumerate(bindings):
        y = top + index * ROW_HEIGHT
        if binding.scope == "<globals>":
            fill = GLOBAL_FILL if binding.visible else SHADOWED_FILL
        else:
            fill = VISIBLE_FILL if binding.visible else SHADOWED_FILL
        canvas.rect(14, y, width, ROW_HEIGHT, fill=fill, stroke="#bbbbbb")
        label = f"{binding.scope:<14} {binding.name} = {binding.rendered}"
        canvas.text(20, y + ROW_HEIGHT - 7, label, size=13)
        if not binding.visible:
            # Strike through the shadowed binding, annotate the winner.
            text_span = text_width(label, 13)
            canvas.line(20, y + ROW_HEIGHT / 2, 20 + text_span,
                        y + ROW_HEIGHT / 2, stroke="#c0392b")
            if binding.shadowed_by:
                canvas.text(
                    26 + text_span, y + ROW_HEIGHT - 7,
                    f"<- {binding.shadowed_by}", size=12, fill="#c0392b",
                )
    return canvas


class ScopeViewTool:
    """Step a program and emit one scope table per pause at a function."""

    def __init__(self, program: str, function: str):
        self.program = program
        self.function = function

    def run(self, output_dir: str, max_pauses: int = 50) -> List[str]:
        """Pause at every entry/exit of the function; render the scopes."""
        import os

        from repro.core.factory import init_tracker

        os.makedirs(output_dir, exist_ok=True)
        tracker = init_tracker(
            "python" if self.program.endswith(".py") else "GDB"
        )
        tracker.load_program(self.program)
        tracker.track_function(self.function)
        tracker.start()
        written: List[str] = []
        try:
            pause = 1
            while tracker.get_exit_code() is None and pause <= max_pauses:
                tracker.resume()
                if tracker.get_exit_code() is not None:
                    break
                bindings = collect_bindings(tracker)
                path = os.path.join(output_dir, f"scopes_{pause:03d}.svg")
                render_scopes_svg(
                    bindings, title=f"pause {pause}: {self.function}"
                ).save(path)
                written.append(path)
                pause += 1
        finally:
            tracker.terminate()
        return written
