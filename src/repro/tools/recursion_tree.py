"""The recursive-call tree visualizer (paper Section III-C, Fig. 8).

Tracks one function with ``track_function`` and builds the dynamic call
tree: a node appears at each recursive call (displaying the chosen argument
values *at the time of the call*, even for shared references whose content
changes later — hence the snapshot), live calls are drawn red, exited calls
gray, and each return adds the returned value on a back edge.

This is the paper's Listing 6, packaged: ``record_call_tree`` is the
control part, ``draw_call_tree`` the visualization part.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.factory import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.tracker import Tracker
from repro.viz.layout import TreeNode, layout_tree
from repro.viz.source import render_source
from repro.viz.svg import SVGCanvas, text_width

LIVE_COLOR = "#c0392b"
DONE_FILL = "#e0e0e0"
LIVE_FILL = "#fdecea"


@dataclass
class CallNode:
    """One dynamic call of the tracked function."""

    uid: int
    args: Dict[str, str] = field(default_factory=dict)
    children: List["CallNode"] = field(default_factory=list)
    parent: Optional["CallNode"] = None
    active: bool = True
    retval: Optional[str] = None

    def label(self, function: str) -> str:
        rendered = ", ".join(self.args.values())
        return f"{function}({rendered})"


@dataclass
class CallTreeRecording:
    """The result of a recorded run: roots plus any images written."""

    roots: List[CallNode] = field(default_factory=list)
    images: List[str] = field(default_factory=list)
    events: int = 0


def record_call_tree(
    program: str,
    function: str,
    arg_names: List[str],
    output_dir: Optional[str] = None,
    skip: int = 0,
    max_events: int = 500,
) -> CallTreeRecording:
    """Run ``program`` and record the call tree of ``function``.

    Args:
        program: inferior path (Python or mini-C).
        function: name of the recursive function to track.
        arg_names: the subset of its arguments to display in each node.
        output_dir: if given, one ``rec-NNN.svg`` per call/return event is
            written there (plus matching ``rec-NNN_src.svg`` listings).
        skip: ignore this many top-level call trees before recording —
            the paper's interactive "skip" query, made scriptable.
        max_events: safety bound on recorded events.

    Returns:
        The recorded tree(s) and image paths.
    """
    tracker: Tracker = init_tracker(
        "python" if program.endswith(".py") else "GDB"
    )
    tracker.load_program(program)
    tracker.track_function(function)
    recording = CallTreeRecording()
    current: Optional[CallNode] = None
    uid = 0
    skipped = 0
    tracker.start()
    source_lines = tracker.get_source_lines()
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
    try:
        while tracker.get_exit_code() is None and recording.events < max_events:
            tracker.resume()
            reason = tracker.pause_reason
            if reason is None or tracker.get_exit_code() is not None:
                break
            if reason.type is PauseReasonType.CALL:
                node = CallNode(uid=uid, parent=current)
                uid += 1
                node.args = _gather_args(tracker, function, arg_names)
                if current is not None:
                    current.children.append(node)
                current = node
                if node.parent is None:
                    if skipped < skip:
                        skipped += 1
                    else:
                        recording.roots.append(node)
            elif reason.type is PauseReasonType.RETURN:
                if current is None:
                    continue
                current.active = False
                current.retval = _render_retval(reason.return_value)
                current = current.parent
            else:
                continue
            recording.events += 1
            if output_dir is not None and recording.roots:
                name = f"rec-{recording.events:03d}"
                draw_call_tree(recording.roots[-1], function).save(
                    os.path.join(output_dir, f"{name}.svg")
                )
                render_source(
                    source_lines, tracker.next_lineno, tracker.last_lineno
                ).save(os.path.join(output_dir, f"{name}_src.svg"))
                recording.images.append(os.path.join(output_dir, f"{name}.svg"))
    finally:
        tracker.terminate()
    return recording


def _gather_args(
    tracker: Tracker, function: str, arg_names: List[str]
) -> Dict[str, str]:
    """Snapshot the displayed arguments at call time (deep-copy semantics)."""
    frame = tracker.get_current_frame()
    args: Dict[str, str] = {}
    for name in arg_names:
        variable = frame.lookup(name)
        if variable is None:
            args[name] = "?"
            continue
        value = variable.value
        while value.abstract_type.value == "ref":
            value = value.content
        args[name] = value.render()
    return args


def _render_retval(return_value) -> str:
    if return_value is None:
        return "None"
    if isinstance(return_value, str):
        return return_value
    if hasattr(return_value, "render"):
        return return_value.render()
    return repr(return_value)


def draw_call_tree(root: CallNode, function: str) -> SVGCanvas:
    """Draw one call tree: red live nodes, gray exited, return back edges."""
    layout_root = _to_layout(root, function)
    layout_tree(
        layout_root,
        node_height=34,
        measure=lambda node: max(text_width(node.label, 13) + 18, 60),
    )
    canvas = SVGCanvas()
    offset_x, offset_y = 20, 20
    for node in layout_root.walk():
        call: CallNode = node.payload
        x, y = node.x + offset_x, node.y + offset_y
        fill = LIVE_FILL if call.active else DONE_FILL
        stroke = LIVE_COLOR if call.active else "#666666"
        canvas.rect(x, y, node.width, node.height, fill=fill, stroke=stroke,
                    stroke_width=2 if call.active else 1, rx=6)
        canvas.text(
            x + node.width / 2, y + 22, node.label, size=13, anchor="middle"
        )
        for child in node.children:
            child_x = child.x + offset_x
            child_y = child.y + offset_y
            canvas.line(
                x + node.width / 2, y + node.height,
                child_x + child.width / 2, child_y,
                stroke="#555555",
            )
            child_call: CallNode = child.payload
            if child_call.retval is not None:
                # Back edge carrying the return value.
                canvas.curve(
                    child_x + child.width / 2 + 10, child_y,
                    x + node.width / 2 + 10, y + node.height,
                    bend=26, stroke="#2980b9",
                )
                canvas.text(
                    (x + child_x + node.width) / 2 + 26,
                    (y + node.height + child_y) / 2 + 4,
                    child_call.retval,
                    size=12,
                    fill="#2980b9",
                )
    if root.retval is not None:
        # The root's own return value, annotated beside it.
        canvas.text(
            layout_root.x + offset_x + layout_root.width + 10,
            layout_root.y + offset_y + 20,
            f"=> {root.retval}",
            size=13,
            fill="#2980b9",
            bold=True,
        )
    return canvas


def _to_layout(call: CallNode, function: str) -> TreeNode:
    node = TreeNode(label=call.label(function), payload=call)
    for child in call.children:
        node.children.append(_to_layout(child, function))
    return node
