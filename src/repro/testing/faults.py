"""Deterministic fault injection for the tracker runtime.

The supervision layer (deadlines, crash recovery, graceful degradation —
see :mod:`repro.core.supervision`) only earns its keep under failure, and
real failures are rare and racy. This module makes them cheap and exactly
reproducible:

- :class:`FaultPlan` is a deterministic schedule — *which* pipe operation
  gets *which* fault: a server crash, a slowed response, a garbled MI
  line.
- :class:`FaultyTransport` wraps the real :class:`~repro.mi.client.PipeTransport`
  and executes the plan. Because :class:`~repro.mi.client.MIClient` takes a
  ``transport_factory``, the whole stack above the pipe (client, GDB
  tracker, DAP adapter) runs unmodified against injected faults.
- :class:`FaultHarness` builds those factories and tallies what happened
  into the tracker's :class:`~repro.core.engine.TrackerStats`
  (``faults_injected`` / ``faults_recovered``), so recovery coverage is
  visible through the same observability surface as everything else.
- :class:`ScriptedTransport` skips the subprocess entirely and feeds the
  client a verbatim line script — the tool for protocol-level fuzzing
  (truncated records, interleaved async lines, mid-record EOF).

Everything above is deterministic: operations are counted, faults fire on
exact counts, and each fault fires exactly once.

The *service-level* chaos harness scales the same idea up to the whole
crash-only tracker service, on both hops of its topology:

- :class:`ChaosPlan` is a seeded schedule over proxy/pipe operations —
  scripted faults fire on exact operation counts, random ones are drawn
  from a :class:`random.Random` seeded for exact reproducibility, and
  every injected fault is appended to an event trace you can dump as a
  JSON artifact.
- :class:`ChaosProxy` is a TCP man-in-the-middle for the client↔service
  hop: delays, partial writes, and hard disconnects per chunk, plus
  :meth:`ChaosProxy.drop_connections` to sever every live connection at
  once (the reconnect-path hammer).
- :class:`ChaosChildTransport` wraps the service's
  :class:`~repro.mi.transport.AsyncPipeTransport` on the service↔child
  hop: delays and child SIGKILLs per pipe operation, injected through
  ``WarmPool``'s ``transport_spawner`` hook (the resurrection-path
  hammer).

The invariant the harness exists to check: under any such schedule,
every client call terminates (result or typed error), every session ends
resolved, and nothing hangs. See ``tests/test_service_chaos.py``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.errors import ServerCrashError
from repro.core.supervision import (
    BACKEND_RESTARTED,
    INFERIOR_INTERRUPTED,
    SupervisionEvent,
)
from repro.mi.client import PipeTransport, _default_transport_factory

#: A mini-C inferior that never pauses on its own (for deadline tests).
NEVER_PAUSING_C = """\
int main() {
    int i;
    i = 0;
    while (i < 1000000000) {
        i = i + 1;
    }
    return 0;
}
"""

#: A Python inferior that never pauses on its own (for deadline tests).
NEVER_PAUSING_PY = """\
i = 0
while i < 1000000000:
    i = i + 1
"""


@dataclass
class FaultPlan:
    """A deterministic, one-shot fault schedule over transport operations.

    Counters index the operations of *one plan* across all transports it
    is applied to, so a fault scheduled past a crash point lands on the
    restarted server. Every scheduled fault fires at most once.
    """

    #: kill the server just before the Nth ``send_line`` (0-based)
    crash_before_send: Optional[int] = None
    #: kill the server just after the Nth line is received (0-based)
    crash_after_recv: Optional[int] = None
    #: Nth received line -> replacement garbage delivered instead
    garble_recv: Dict[int, str] = field(default_factory=dict)
    #: Nth received line -> extra seconds to sit on it (slow server)
    delay_recv: Dict[int, float] = field(default_factory=dict)

    # live counters/markers (shared across restarts on purpose)
    _sends: int = field(default=0, repr=False)
    _recvs: int = field(default=0, repr=False)
    _fired: Set[str] = field(default_factory=set, repr=False)

    def _once(self, key: str) -> bool:
        if key in self._fired:
            return False
        self._fired.add(key)
        return True


class FaultyTransport:
    """A :class:`~repro.mi.client.PipeTransport` that executes a fault plan.

    Liveness, teardown, and interrupt delegate to the wrapped transport;
    only ``send_line``/``recv_line`` consult the plan.
    """

    def __init__(
        self,
        inner: PipeTransport,
        plan: FaultPlan,
        on_inject: Optional[Callable[[str], None]] = None,
    ):
        self._inner = inner
        self._plan = plan
        self._on_inject = on_inject or (lambda kind: None)

    # -- faulted I/O -----------------------------------------------------

    def send_line(self, line: str) -> None:
        plan = self._plan
        index = plan._sends
        plan._sends += 1
        if plan.crash_before_send == index and plan._once(f"send-crash-{index}"):
            self._kill("crash-before-send")
        self._inner.send_line(line)

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        plan = self._plan
        line = self._inner.recv_line(timeout=timeout)
        if line is None:
            return None
        index = plan._recvs
        plan._recvs += 1
        if index in plan.delay_recv and plan._once(f"delay-{index}"):
            self._on_inject("delay-recv")
            time.sleep(plan.delay_recv[index])
        if plan.crash_after_recv == index and plan._once(f"recv-crash-{index}"):
            self._kill("crash-after-recv")
        if index in plan.garble_recv and plan._once(f"garble-{index}"):
            self._on_inject("garble-recv")
            return plan.garble_recv[index]
        return line

    def _kill(self, kind: str) -> None:
        self._on_inject(kind)
        self._inner._process.kill()
        self._inner._process.wait(timeout=5)

    # -- plain delegation ------------------------------------------------

    def alive(self) -> bool:
        return self._inner.alive()

    def exit_code(self) -> Optional[int]:
        return self._inner.exit_code()

    def stderr_tail(self) -> List[str]:
        return self._inner.stderr_tail()

    def lines_dropped(self) -> int:
        return self._inner.lines_dropped()

    def interrupt(self) -> None:
        self._inner.interrupt()

    def close(self, graceful_exit: bool = True) -> None:
        self._inner.close(graceful_exit=graceful_exit)


class FaultHarness:
    """Builds fault-injecting transports and scores the recovery.

    Usage::

        harness = FaultHarness(FaultPlan(crash_before_send=4))
        tracker = GDBTracker(
            transport_factory=harness.transport_factory(program)
        )
        harness.attach(tracker)
        ...
        assert tracker.get_stats().faults_recovered == harness.injected

    ``attach`` wires a supervision listener: every backend restart or
    deadline interrupt that follows an injected fault counts as a
    recovery, mirrored into the tracker's ``TrackerStats``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: faults actually fired so far
        self.injected = 0
        #: supervision recoveries observed after an injection
        self.recovered = 0
        self._stats: List[Any] = []

    def transport_factory(
        self, program: str, args: Optional[List[str]] = None
    ) -> Callable[[], FaultyTransport]:
        """A zero-arg factory for :class:`MIClient` / :class:`GDBTracker`."""
        build_inner = _default_transport_factory(program, list(args or []))

        def build() -> FaultyTransport:
            return FaultyTransport(build_inner(), self.plan, self._note_injected)

        return build

    def attach(self, tracker: Any) -> None:
        """Mirror injection/recovery tallies into the tracker's stats."""
        stats = tracker.engine.stats
        self._stats.append(stats)
        tracker.add_supervision_listener(self._make_listener(stats))

    def _note_injected(self, kind: str) -> None:
        self.injected += 1
        for stats in self._stats:
            stats.faults_injected += 1

    def _make_listener(self, stats: Any) -> Callable[[SupervisionEvent], None]:
        def listener(event: SupervisionEvent) -> None:
            if event.kind in (BACKEND_RESTARTED, INFERIOR_INTERRUPTED):
                if self.recovered < self.injected:
                    self.recovered += 1
                    stats.faults_recovered += 1

        return listener


class ScriptedTransport:
    """A transport that replays a verbatim line script — no subprocess.

    For protocol-level client tests: feed :class:`MIClient` exact server
    output (truncated records, interleaved async lines) and observe the
    typed errors. After the script runs out, behavior follows ``on_empty``:

    - ``"eof"`` (default): raise :class:`ServerCrashError`, like a server
      whose stdout closed mid-record;
    - ``"silence"``: time out every receive (return ``None``), like a
      wedged server that is alive but mute.
    """

    def __init__(self, lines: List[str], on_empty: str = "eof"):
        self.script = list(lines)
        self.on_empty = on_empty
        #: every line the client sent, in order
        self.sent: List[str] = []
        self.interrupts = 0
        self.closed = False
        self._eof_seen = False

    def send_line(self, line: str) -> None:
        if self._eof_seen:
            raise self._crashed("before the command could be sent")
        self.sent.append(line)

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        if self.script:
            return self.script.pop(0)
        if self.on_empty == "silence":
            if timeout:
                time.sleep(min(timeout, 0.01))
            return None  # a "timeout": alive but mute
        self._eof_seen = True
        raise self._crashed("its output pipe closed")

    def _crashed(self, context: str) -> ServerCrashError:
        return ServerCrashError(
            f"the debug server died ({context})",
            exit_code=-9,
            stderr_tail=["scripted transport: script exhausted"],
        )

    def alive(self) -> bool:
        return not self._eof_seen and not self.closed

    def exit_code(self) -> Optional[int]:
        return -9 if self._eof_seen else None

    def stderr_tail(self) -> List[str]:
        return []

    def interrupt(self) -> None:
        self.interrupts += 1

    def close(self, graceful_exit: bool = True) -> None:
        self.closed = True


# ---------------------------------------------------------------------------
# Service-level chaos: seeded fault schedules over both service hops
# ---------------------------------------------------------------------------

#: Hop names used in :class:`ChaosPlan` schedules and event traces.
TCP_HOP = "tcp"
CHILD_HOP = "child"


@dataclass
class ChaosPlan:
    """A seeded (or scripted) fault schedule for the tracker service.

    Each hop keeps its own operation counter. On every operation the plan
    is consulted: a fault scripted for ``(hop, index)`` fires first;
    otherwise one is drawn from the seeded RNG using the per-kind rates.
    Every fault that fires is recorded in :attr:`events`, so a failing
    chaos run is fully explained by its seed plus its trace.

    Fault kinds by hop — :data:`TCP_HOP` (:class:`ChaosProxy`):
    ``delay``, ``partial`` (split write), ``disconnect``;
    :data:`CHILD_HOP` (:class:`ChaosChildTransport`): ``delay``, ``kill``
    (SIGKILL the child mid-dialogue). Kinds a hop cannot express are
    ignored there, so one plan can drive both hops.
    """

    #: RNG seed; ``None`` disables random faults (scripted only)
    seed: Optional[int] = None
    #: probability of an artificial delay, per operation
    delay_rate: float = 0.0
    #: probability of splitting a proxied chunk into two writes
    partial_rate: float = 0.0
    #: probability of severing the proxied connection
    disconnect_rate: float = 0.0
    #: probability of SIGKILLing the child on a pipe operation
    kill_rate: float = 0.0
    #: longest artificial delay (seconds); draws are uniform in (0, max]
    max_delay: float = 0.05
    #: exact-count overrides: ``(hop, op_index) -> fault kind``
    scripted: Dict[Tuple[str, int], str] = field(default_factory=dict)

    #: every fault that fired: ``{hop, op, kind, ...extras}``
    events: List[Dict[str, Any]] = field(default_factory=list)
    _ops: Dict[str, int] = field(default_factory=dict, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.seed is not None:
            self._rng = random.Random(self.seed)

    def draw(self, hop: str) -> Optional[str]:
        """Consume one operation on ``hop``; the fault to inject, if any."""
        index = self._ops.get(hop, 0)
        self._ops[hop] = index + 1
        fault = self.scripted.get((hop, index))
        if fault is None and self._rng is not None:
            roll = self._rng.random()
            for kind, rate in (
                ("delay", self.delay_rate),
                ("partial", self.partial_rate),
                ("disconnect", self.disconnect_rate),
                ("kill", self.kill_rate),
            ):
                if roll < rate:
                    fault = kind
                    break
                roll -= rate
        if fault is not None:
            self.events.append({"hop": hop, "op": index, "kind": fault})
        return fault

    def delay_seconds(self) -> float:
        """How long the next ``delay`` fault should sit on the data."""
        if self._rng is None:
            return self.max_delay
        return self._rng.uniform(0.001, self.max_delay)

    def annotate(self, **extra: Any) -> None:
        """Attach context (e.g. a pid) to the most recent event."""
        if self.events:
            self.events[-1].update(extra)

    def dump_trace(self, path: str) -> None:
        """Write the seed + full event trace as a JSON artifact."""
        with open(path, "w") as handle:
            json.dump(
                {
                    "seed": self.seed,
                    "rates": {
                        "delay": self.delay_rate,
                        "partial": self.partial_rate,
                        "disconnect": self.disconnect_rate,
                        "kill": self.kill_rate,
                    },
                    "operations": dict(self._ops),
                    "events": self.events,
                },
                handle,
                indent=2,
            )


class ChaosProxy:
    """A faulty TCP man-in-the-middle for the client↔service hop.

    Listens on an ephemeral loopback port and forwards byte chunks to the
    real service, consulting a :class:`ChaosPlan` per chunk in each
    direction: ``delay`` sits on the chunk, ``partial`` splits it into
    two writes with a gap (exercising the line reassembly on both ends),
    ``disconnect`` severs the connection mid-stream (exercising client
    reconnect + ``-session-attach``). :meth:`drop_connections` severs
    every live connection at once.

    Usage::

        proxy = ChaosProxy("127.0.0.1", service_port, plan)
        await proxy.start()
        client = await ServiceClient.connect("127.0.0.1", proxy.port)
    """

    def __init__(self, target_host: str, target_port: int, plan: ChaosPlan):
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        #: connections accepted / severed by an injected disconnect
        self.accepted = 0
        self.severed = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.accepted += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            writer.close()
            return
        self._writers.extend([writer, up_writer])
        pair = (writer, up_writer)
        await asyncio.gather(
            self._pump(reader, up_writer, pair),
            self._pump(up_reader, writer, pair),
            return_exceptions=True,
        )
        for half in pair:
            self._close_writer(half)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pair: Tuple[asyncio.StreamWriter, asyncio.StreamWriter],
    ) -> None:
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                fault = self.plan.draw(TCP_HOP)
                if fault == "delay":
                    await asyncio.sleep(self.plan.delay_seconds())
                elif fault == "disconnect":
                    self.severed += 1
                    break
                if fault == "partial" and len(chunk) > 1:
                    middle = len(chunk) // 2
                    writer.write(chunk[:middle])
                    await writer.drain()
                    await asyncio.sleep(0.005)
                    writer.write(chunk[middle:])
                else:
                    writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            # Sever both halves: a half-open proxy link would stall the
            # other direction forever instead of surfacing the drop.
            for half in pair:
                self._close_writer(half)

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            if not writer.is_closing():
                writer.close()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def drop_connections(self) -> int:
        """Sever every live proxied connection; how many were dropped."""
        dropped = 0
        for writer in self._writers:
            if not writer.is_closing():
                dropped += 1
                self._close_writer(writer)
        self._writers = []
        if dropped:
            self.plan.events.append(
                {"hop": TCP_HOP, "op": None, "kind": "drop-all",
                 "writers": dropped}
            )
        return dropped

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.drop_connections()


class ChaosChildTransport:
    """An :class:`~repro.mi.transport.AsyncPipeTransport` under chaos.

    Consults the plan once per pipe operation (each send, each received
    line): ``delay`` inserts an artificial stall, ``kill`` SIGKILLs the
    child — *before* a send (the dialogue fails immediately with
    :class:`~repro.core.errors.ServerCrashError`) or *after* a receive
    (the crash lands mid-dialogue) — which is exactly the signal the
    session-resurrection machinery recovers from.

    Inject via ``WarmPool(transport_spawner=ChaosChildTransport.spawner(plan))``
    or ``ServiceConfig(transport_spawner=...)``; everything above the
    transport runs unmodified.
    """

    def __init__(self, inner: Any, plan: ChaosPlan):
        self._inner = inner
        self._plan = plan

    @classmethod
    def spawner(cls, plan: ChaosPlan) -> Callable[[List[str]], Any]:
        """A ``transport_spawner`` for :class:`~repro.service.pool.WarmPool`."""
        from repro.mi.transport import AsyncPipeTransport

        async def spawn(argv: List[str]) -> "ChaosChildTransport":
            return cls(await AsyncPipeTransport.spawn(argv), plan)

        return spawn

    async def _maybe_fault(self, op: str) -> None:
        fault = self._plan.draw(CHILD_HOP)
        if fault == "delay":
            await asyncio.sleep(self._plan.delay_seconds())
        elif fault == "kill":
            self._plan.annotate(where=op, pid=self._inner.pid)
            self._inner.kill()

    # -- faulted I/O -----------------------------------------------------

    async def send_line(self, line: str) -> None:
        await self._maybe_fault("send")
        await self._inner.send_line(line)

    async def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        line = await self._inner.recv_line(timeout=timeout)
        if line is not None:
            await self._maybe_fault("recv")
        return line

    # -- plain delegation ------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._inner.pid

    def alive(self) -> bool:
        return self._inner.alive()

    def exit_code(self) -> Optional[int]:
        return self._inner.exit_code()

    def stderr_tail(self) -> List[str]:
        return self._inner.stderr_tail()

    def lines_dropped(self) -> int:
        return self._inner.lines_dropped()

    def kill(self) -> None:
        self._inner.kill()

    async def interrupt(self) -> None:
        await self._inner.interrupt()

    async def close(self, graceful_exit: bool = True) -> None:
        await self._inner.close(graceful_exit=graceful_exit)
