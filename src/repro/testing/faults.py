"""Deterministic fault injection for the tracker runtime.

The supervision layer (deadlines, crash recovery, graceful degradation —
see :mod:`repro.core.supervision`) only earns its keep under failure, and
real failures are rare and racy. This module makes them cheap and exactly
reproducible:

- :class:`FaultPlan` is a deterministic schedule — *which* pipe operation
  gets *which* fault: a server crash, a slowed response, a garbled MI
  line.
- :class:`FaultyTransport` wraps the real :class:`~repro.mi.client.PipeTransport`
  and executes the plan. Because :class:`~repro.mi.client.MIClient` takes a
  ``transport_factory``, the whole stack above the pipe (client, GDB
  tracker, DAP adapter) runs unmodified against injected faults.
- :class:`FaultHarness` builds those factories and tallies what happened
  into the tracker's :class:`~repro.core.engine.TrackerStats`
  (``faults_injected`` / ``faults_recovered``), so recovery coverage is
  visible through the same observability surface as everything else.
- :class:`ScriptedTransport` skips the subprocess entirely and feeds the
  client a verbatim line script — the tool for protocol-level fuzzing
  (truncated records, interleaved async lines, mid-record EOF).

Everything here is deterministic: operations are counted, faults fire on
exact counts, and each fault fires exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.errors import ServerCrashError
from repro.core.supervision import (
    BACKEND_RESTARTED,
    INFERIOR_INTERRUPTED,
    SupervisionEvent,
)
from repro.mi.client import PipeTransport, _default_transport_factory

#: A mini-C inferior that never pauses on its own (for deadline tests).
NEVER_PAUSING_C = """\
int main() {
    int i;
    i = 0;
    while (i < 1000000000) {
        i = i + 1;
    }
    return 0;
}
"""

#: A Python inferior that never pauses on its own (for deadline tests).
NEVER_PAUSING_PY = """\
i = 0
while i < 1000000000:
    i = i + 1
"""


@dataclass
class FaultPlan:
    """A deterministic, one-shot fault schedule over transport operations.

    Counters index the operations of *one plan* across all transports it
    is applied to, so a fault scheduled past a crash point lands on the
    restarted server. Every scheduled fault fires at most once.
    """

    #: kill the server just before the Nth ``send_line`` (0-based)
    crash_before_send: Optional[int] = None
    #: kill the server just after the Nth line is received (0-based)
    crash_after_recv: Optional[int] = None
    #: Nth received line -> replacement garbage delivered instead
    garble_recv: Dict[int, str] = field(default_factory=dict)
    #: Nth received line -> extra seconds to sit on it (slow server)
    delay_recv: Dict[int, float] = field(default_factory=dict)

    # live counters/markers (shared across restarts on purpose)
    _sends: int = field(default=0, repr=False)
    _recvs: int = field(default=0, repr=False)
    _fired: Set[str] = field(default_factory=set, repr=False)

    def _once(self, key: str) -> bool:
        if key in self._fired:
            return False
        self._fired.add(key)
        return True


class FaultyTransport:
    """A :class:`~repro.mi.client.PipeTransport` that executes a fault plan.

    Liveness, teardown, and interrupt delegate to the wrapped transport;
    only ``send_line``/``recv_line`` consult the plan.
    """

    def __init__(
        self,
        inner: PipeTransport,
        plan: FaultPlan,
        on_inject: Optional[Callable[[str], None]] = None,
    ):
        self._inner = inner
        self._plan = plan
        self._on_inject = on_inject or (lambda kind: None)

    # -- faulted I/O -----------------------------------------------------

    def send_line(self, line: str) -> None:
        plan = self._plan
        index = plan._sends
        plan._sends += 1
        if plan.crash_before_send == index and plan._once(f"send-crash-{index}"):
            self._kill("crash-before-send")
        self._inner.send_line(line)

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        plan = self._plan
        line = self._inner.recv_line(timeout=timeout)
        if line is None:
            return None
        index = plan._recvs
        plan._recvs += 1
        if index in plan.delay_recv and plan._once(f"delay-{index}"):
            self._on_inject("delay-recv")
            time.sleep(plan.delay_recv[index])
        if plan.crash_after_recv == index and plan._once(f"recv-crash-{index}"):
            self._kill("crash-after-recv")
        if index in plan.garble_recv and plan._once(f"garble-{index}"):
            self._on_inject("garble-recv")
            return plan.garble_recv[index]
        return line

    def _kill(self, kind: str) -> None:
        self._on_inject(kind)
        self._inner._process.kill()
        self._inner._process.wait(timeout=5)

    # -- plain delegation ------------------------------------------------

    def alive(self) -> bool:
        return self._inner.alive()

    def exit_code(self) -> Optional[int]:
        return self._inner.exit_code()

    def stderr_tail(self) -> List[str]:
        return self._inner.stderr_tail()

    def lines_dropped(self) -> int:
        return self._inner.lines_dropped()

    def interrupt(self) -> None:
        self._inner.interrupt()

    def close(self, graceful_exit: bool = True) -> None:
        self._inner.close(graceful_exit=graceful_exit)


class FaultHarness:
    """Builds fault-injecting transports and scores the recovery.

    Usage::

        harness = FaultHarness(FaultPlan(crash_before_send=4))
        tracker = GDBTracker(
            transport_factory=harness.transport_factory(program)
        )
        harness.attach(tracker)
        ...
        assert tracker.get_stats().faults_recovered == harness.injected

    ``attach`` wires a supervision listener: every backend restart or
    deadline interrupt that follows an injected fault counts as a
    recovery, mirrored into the tracker's ``TrackerStats``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: faults actually fired so far
        self.injected = 0
        #: supervision recoveries observed after an injection
        self.recovered = 0
        self._stats: List[Any] = []

    def transport_factory(
        self, program: str, args: Optional[List[str]] = None
    ) -> Callable[[], FaultyTransport]:
        """A zero-arg factory for :class:`MIClient` / :class:`GDBTracker`."""
        build_inner = _default_transport_factory(program, list(args or []))

        def build() -> FaultyTransport:
            return FaultyTransport(build_inner(), self.plan, self._note_injected)

        return build

    def attach(self, tracker: Any) -> None:
        """Mirror injection/recovery tallies into the tracker's stats."""
        stats = tracker.engine.stats
        self._stats.append(stats)
        tracker.add_supervision_listener(self._make_listener(stats))

    def _note_injected(self, kind: str) -> None:
        self.injected += 1
        for stats in self._stats:
            stats.faults_injected += 1

    def _make_listener(self, stats: Any) -> Callable[[SupervisionEvent], None]:
        def listener(event: SupervisionEvent) -> None:
            if event.kind in (BACKEND_RESTARTED, INFERIOR_INTERRUPTED):
                if self.recovered < self.injected:
                    self.recovered += 1
                    stats.faults_recovered += 1

        return listener


class ScriptedTransport:
    """A transport that replays a verbatim line script — no subprocess.

    For protocol-level client tests: feed :class:`MIClient` exact server
    output (truncated records, interleaved async lines) and observe the
    typed errors. After the script runs out, behavior follows ``on_empty``:

    - ``"eof"`` (default): raise :class:`ServerCrashError`, like a server
      whose stdout closed mid-record;
    - ``"silence"``: time out every receive (return ``None``), like a
      wedged server that is alive but mute.
    """

    def __init__(self, lines: List[str], on_empty: str = "eof"):
        self.script = list(lines)
        self.on_empty = on_empty
        #: every line the client sent, in order
        self.sent: List[str] = []
        self.interrupts = 0
        self.closed = False
        self._eof_seen = False

    def send_line(self, line: str) -> None:
        if self._eof_seen:
            raise self._crashed("before the command could be sent")
        self.sent.append(line)

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        if self.script:
            return self.script.pop(0)
        if self.on_empty == "silence":
            if timeout:
                time.sleep(min(timeout, 0.01))
            return None  # a "timeout": alive but mute
        self._eof_seen = True
        raise self._crashed("its output pipe closed")

    def _crashed(self, context: str) -> ServerCrashError:
        return ServerCrashError(
            f"the debug server died ({context})",
            exit_code=-9,
            stderr_tail=["scripted transport: script exhausted"],
        )

    def alive(self) -> bool:
        return not self._eof_seen and not self.closed

    def exit_code(self) -> Optional[int]:
        return -9 if self._eof_seen else None

    def stderr_tail(self) -> List[str]:
        return []

    def interrupt(self) -> None:
        self.interrupts += 1

    def close(self, graceful_exit: bool = True) -> None:
        self.closed = True
