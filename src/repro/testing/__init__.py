"""Test-support utilities: deterministic fault injection for trackers."""

from repro.testing.faults import (
    NEVER_PAUSING_C,
    NEVER_PAUSING_PY,
    FaultHarness,
    FaultPlan,
    FaultyTransport,
    ScriptedTransport,
)

__all__ = [
    "NEVER_PAUSING_C",
    "NEVER_PAUSING_PY",
    "FaultHarness",
    "FaultPlan",
    "FaultyTransport",
    "ScriptedTransport",
]
