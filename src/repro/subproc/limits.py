"""Resource sandboxing for the out-of-process Python server.

The child interpreter hosts both the tracker and the inferior, so one
``setrlimit`` call per resource caps everything the untrusted program can
do: address space (memory bombs become ``MemoryError`` or a clean OOM
kill), CPU seconds (infinite loops become ``SIGXCPU``), and file size
(output bombs to disk become ``SIGXFSZ``/``OSError``). Limits are carried
to the child as command-line flags (``--limit-as`` etc.) and applied
before the first inferior byte runs.

``resource`` is POSIX-only; on platforms without it the limits degrade to
no-ops — process *isolation* still holds (the child is a real subprocess),
only the rlimit caps are skipped.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass
from typing import List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on POSIX
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Exit code the client observes for a CPU-limit kill: 128 + SIGXCPU
#: (= 152 on Linux), matching how a shell reports signal deaths.
XCPU_EXIT_CODE = 128 + int(getattr(signal, "SIGXCPU", 24))


@dataclass(frozen=True)
class ResourceLimits:
    """``setrlimit`` caps for the child interpreter (``None`` = uncapped).

    Attributes:
        address_space: bytes of virtual address space (``RLIMIT_AS``).
            Allocation beyond it raises ``MemoryError`` in the inferior
            (a clean paused/exited state) or, for native allocations, an
            abort the client reports as the child's exit code.
        cpu_seconds: seconds of CPU time (``RLIMIT_CPU``). On expiry the
            kernel sends ``SIGXCPU``, which kills the child (default
            action); the client reports :data:`XCPU_EXIT_CODE`. The hard
            limit is one second higher as a SIGKILL backstop.
        file_size: bytes any written file may reach (``RLIMIT_FSIZE``).
    """

    address_space: Optional[int] = None
    cpu_seconds: Optional[int] = None
    file_size: Optional[int] = None

    def to_argv(self) -> List[str]:
        """Encode as ``--limit-*`` flags for the server command line."""
        argv: List[str] = []
        if self.address_space is not None:
            argv += ["--limit-as", str(self.address_space)]
        if self.cpu_seconds is not None:
            argv += ["--limit-cpu", str(self.cpu_seconds)]
        if self.file_size is not None:
            argv += ["--limit-fsize", str(self.file_size)]
        return argv

    @classmethod
    def consume_argv(
        cls, argv: List[str]
    ) -> Tuple["ResourceLimits", List[str]]:
        """Parse and strip ``--limit-*`` flags; return (limits, rest)."""
        values = {"as": None, "cpu": None, "fsize": None}
        rest: List[str] = []
        index = 0
        while index < len(argv):
            token = argv[index]
            if token.startswith("--limit-") and token[8:] in values:
                if index + 1 >= len(argv):
                    raise ValueError(f"{token} is missing its value")
                values[token[8:]] = int(argv[index + 1])
                index += 2
            else:
                rest.append(token)
                index += 1
        return (
            cls(
                address_space=values["as"],
                cpu_seconds=values["cpu"],
                file_size=values["fsize"],
            ),
            rest,
        )

    def apply(self) -> None:
        """Install the caps on the *current* process (call in the child).

        No-op on platforms without the ``resource`` module.
        """
        if resource is None:  # pragma: no cover - non-POSIX platforms
            return
        if self.address_space is not None:
            _set_limit(resource.RLIMIT_AS, self.address_space)
        if self.file_size is not None:
            _set_limit(resource.RLIMIT_FSIZE, self.file_size)
        if self.cpu_seconds is not None:
            # Soft limit delivers SIGXCPU at the cap; the hard limit one
            # second later is the kernel's backstop (SIGKILL) in case the
            # signal is blocked or ignored.
            resource.setrlimit(
                resource.RLIMIT_CPU, (self.cpu_seconds, self.cpu_seconds + 1)
            )
            _ensure_default_xcpu()


def _set_limit(which: int, value: int) -> None:
    _, hard = resource.getrlimit(which)
    if hard != resource.RLIM_INFINITY:
        value = min(value, hard)
    resource.setrlimit(which, (value, hard))


def _ensure_default_xcpu() -> None:
    """Make SIGXCPU kill the process immediately (the default action).

    A *Python-level* handler would be worse: CPython defers handlers to
    the main thread's next bytecode, and while the inferior thread spins
    the server's main thread is blocked in an untimed condition wait —
    the handler would never run and the process would only die at the
    hard limit's SIGKILL. The C-level default action terminates with
    signal status ``SIGXCPU`` right at the soft limit, which the client
    reports as :data:`XCPU_EXIT_CODE` (128 + SIGXCPU).
    """
    if not hasattr(signal, "SIGXCPU"):  # pragma: no cover - non-POSIX
        return
    try:
        signal.signal(signal.SIGXCPU, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - not the main thread
        pass
