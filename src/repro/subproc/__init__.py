"""Out-of-process Python tracking: a sandboxed child interpreter.

The in-process :class:`repro.pytracker.PythonTracker` runs the inferior in
a thread of the *tool's* interpreter — fast and convenient, but a hostile
inferior shares the tool's address space, CPU and lifetime. This package
moves the whole tracker into a spawned child interpreter behind the MI
pipe (the same architecture the GDB tracker always had):

- :class:`repro.subproc.server.PythonDebugServer` — the server side,
  hosting a ``PythonTracker`` and speaking MI on stdio;
- :class:`repro.subproc.tracker.SubprocPythonTracker` — the client side
  (backend name ``"python-subproc"``), a
  :class:`repro.mi.remote.MIRemoteTracker` whose child can be capped with
  :class:`repro.subproc.limits.ResourceLimits`;
- :class:`repro.subproc.limits.ResourceLimits` — ``resource.setrlimit``
  caps (address space, CPU seconds, file size) applied inside the child.

A segfault, ``os._exit``, CPU-limit kill or OOM in the inferior takes the
child process down, never the tool: the client surfaces it as a terminal
exited state carrying the process exit code.
"""

from repro.subproc.limits import ResourceLimits
from repro.subproc.tracker import SubprocPythonTracker

__all__ = ["ResourceLimits", "SubprocPythonTracker"]
