"""The out-of-process Python debug server.

Runs as a subprocess (``python -m repro.subproc.server program.py``),
reads MI commands on stdin, emits records on stdout — the exact
architecture of the mini-C debug server, but the inferior substrate is a
full :class:`repro.pytracker.PythonTracker` hosted in *this* (child)
interpreter. The tool process on the other side of the pipe
(:class:`repro.subproc.tracker.SubprocPythonTracker`) gets settrace-grade
Python tracking without sharing its address space, CPU or lifetime with
the inferior.

Run-control commands block in the hosted tracker (that is the tracker
contract); a watcher thread polls stdin meanwhile, so an
``-exec-interrupt`` (or SIGINT) arriving mid-run is delivered to the
tracker's async-interrupt path and the command still answers with a
``*stopped,reason="interrupted"`` record.

Resource limits (``--limit-as``, ``--limit-cpu``, ``--limit-fsize``) are
applied to this whole process before the server starts — the child *is*
the sandbox.

The server can also boot **idle** (``python -m repro.subproc.server
--idle``): no program loaded, interpreter warm. The tracker service's
warm pool (:mod:`repro.service.pool`) pre-forks idle children so opening
a session costs one ``-file-exec-and-symbols prog.py args...`` round
trip instead of an interpreter boot. Two commands exist for that pooled
life: ``-file-exec-and-symbols`` with arguments (re)loads a program into
a fresh tracker, and ``-apply-limits`` lowers this process's rlimits at
session bind time (rlimits only go down, so a limited child is spent —
the pool discards it instead of reusing it).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.core.errors import ProgramLoadError, TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import Value, frame_to_dict, value_to_dict, variable_to_dict
from repro.mi import protocol
from repro.mi.servercore import REASON_NAMES, ServerCore, serve_stdio
from repro.pytracker.tracker import PythonTracker
from repro.subproc.limits import ResourceLimits

#: Seconds the interrupt watcher *sleeps* in select per check while a
#: control call blocks. The select wakes early the moment stdin (an
#: ``-exec-interrupt`` line) or the wake pipe (the control call ending)
#: becomes readable, so this bounds only the reaction to a bare SIGINT
#: flag set by a non-main-thread path — it can be generous.
_INTERRUPT_POLL_INTERVAL = 0.5

#: Fallback cadence for zero-arg pollers (injected by tests) that cannot
#: sleep on our behalf.
_LEGACY_POLL_INTERVAL = 0.05


class PythonDebugServer(ServerCore):
    """One debugging session over one Python inferior, MI on the outside.

    The hosted tracker is driven through its *public* API (``start``,
    ``resume``, ``break_before_line``, ``watch``, ``enable_recording``...),
    so in-process and out-of-process tracking cannot drift apart: the
    pause decisions, watch semantics and timeline snapshots are literally
    the same code.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        args: Optional[List[str]] = None,
        tracker: Optional[PythonTracker] = None,
    ):
        super().__init__()
        self.path = path
        self.tracker = tracker if tracker is not None else PythonTracker(
            capture_output=True
        )
        if path is not None:
            self.tracker.load_program(path, list(args or []))
        self.engine = self.tracker.engine
        self._running = False
        #: Characters of inferior output already emitted as stream records
        #: (an *absolute* position: survives ring-buffer eviction).
        self._emitted_output = 0
        #: Whether ``-apply-limits`` lowered this process's rlimits —
        #: rlimits cannot be raised back, so the warm pool must not hand
        #: this child to another session.
        self.limits_applied = False

    def request_interrupt(self) -> None:
        super().request_interrupt()
        # Also poke the tracker directly: safe from a signal handler (the
        # flag store plus frame re-arming are async-tolerant), and faster
        # than waiting for the watcher thread's next poll.
        if self._running and self.tracker.get_exit_code() is None:
            self.tracker._request_interrupt()

    # ------------------------------------------------------------------
    # Lifecycle + run control
    # ------------------------------------------------------------------

    def _cmd_file_exec_and_symbols(self, command) -> List[str]:
        """Report the loaded program — or, with args, (re)load one.

        ``-file-exec-and-symbols prog.py [args...]`` is how a pooled idle
        child becomes a session: the warm interpreter loads the program
        and is ready to ``-exec-run``. On an already-loaded server the
        same command starts over with a *fresh* tracker (the old one is
        terminated first), so control points, stats, and MI numbering all
        reset — a failed load leaves the server idle rather than
        half-bound to the retired program.
        """
        if not command.args:
            if self.path is None:
                return [protocol.format_error("no program loaded")]
            return [
                protocol.format_done({"file": self.tracker._program_abspath})
            ]
        if self.path is not None:
            self.tracker.terminate()
            self.tracker = PythonTracker(capture_output=True)
            self.engine = self.tracker.engine
            self.path = None
            self._running = False
            self._emitted_output = 0
            self._number = 0
            self._interrupt_requested = False
        self.tracker.load_program(command.args[0], list(command.args[1:]))
        self.path = command.args[0]
        return [protocol.format_done({"file": self.tracker._program_abspath})]

    def _cmd_exec_run(self, command) -> List[str]:
        if self.path is None:
            return [protocol.format_error("no program loaded")]
        if self._running:
            return [protocol.format_error("the inferior is already running")]
        self._running = True
        return self._exec(self.tracker.start)

    def _cmd_exec_continue(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.resume)

    def _cmd_exec_step(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.step)

    def _cmd_exec_next(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.next)

    def _cmd_exec_finish(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.finish)

    def _cmd_exec_interrupt(self, command) -> List[str]:
        """A stale interrupt: the inferior stopped before it arrived.

        The live case never reaches command dispatch — while a control
        call is busy, ``-exec-interrupt`` is consumed by the stdin poller
        (or delivered as SIGINT) and answered by the ``*stopped`` record
        of the interrupted exec command. Emitting nothing keeps the stale
        case from desynchronizing the client's request/reply pairing.
        """
        return []

    def _cmd_gdb_exit(self, command) -> List[str]:
        self.tracker.terminate()
        return super()._cmd_gdb_exit(command)

    def _cmd_apply_limits(self, command) -> List[str]:
        """Lower this process's rlimits at session-bind time.

        Pooled children are forked *before* their session exists, so the
        session's :class:`ResourceLimits` cannot ride the command line;
        this command applies them in-process instead. One-way: the child
        is marked spent (``limits_applied``) and will not be reused.
        """
        limits = ResourceLimits(
            address_space=command.option_int("as"),
            cpu_seconds=command.option_int("cpu"),
            file_size=command.option_int("fsize"),
        )
        limited = limits != ResourceLimits()
        if limited:
            limits.apply()
            self.limits_applied = True
        return [protocol.format_done({"limits_applied": self.limits_applied})]

    def _cmd_server_info(self, command) -> List[str]:
        """Liveness + reuse probe: pid, load state, taint flags."""
        return [
            protocol.format_done(
                {
                    "pid": os.getpid(),
                    "loaded": self.path,
                    "started": self._running,
                    "exitcode": self.tracker.get_exit_code(),
                    "limits_applied": self.limits_applied,
                }
            )
        ]

    def _guarded_exec(self, control) -> List[str]:
        if not self._running:
            return [protocol.format_error("the inferior has not been started")]
        if self.tracker.get_exit_code() is not None:
            return [protocol.format_error("the inferior has exited")]
        return self._exec(control)

    def _exec(self, control) -> List[str]:
        """Run one blocking control call under the interrupt watcher.

        The watcher gets a wake pipe (self-pipe idiom): when the control
        call returns, one byte written to it snaps the watcher out of its
        stdin select immediately, so the reply is never delayed by the
        watcher's poll interval.
        """
        stop = threading.Event()
        wake_read, wake_write = os.pipe()
        watcher = threading.Thread(
            target=self._watch_for_interrupt,
            args=(stop, wake_read),
            name="subproc-interrupt-watch",
            daemon=True,
        )
        watcher.start()
        try:
            control()
        finally:
            stop.set()
            try:
                os.write(wake_write, b"x")
            except OSError:  # pragma: no cover - wake pipe gone
                pass
            watcher.join()
            os.close(wake_read)
            os.close(wake_write)
        records = [protocol.format_running()]
        records.extend(self._drain_output())
        records.append(protocol.format_stopped(self._stop_payload()))
        return records

    def _watch_for_interrupt(
        self, stop: threading.Event, wake_fd: int
    ) -> None:
        """Deliver a mid-run ``-exec-interrupt``/SIGINT to the tracker.

        With the stdio loop's poller installed, each check *sleeps* in
        ``select`` on stdin plus the wake pipe — zero CPU while the
        inferior runs, instant wake-up when an interrupt line arrives or
        the run ends. A zero-arg poller (tests inject those) degrades to
        the old fixed-cadence poll.
        """
        poll = self.interrupt_poll
        sleeping = poll is not None
        while not stop.is_set():
            pending = self._interrupt_requested
            if poll is not None:
                if sleeping:
                    try:
                        pending = (
                            poll(
                                timeout=_INTERRUPT_POLL_INTERVAL,
                                wake_fd=wake_fd,
                            )
                            or pending
                        )
                    except TypeError:  # zero-arg poller: cannot sleep for us
                        sleeping = False
                if not sleeping:
                    pending = poll() or pending
            if pending:
                self._interrupt_requested = False
                self.tracker._request_interrupt()
            if not sleeping:
                stop.wait(_LEGACY_POLL_INTERVAL)

    # ------------------------------------------------------------------
    # Stop payloads and output streaming
    # ------------------------------------------------------------------

    def _drain_output(self) -> List[str]:
        """New inferior output since the last drain, as stream records."""
        buffer = self.tracker._output
        text = buffer.getvalue()
        dropped = buffer.dropped
        start = max(self._emitted_output - dropped, 0)
        self._emitted_output = dropped + len(text)
        delta = text[start:]
        return [protocol.format_stream(delta)] if delta else []

    def _stop_payload(self) -> Dict[str, Any]:
        tracker = self.tracker
        exit_code = tracker.get_exit_code()
        if exit_code is not None:
            payload: Dict[str, Any] = {
                "reason": "exited",
                "exitcode": exit_code,
            }
            error = tracker.get_inferior_exception()
            if error is not None:
                payload["error"] = f"{type(error).__name__}: {error}"
            return payload
        reason = tracker.pause_reason or PauseReason(
            type=PauseReasonType.STEP, line=tracker.next_lineno
        )
        payload = {
            "reason": REASON_NAMES.get(reason.type, "end-stepping-range"),
            "line": reason.line if reason.line is not None else tracker.next_lineno,
            "depth": tracker._current_depth(),
        }
        if reason.function is not None:
            payload["func"] = reason.function
        if reason.thread is not None:
            payload["thread"] = reason.thread
        if reason.thread_name:
            payload["thread-name"] = reason.thread_name
        if reason.type is PauseReasonType.DEADLOCK_SUSPECTED:
            payload["deadlock"] = reason.details or {}
        if reason.type is PauseReasonType.WATCH:
            payload["var"] = reason.variable
            payload["old"] = reason.old_value
            payload["new"] = reason.new_value
        if reason.type is PauseReasonType.RETURN:
            value = reason.return_value
            payload["retval"] = (
                value_to_dict(value) if isinstance(value, Value) else value
            )
        return payload

    # ------------------------------------------------------------------
    # Control points (over the tracker's public API)
    # ------------------------------------------------------------------

    def _cmd_break_insert(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-insert needs a location")]
        location = command.args[0]
        maxdepth = command.option_int("maxdepth")
        thread = command.option_int("thread")
        if location.startswith("*"):
            return [
                protocol.format_error(
                    "address breakpoints are not supported for Python "
                    "inferiors"
                )
            ]
        if ":" in location:
            filename, _, line = location.rpartition(":")
            point: Any = self.tracker.break_before_line(
                int(line), filename=filename or None, maxdepth=maxdepth,
                thread=thread,
            )
        elif location.isdigit():
            point = self.tracker.break_before_line(
                int(location), maxdepth=maxdepth, thread=thread
            )
        else:
            point = self.tracker.break_before_func(
                location, maxdepth=maxdepth, thread=thread
            )
        return [protocol.format_done({"number": self._register(point)})]

    def _cmd_break_watch(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-watch needs a variable id")]
        point = self.tracker.watch(
            command.args[0], maxdepth=command.option_int("maxdepth")
        )
        return [protocol.format_done({"number": self._register(point)})]

    def _cmd_track_function(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("track-function needs a name")]
        point = self.tracker.track_function(
            command.args[0], maxdepth=command.option_int("maxdepth")
        )
        return [protocol.format_done({"number": self._register(point)})]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _cmd_stack_list_frames(self, command) -> List[str]:
        return [
            protocol.format_done(frame_to_dict(self.tracker.get_current_frame()))
        ]

    def _cmd_data_list_globals(self, command) -> List[str]:
        payload = {
            name: variable_to_dict(variable)
            for name, variable in self.tracker.get_global_variables().items()
        }
        return [protocol.format_done(payload)]

    def _cmd_inferior_position(self, command) -> List[str]:
        filename, line = self.tracker.get_position()
        return [protocol.format_done({"file": filename, "line": line})]

    def _cmd_thread_info(self, command) -> List[str]:
        from repro.core.threads import thread_to_dict

        return [
            protocol.format_done({
                "threads": [
                    thread_to_dict(info) for info in self.tracker.get_threads()
                ],
            })
        ]

    def _cmd_data_evaluate_expression(self, command) -> List[str]:
        name = command.args[0]
        frame_name = command.options.get("frame")
        rendered = self.tracker._render_watched(
            self.tracker._paused_py_frame, frame_name, name
        )
        if rendered is None:
            return [protocol.format_error(f"no variable {name!r} in scope")]
        return [protocol.format_done({"value": rendered})]

    def _cmd_list_functions(self, command) -> List[str]:
        return [protocol.format_done(_function_names(self.tracker._code))]

    # ------------------------------------------------------------------
    # Timeline recording: the tracker's own recorder, server-side
    # ------------------------------------------------------------------

    def _cmd_timeline_start(self, command) -> List[str]:
        interval = command.option_int("keyframe-interval")
        self.tracker.enable_recording(
            keyframe_interval=interval if interval is not None else 16,
            max_snapshots=command.option_int("max-snapshots"),
        )
        return [protocol.format_done({"recording": True})]

    def _cmd_timeline_stop(self, command) -> List[str]:
        self.tracker.disable_recording()
        return [protocol.format_done({"recording": False})]

    def _cmd_timeline_length(self, command) -> List[str]:
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                {
                    "length": len(timeline),
                    "start": timeline.start_index,
                    "retained": timeline.retained,
                }
            )
        ]

    def _cmd_timeline_dump(self, command) -> List[str]:
        return [protocol.format_done(self._require_timeline().to_dict())]

    def _cmd_timeline_snapshot(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("timeline-snapshot needs an index")]
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                timeline.snapshot(int(command.args[0])).to_dict()
            )
        ]

    def _cmd_timeline_drop_last(self, command) -> List[str]:
        return [
            protocol.format_done(
                {"dropped": self._require_timeline().drop_last()}
            )
        ]

    def _require_timeline(self):
        timeline = self.tracker.timeline
        if timeline is None:
            raise TrackerError("no timeline; send -timeline-start first")
        return timeline


def _function_names(code, _names: Optional[List[str]] = None) -> List[str]:
    """Function names defined in a compiled module, nested ones included."""
    if _names is None:
        _names = []
    for constant in code.co_consts:
        if hasattr(constant, "co_name") and hasattr(constant, "co_consts"):
            if not constant.co_name.startswith("<"):
                _names.append(constant.co_name)
            _function_names(constant, _names)
    return _names


def main(argv: Optional[List[str]] = None) -> int:
    """Entry: ``python -m repro.subproc.server [--limit-*] prog.py [args]``.

    With ``--idle`` (and no program), boots a warm program-less server
    for the tracker service's pool; the program arrives later via
    ``-file-exec-and-symbols``.
    """
    argv = argv if argv is not None else sys.argv[1:]
    try:
        limits, rest = ResourceLimits.consume_argv(argv)
    except ValueError as error:
        print(protocol.format_error(str(error)), flush=True)
        return 2
    idle = "--idle" in rest
    rest = [token for token in rest if token != "--idle"]
    if not rest and not idle:
        print(
            protocol.format_error(
                "usage: server [--idle] [--limit-as N] [--limit-cpu N] "
                "[--limit-fsize N] [<program.py> [args...]]"
            ),
            flush=True,
        )
        return 2
    limits.apply()
    try:
        server = PythonDebugServer(rest[0] if rest else None, rest[1:])
    except (ProgramLoadError, OSError) as error:
        print(protocol.format_error(str(error)), flush=True)
        return 1
    greeting = {"loaded": rest[0]} if rest else {"idle": True}
    return serve_stdio(server, greeting)


if __name__ == "__main__":
    sys.exit(main())
