"""The out-of-process Python debug server.

Runs as a subprocess (``python -m repro.subproc.server program.py``),
reads MI commands on stdin, emits records on stdout — the exact
architecture of the mini-C debug server, but the inferior substrate is a
full :class:`repro.pytracker.PythonTracker` hosted in *this* (child)
interpreter. The tool process on the other side of the pipe
(:class:`repro.subproc.tracker.SubprocPythonTracker`) gets settrace-grade
Python tracking without sharing its address space, CPU or lifetime with
the inferior.

Run-control commands block in the hosted tracker (that is the tracker
contract); a watcher thread polls stdin meanwhile, so an
``-exec-interrupt`` (or SIGINT) arriving mid-run is delivered to the
tracker's async-interrupt path and the command still answers with a
``*stopped,reason="interrupted"`` record.

Resource limits (``--limit-as``, ``--limit-cpu``, ``--limit-fsize``) are
applied to this whole process before the server starts — the child *is*
the sandbox.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, List, Optional

from repro.core.errors import ProgramLoadError, TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import Value, frame_to_dict, value_to_dict, variable_to_dict
from repro.mi import protocol
from repro.mi.servercore import REASON_NAMES, ServerCore, serve_stdio
from repro.pytracker.tracker import PythonTracker
from repro.subproc.limits import ResourceLimits

#: Seconds between interrupt-poll checks while a control call blocks.
_INTERRUPT_POLL_INTERVAL = 0.05


class PythonDebugServer(ServerCore):
    """One debugging session over one Python inferior, MI on the outside.

    The hosted tracker is driven through its *public* API (``start``,
    ``resume``, ``break_before_line``, ``watch``, ``enable_recording``...),
    so in-process and out-of-process tracking cannot drift apart: the
    pause decisions, watch semantics and timeline snapshots are literally
    the same code.
    """

    def __init__(
        self,
        path: str,
        args: Optional[List[str]] = None,
        tracker: Optional[PythonTracker] = None,
    ):
        super().__init__()
        self.path = path
        self.tracker = tracker if tracker is not None else PythonTracker(
            capture_output=True
        )
        self.tracker.load_program(path, list(args or []))
        self.engine = self.tracker.engine
        self._running = False
        #: Characters of inferior output already emitted as stream records
        #: (an *absolute* position: survives ring-buffer eviction).
        self._emitted_output = 0

    def request_interrupt(self) -> None:
        super().request_interrupt()
        # Also poke the tracker directly: safe from a signal handler (the
        # flag store plus frame re-arming are async-tolerant), and faster
        # than waiting for the watcher thread's next poll.
        if self._running and self.tracker.get_exit_code() is None:
            self.tracker._request_interrupt()

    # ------------------------------------------------------------------
    # Lifecycle + run control
    # ------------------------------------------------------------------

    def _cmd_file_exec_and_symbols(self, command) -> List[str]:
        return [protocol.format_done({"file": self.tracker._program_abspath})]

    def _cmd_exec_run(self, command) -> List[str]:
        if self._running:
            return [protocol.format_error("the inferior is already running")]
        self._running = True
        return self._exec(self.tracker.start)

    def _cmd_exec_continue(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.resume)

    def _cmd_exec_step(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.step)

    def _cmd_exec_next(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.next)

    def _cmd_exec_finish(self, command) -> List[str]:
        return self._guarded_exec(self.tracker.finish)

    def _cmd_exec_interrupt(self, command) -> List[str]:
        """A stale interrupt: the inferior stopped before it arrived.

        The live case never reaches command dispatch — while a control
        call is busy, ``-exec-interrupt`` is consumed by the stdin poller
        (or delivered as SIGINT) and answered by the ``*stopped`` record
        of the interrupted exec command. Emitting nothing keeps the stale
        case from desynchronizing the client's request/reply pairing.
        """
        return []

    def _cmd_gdb_exit(self, command) -> List[str]:
        self.tracker.terminate()
        return super()._cmd_gdb_exit(command)

    def _guarded_exec(self, control) -> List[str]:
        if not self._running:
            return [protocol.format_error("the inferior has not been started")]
        if self.tracker.get_exit_code() is not None:
            return [protocol.format_error("the inferior has exited")]
        return self._exec(control)

    def _exec(self, control) -> List[str]:
        """Run one blocking control call under the interrupt watcher."""
        stop = threading.Event()
        watcher = threading.Thread(
            target=self._watch_for_interrupt,
            args=(stop,),
            name="subproc-interrupt-watch",
            daemon=True,
        )
        watcher.start()
        try:
            control()
        finally:
            stop.set()
            watcher.join()
        records = [protocol.format_running()]
        records.extend(self._drain_output())
        records.append(protocol.format_stopped(self._stop_payload()))
        return records

    def _watch_for_interrupt(self, stop: threading.Event) -> None:
        """Deliver a mid-run ``-exec-interrupt``/SIGINT to the tracker."""
        while not stop.wait(_INTERRUPT_POLL_INTERVAL):
            pending = self._interrupt_requested
            if not pending and self.interrupt_poll is not None:
                pending = self.interrupt_poll()
            if pending:
                self._interrupt_requested = False
                self.tracker._request_interrupt()

    # ------------------------------------------------------------------
    # Stop payloads and output streaming
    # ------------------------------------------------------------------

    def _drain_output(self) -> List[str]:
        """New inferior output since the last drain, as stream records."""
        buffer = self.tracker._output
        text = buffer.getvalue()
        dropped = buffer.dropped
        start = max(self._emitted_output - dropped, 0)
        self._emitted_output = dropped + len(text)
        delta = text[start:]
        return [protocol.format_stream(delta)] if delta else []

    def _stop_payload(self) -> Dict[str, Any]:
        tracker = self.tracker
        exit_code = tracker.get_exit_code()
        if exit_code is not None:
            payload: Dict[str, Any] = {
                "reason": "exited",
                "exitcode": exit_code,
            }
            error = tracker.get_inferior_exception()
            if error is not None:
                payload["error"] = f"{type(error).__name__}: {error}"
            return payload
        reason = tracker.pause_reason or PauseReason(
            type=PauseReasonType.STEP, line=tracker.next_lineno
        )
        payload = {
            "reason": REASON_NAMES.get(reason.type, "end-stepping-range"),
            "line": reason.line if reason.line is not None else tracker.next_lineno,
            "depth": tracker._current_depth(),
        }
        if reason.function is not None:
            payload["func"] = reason.function
        if reason.type is PauseReasonType.WATCH:
            payload["var"] = reason.variable
            payload["old"] = reason.old_value
            payload["new"] = reason.new_value
        if reason.type is PauseReasonType.RETURN:
            value = reason.return_value
            payload["retval"] = (
                value_to_dict(value) if isinstance(value, Value) else value
            )
        return payload

    # ------------------------------------------------------------------
    # Control points (over the tracker's public API)
    # ------------------------------------------------------------------

    def _cmd_break_insert(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-insert needs a location")]
        location = command.args[0]
        maxdepth = command.option_int("maxdepth")
        if location.startswith("*"):
            return [
                protocol.format_error(
                    "address breakpoints are not supported for Python "
                    "inferiors"
                )
            ]
        if ":" in location:
            filename, _, line = location.rpartition(":")
            point: Any = self.tracker.break_before_line(
                int(line), filename=filename or None, maxdepth=maxdepth
            )
        elif location.isdigit():
            point = self.tracker.break_before_line(
                int(location), maxdepth=maxdepth
            )
        else:
            point = self.tracker.break_before_func(location, maxdepth=maxdepth)
        return [protocol.format_done({"number": self._register(point)})]

    def _cmd_break_watch(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-watch needs a variable id")]
        point = self.tracker.watch(
            command.args[0], maxdepth=command.option_int("maxdepth")
        )
        return [protocol.format_done({"number": self._register(point)})]

    def _cmd_track_function(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("track-function needs a name")]
        point = self.tracker.track_function(
            command.args[0], maxdepth=command.option_int("maxdepth")
        )
        return [protocol.format_done({"number": self._register(point)})]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _cmd_stack_list_frames(self, command) -> List[str]:
        return [
            protocol.format_done(frame_to_dict(self.tracker.get_current_frame()))
        ]

    def _cmd_data_list_globals(self, command) -> List[str]:
        payload = {
            name: variable_to_dict(variable)
            for name, variable in self.tracker.get_global_variables().items()
        }
        return [protocol.format_done(payload)]

    def _cmd_inferior_position(self, command) -> List[str]:
        filename, line = self.tracker.get_position()
        return [protocol.format_done({"file": filename, "line": line})]

    def _cmd_data_evaluate_expression(self, command) -> List[str]:
        name = command.args[0]
        frame_name = command.options.get("frame")
        rendered = self.tracker._render_watched(
            self.tracker._paused_py_frame, frame_name, name
        )
        if rendered is None:
            return [protocol.format_error(f"no variable {name!r} in scope")]
        return [protocol.format_done({"value": rendered})]

    def _cmd_list_functions(self, command) -> List[str]:
        return [protocol.format_done(_function_names(self.tracker._code))]

    # ------------------------------------------------------------------
    # Timeline recording: the tracker's own recorder, server-side
    # ------------------------------------------------------------------

    def _cmd_timeline_start(self, command) -> List[str]:
        interval = command.option_int("keyframe-interval")
        self.tracker.enable_recording(
            keyframe_interval=interval if interval is not None else 16,
            max_snapshots=command.option_int("max-snapshots"),
        )
        return [protocol.format_done({"recording": True})]

    def _cmd_timeline_stop(self, command) -> List[str]:
        self.tracker.disable_recording()
        return [protocol.format_done({"recording": False})]

    def _cmd_timeline_length(self, command) -> List[str]:
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                {
                    "length": len(timeline),
                    "start": timeline.start_index,
                    "retained": timeline.retained,
                }
            )
        ]

    def _cmd_timeline_dump(self, command) -> List[str]:
        return [protocol.format_done(self._require_timeline().to_dict())]

    def _cmd_timeline_snapshot(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("timeline-snapshot needs an index")]
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                timeline.snapshot(int(command.args[0])).to_dict()
            )
        ]

    def _cmd_timeline_drop_last(self, command) -> List[str]:
        return [
            protocol.format_done(
                {"dropped": self._require_timeline().drop_last()}
            )
        ]

    def _require_timeline(self):
        timeline = self.tracker.timeline
        if timeline is None:
            raise TrackerError("no timeline; send -timeline-start first")
        return timeline


def _function_names(code, _names: Optional[List[str]] = None) -> List[str]:
    """Function names defined in a compiled module, nested ones included."""
    if _names is None:
        _names = []
    for constant in code.co_consts:
        if hasattr(constant, "co_name") and hasattr(constant, "co_consts"):
            if not constant.co_name.startswith("<"):
                _names.append(constant.co_name)
            _function_names(constant, _names)
    return _names


def main(argv: Optional[List[str]] = None) -> int:
    """Entry: ``python -m repro.subproc.server [--limit-*] prog.py [args]``."""
    argv = argv if argv is not None else sys.argv[1:]
    try:
        limits, rest = ResourceLimits.consume_argv(argv)
    except ValueError as error:
        print(protocol.format_error(str(error)), flush=True)
        return 2
    if not rest:
        print(
            protocol.format_error(
                "usage: server [--limit-as N] [--limit-cpu N] "
                "[--limit-fsize N] <program.py> [args...]"
            ),
            flush=True,
        )
        return 2
    limits.apply()
    try:
        server = PythonDebugServer(rest[0], rest[1:])
    except (ProgramLoadError, OSError) as error:
        print(protocol.format_error(str(error)), flush=True)
        return 1
    return serve_stdio(server, {"loaded": rest[0]})


if __name__ == "__main__":
    sys.exit(main())
