"""The subprocess-isolated Python tracker (backend ``"python-subproc"``).

Same language, same semantics as the in-process
:class:`repro.pytracker.PythonTracker` — the server side literally *hosts*
one — but the inferior runs in a spawned child interpreter behind the MI
pipe. What isolation buys:

- a hostile or buggy inferior cannot take the tool down: ``os._exit``, a
  segfault in an extension, an OOM kill or a runaway allocation kills the
  *child*, and this tracker reports a terminal exited state carrying the
  process exit code (128 + signal for signal deaths);
- the child can be capped with :class:`repro.subproc.limits.ResourceLimits`
  (address space, CPU seconds, file size) — ``setrlimit`` applies to a
  whole process, which is exactly the unit the child is;
- the tool's GIL, allocator and module state are untouched by the
  inferior.

The cost is a pipe round-trip per control call/inspection (see
``benchmarks/test_overhead.py`` for the measured multiplier).

All client plumbing — supervised calls, deadlines, crash recovery for the
*protocol* layer, control-point sync, server-side timeline recording — is
inherited from :class:`repro.mi.remote.MIRemoteTracker`. The one real
override is crash semantics during run control: the child hosts the
inferior, so the child dying *is* the inferior dying, not a tool failure
to recover from.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ControlTimeout, ServerCrashError
from repro.core.state import value_from_dict
from repro.core.supervision import (
    INFERIOR_PROCESS_DIED,
    BackoffPolicy,
    SupervisionEvent,
)
from repro.mi.client import PipeTransport
from repro.mi.remote import MIRemoteTracker
from repro.subproc.limits import ResourceLimits


def _process_exit_code(returncode: Optional[int]) -> int:
    """Shell convention for a child's death: signal -N becomes 128 + N."""
    if returncode is None:
        return 1
    if returncode < 0:
        return 128 - returncode
    return returncode


class SubprocPythonTracker(MIRemoteTracker):
    """Tracker for Python inferiors in a sandboxed child interpreter.

    Args:
        restart_policy: backoff schedule for *protocol-layer* crash
            recovery on synchronous commands (see
            :class:`repro.mi.remote.MIRemoteTracker`). Run-control
            crashes are not recovered — they are the inferior's death.
        transport_factory: forwarded to :class:`MIClient` (fault
            injection hook, see :mod:`repro.testing.faults`).
        resource_limits: ``setrlimit`` caps applied inside the child
            before the inferior runs (:class:`ResourceLimits`);
            ``None`` = unlimited.
    """

    backend = "python-subproc"
    # the hosted PythonTracker counts interrupts; -tracker-stats merges
    # its counters in, so counting here too would double count
    _count_interrupts_locally = False

    def __init__(
        self,
        restart_policy: Optional[BackoffPolicy] = None,
        transport_factory: Optional[Callable[[], Any]] = None,
        resource_limits: Optional[ResourceLimits] = None,
    ) -> None:
        super().__init__(
            restart_policy=restart_policy, transport_factory=transport_factory
        )
        self.resource_limits = resource_limits or ResourceLimits()

    # ------------------------------------------------------------------
    # Substrate hooks (see MIRemoteTracker)
    # ------------------------------------------------------------------

    def _make_transport_factory(
        self, path: str, args: List[str]
    ) -> Callable[[], PipeTransport]:
        if self._transport_factory is not None:
            return self._transport_factory
        argv = (
            [sys.executable, "-m", "repro.subproc.server"]
            + self.resource_limits.to_argv()
            + [path]
            + list(args)
        )
        return lambda: PipeTransport(argv)

    def _decode_retval(self, payload: Dict[str, Any]) -> Any:
        """Return values cross the pipe as serialized ``Value`` dicts."""
        retval = payload.get("retval")
        if isinstance(retval, dict) and "abstract_type" in retval:
            return value_from_dict(retval)
        return retval

    def _dispatch_run_control(self, name: str) -> Dict[str, Any]:
        """Run control where a server crash means the *inferior* died.

        The child process hosts the inferior: when it disappears mid-run
        (segfault, ``os._exit``, OOM kill, CPU-limit kill), that is the
        inferior's own death — a terminal exited state, not a tool
        failure to roll back and retry. Protocol garbage and timeouts
        keep the inherited supervised behavior.
        """

        def attempt() -> Dict[str, Any]:
            try:
                return self._client.run_control(
                    name, deadline=self._attempt_deadline()
                )
            except ControlTimeout:
                raise
            except ServerCrashError as error:
                return self._death_payload(error)

        return self._supervised_call(attempt)

    def _death_payload(self, error: ServerCrashError) -> Dict[str, Any]:
        exit_code = _process_exit_code(error.exit_code)
        stderr_tail = list(error.stderr_tail or [])
        self._emit_supervision_event(
            SupervisionEvent(
                INFERIOR_PROCESS_DIED,
                "the inferior process died mid-run "
                f"(exit code {exit_code}); the tracker is terminated",
                {"exitcode": exit_code, "stderr_tail": stderr_tail},
            )
        )
        payload: Dict[str, Any] = {
            "reason": "exited",
            "exitcode": exit_code,
            "error": f"inferior process died: {error}",
        }
        return payload
