"""The supported public API of the library, in one importable place.

Tool scripts should import from here (or from :mod:`repro`, which
re-exports this module's surface)::

    from repro.api import init_tracker, TimelineView, TrackerError

Everything in ``__all__`` is covered by the compatibility promise: the
tracker factory and base classes, the unified inspection bundle
(:class:`StateSnapshot`), the recording/query layer (:class:`Timeline`,
:class:`TimelineView`, :func:`load_timeline`), the pause/state model, and
the typed error hierarchy. Symbols importable from submodules but not
listed here (server internals, codec helpers, the control-point engine)
are implementation surface and may change between releases.

This facade exists because the timeline API grew by accretion — methods
sprayed across :class:`Tracker` with no single object owning a recording.
:class:`TimelineView` is that object now; the old ``Tracker.goto`` /
``Tracker.backward_*`` methods remain as :class:`DeprecationWarning`
shims.
"""

from __future__ import annotations

from repro.core.errors import (
    AlreadyTerminatedError,
    BackendUnavailableError,
    ControlTimeout,
    InferiorCrashError,
    NotPausedError,
    NotStartedError,
    ProgramLoadError,
    ProtocolError,
    ServerCrashError,
    TraceStoreError,
    TrackerError,
    UnknownFunctionError,
    UnknownVariableError,
)
from repro.core.factory import (
    available_trackers,
    init_tracker,
    register_tracker,
)
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.replay import ReplayTracker
from repro.core.state import (
    AbstractType,
    Frame,
    Value,
    Variable,
)
from repro.core.timeline import (
    StateSnapshot,
    Timeline,
    TimelineRecorder,
    load_timeline,
)
from repro.core.threads import TaskInfo, ThreadInfo
from repro.core.tracestore import (
    CallRecord,
    ChangeEvent,
    QueryResult,
    TimelineView,
    TraceIndex,
    TraceStore,
    parse_query,
)
from repro.core.tracker import Tracker
from repro.tools.equivalence import (
    DivergenceReport,
    EquivalenceReport,
    TrackerGroup,
    check_equivalence,
)

__all__ = [
    # factory
    "init_tracker",
    "available_trackers",
    "register_tracker",
    # trackers
    "Tracker",
    "ReplayTracker",
    # state model
    "AbstractType",
    "Frame",
    "Value",
    "Variable",
    "PauseReason",
    "PauseReasonType",
    "StateSnapshot",
    # concurrency
    "ThreadInfo",
    "TaskInfo",
    # differential debugging
    "TrackerGroup",
    "DivergenceReport",
    "EquivalenceReport",
    "check_equivalence",
    # recording & querying
    "Timeline",
    "TimelineRecorder",
    "TimelineView",
    "TraceIndex",
    "TraceStore",
    "ChangeEvent",
    "CallRecord",
    "QueryResult",
    "load_timeline",
    "parse_query",
    # typed errors
    "TrackerError",
    "AlreadyTerminatedError",
    "BackendUnavailableError",
    "ControlTimeout",
    "InferiorCrashError",
    "NotPausedError",
    "NotStartedError",
    "ProgramLoadError",
    "ProtocolError",
    "ServerCrashError",
    "TraceStoreError",
    "UnknownFunctionError",
    "UnknownVariableError",
]
