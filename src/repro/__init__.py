"""Reproduction of EasyTracker (CGO 2024).

A Python library for controlling and inspecting the execution of programs
written in Python, (mini-)C, or RISC-V assembly, aimed at building program
visualization tools. See ``README.md`` for a quickstart and ``DESIGN.md``
for the system inventory.

The top-level namespace re-exports the full public API so tool scripts can
write, exactly as in the paper::

    from repro import init_tracker, PauseReasonType, AbstractType

The *supported* surface — the subset covered by the compatibility
promise — is defined by :mod:`repro.api` and re-exported here; prefer
``from repro.api import ...`` in new code.
"""

from repro import api
from repro.api import (
    CallRecord,
    ChangeEvent,
    QueryResult,
    TimelineView,
    TraceIndex,
    TraceStore,
    TraceStoreError,
    parse_query,
)
from repro.core import (
    AbstractType,
    AlreadyTerminatedError,
    BackendUnavailableError,
    BackoffPolicy,
    ControlTimeout,
    Deadline,
    Frame,
    FunctionBreakpoint,
    InferiorCrashError,
    LineBreakpoint,
    Location,
    NotPausedError,
    NotStartedError,
    PauseReason,
    PauseReasonType,
    ProgramLoadError,
    ProtocolError,
    ReplayTracker,
    ServerCrashError,
    StateSnapshot,
    SupervisionEvent,
    Timeline,
    TimelineRecorder,
    TrackedFunction,
    Tracker,
    TrackerError,
    UnknownFunctionError,
    UnknownVariableError,
    Value,
    Variable,
    Watchpoint,
    available_trackers,
    frame_from_dict,
    frame_to_dict,
    init_tracker,
    load_timeline,
    register_timeline_codec,
    register_tracker,
    value_from_dict,
    value_to_dict,
    variable_from_dict,
    variable_to_dict,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractType",
    "AlreadyTerminatedError",
    "BackendUnavailableError",
    "BackoffPolicy",
    "CallRecord",
    "ChangeEvent",
    "ControlTimeout",
    "Deadline",
    "Frame",
    "FunctionBreakpoint",
    "InferiorCrashError",
    "LineBreakpoint",
    "Location",
    "NotPausedError",
    "NotStartedError",
    "PauseReason",
    "PauseReasonType",
    "ProgramLoadError",
    "ProtocolError",
    "QueryResult",
    "ReplayTracker",
    "ServerCrashError",
    "StateSnapshot",
    "SupervisionEvent",
    "Timeline",
    "TimelineRecorder",
    "TimelineView",
    "TraceIndex",
    "TraceStore",
    "TraceStoreError",
    "TrackedFunction",
    "Tracker",
    "TrackerError",
    "UnknownFunctionError",
    "UnknownVariableError",
    "Value",
    "Variable",
    "Watchpoint",
    "api",
    "available_trackers",
    "frame_from_dict",
    "frame_to_dict",
    "init_tracker",
    "load_timeline",
    "parse_query",
    "register_timeline_codec",
    "register_tracker",
    "value_from_dict",
    "value_to_dict",
    "variable_from_dict",
    "variable_to_dict",
]
