"""Session multiplexing: N debugging sessions over one event loop.

A :class:`Session` is one program bound to one pooled child server. The
:class:`SessionManager` owns all of them: it admits new sessions against
a concurrency bound (waiting or rejecting, per configuration), binds each
to a child from the :class:`~repro.service.pool.WarmPool`, applies the
session's resource limits inside the child, reaps sessions that go idle,
and decides at close time whether the child is clean enough to go back on
the shelf.

Command execution is *per-session serialized, cross-session concurrent*:
each session has an ``asyncio.Lock``, so two commands to the same session
queue up (the MI dialogue is strictly request/reply), while commands to
different sessions interleave freely on the event loop — thirty inferiors
can be mid-``-exec-continue`` at once and the service thread count stays
at one. The per-session queue is *bounded*: once ``session_queue_limit``
commands are waiting, further commands are rejected with a typed
overload error instead of piling up without limit.

**Crash-only sessions.** Every session keeps a :class:`RecoveryManifest`
— its program binding, resource limits, and the ordered log of completed
commands whose effects live in the child (control-point installs,
timeline recording, and — while execution stays deterministic — the
run-control history itself). When a child dies mid-session the manager
*resurrects* the session instead of tombstoning it: a replacement child
is drawn from the pool under :class:`~repro.core.supervision.BackoffPolicy`
retries, limits are re-applied, the program is re-loaded, the manifest is
replayed (breakpoints/watchpoints come back under their original numbers;
a recording session re-records to the same snapshot index), and the
in-flight command is retried once against the new child. The reply is
prefixed with a ``=session-resurrected`` notification carrying the new
session *epoch* and a ``degraded`` flag — ``degraded=True`` means the
execution position could not be replayed (the history contained a
non-deterministic ``interrupted`` stop) and the inferior must be
restarted with ``-exec-run``.

A *poison pill* — a program that kills every child it touches — is kept
from draining the pool by a per-program circuit breaker: after
``poison_threshold`` consecutive child deaths (any completed dialogue
resets the count) the program is quarantined, new opens for it are
rejected with :class:`ProgramQuarantined`, and only then does the dying
session get the classic tombstone: run-control answers with a
synthesized ``*stopped,reason="exited"`` (exit code ``128+signal`` for
signal deaths, shell convention), inspection answers with ``^error``,
and the session survives until closed so the client can read the verdict.
"""

from __future__ import annotations

import asyncio
import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.errors import ServerCrashError, TrackerError
from repro.core.supervision import BackoffPolicy, SupervisionEvent
from repro.mi import protocol
from repro.service.pool import ChildHandle, WarmPool
from repro.subproc.limits import ResourceLimits

#: MI commands whose reply is a run-control dialogue (``^running`` then
#: eventually ``*stopped``) rather than a single ``^done``/``^error``.
EXEC_COMMANDS = frozenset(
    [
        "-exec-run",
        "-exec-continue",
        "-exec-step",
        "-exec-next",
        "-exec-finish",
    ]
)

#: Synchronous commands whose effect lives in the child and must be
#: replayed, in original order, to rebuild a dead child's state.
SETUP_COMMANDS = frozenset(
    [
        "-break-insert",
        "-break-watch",
        "-track-function",
        "-break-delete",
        "-timeline-start",
        "-timeline-stop",
        "-timeline-drop-last",
    ]
)

#: Supervision-event kind emitted when a session is resurrected.
SESSION_RESURRECTED = "session-resurrected"


class ServiceBusy(TrackerError):
    """Admission control rejected the session (service at capacity)."""


class ServiceDraining(TrackerError):
    """The service is shutting down gracefully; retry against another.

    ``retry_after`` is the server's hint (seconds) for when a retry might
    be worthwhile — carried on the wire inside the error message (see
    :func:`repro.mi.protocol.retryable_message`).
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class SessionOverloaded(TrackerError):
    """The per-session command queue is full; shed load, retry later."""

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ProgramQuarantined(TrackerError):
    """The program killed too many children in a row; opens are refused."""


class ServiceAuthError(TrackerError):
    """The connection has not completed the ``-service-auth`` handshake."""


@dataclass
class SessionStats:
    """Manager-level counters, surfaced via ``-service-stats``."""

    total_opened: int = 0
    closed: int = 0
    rejected: int = 0
    queued: int = 0
    reaped: int = 0
    crashed: int = 0
    #: children that died under a session (whether or not resurrected)
    child_deaths: int = 0
    #: sessions brought back on a replacement child
    resurrected: int = 0
    #: resurrections that lost the execution position (replay impossible)
    degraded: int = 0
    #: programs quarantined by the poison-pill circuit breaker
    quarantined: int = 0
    #: commands rejected by the bounded per-session queue
    overloaded: int = 0
    #: sessions orphaned by a connection drop, awaiting re-attach
    detached: int = 0
    #: successful ``-session-attach`` adoptions
    attached: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "total_opened": self.total_opened,
            "closed": self.closed,
            "rejected": self.rejected,
            "queued": self.queued,
            "reaped": self.reaped,
            "crashed": self.crashed,
            "child_deaths": self.child_deaths,
            "resurrected": self.resurrected,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "overloaded": self.overloaded,
            "detached": self.detached,
            "attached": self.attached,
        }


@dataclass
class RecoveryManifest:
    """Everything needed to rebuild a session's child from scratch.

    ``log`` is the *ordered* interleaving of completed setup commands and
    deterministic run-control commands (verbatim id-less body lines), so
    a replay reproduces server-side breakpoint numbers and timeline
    snapshot indices exactly. An ``interrupted`` stop poisons the exec
    history (the same instruction cannot be re-interrupted), flipping
    ``replay_valid`` — setup still replays, the execution position is
    lost, and the resurrection is *degraded*.
    """

    program: str
    args: List[str] = field(default_factory=list)
    limits: Optional[ResourceLimits] = None
    #: ordered (kind, body) entries; kind is ``"setup"`` or ``"exec"``
    log: List[Tuple[str, str]] = field(default_factory=list)
    #: a ``-timeline-start`` is in effect (server-side recording)
    recording: bool = False
    #: the exec history is deterministic and may be re-executed
    replay_valid: bool = True
    #: completed run-control stops (the "last recorded pause" index)
    pause_index: int = 0

    def reset_binding(self, program: str, args: List[str]) -> None:
        """A mid-session rebind: prior state died with the old program."""
        self.program = program
        self.args = list(args)
        self.log.clear()
        self.recording = False
        self.replay_valid = True
        self.pause_index = 0


@dataclass
class Session:
    """One bound debugging session: a program inside a pooled child."""

    session_id: str
    child: ChildHandle
    program: str
    #: the id used on the wire; ``None`` for an implicit legacy session
    #: (its client speaks id-less MI, so synthesized records stay id-less)
    wire_id: Optional[str] = None
    #: ``-exec-run`` has been issued (reuse gate: a started-but-unfinished
    #: inferior may leave threads behind in the child)
    started: bool = False
    #: the inferior ran to completion (makes a started child reusable)
    exited: bool = False
    #: resource limits were applied or the child crashed — never reuse
    tainted: bool = False
    closed: bool = False
    #: the child died; commands answer from the tombstone
    dead: bool = False
    #: a dialogue was started and never completed (cancelled task,
    #: connection torn down mid-command) — the child's pipe may hold a
    #: half-read reply, so it must not be reused
    dialogue_pending: bool = False
    exit_code: Optional[int] = None
    last_activity: float = 0.0
    lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)
    #: back-reference for resurrection/quarantine (None in unit harnesses)
    manager: Optional["SessionManager"] = None
    manifest: Optional[RecoveryManifest] = None
    #: bumped on every resurrection; clients see it in open/attach/notify
    epoch: int = 1
    #: the last resurrection lost the execution position
    degraded: bool = False
    #: commands dispatched and not yet answered (bounded; 0 = unbounded)
    pending: int = 0
    max_pending: int = 0
    #: the connection currently receiving this session's records (owner
    #: identity is opaque to the manager; ``None`` while detached)
    owner: Any = None
    #: event-loop time of the detach; ``None`` while attached
    detached_at: Optional[float] = None
    #: records produced while detached, flushed on re-attach
    undelivered: Deque[str] = field(
        default_factory=lambda: deque(maxlen=1024)
    )
    backlog_dropped: int = 0

    @property
    def busy(self) -> bool:
        """A command is in flight (idle reaping must leave it alone)."""
        return self.lock.locked()

    def touch(self) -> None:
        self.last_activity = asyncio.get_event_loop().time()

    # ------------------------------------------------------------------
    # Attach / detach (reconnectable sessions)
    # ------------------------------------------------------------------

    def detach(self) -> None:
        """The owning connection dropped; records buffer until re-attach."""
        self.owner = None
        self.detached_at = asyncio.get_event_loop().time()

    def attach(self, owner: Any) -> List[str]:
        """Adopt the session onto ``owner``; return the buffered backlog."""
        self.owner = owner
        self.detached_at = None
        self.touch()
        backlog = list(self.undelivered)
        self.undelivered.clear()
        return backlog

    def buffer_undelivered(self, records: List[str]) -> None:
        for record in records:
            if len(self.undelivered) == self.undelivered.maxlen:
                self.backlog_dropped += 1
            self.undelivered.append(record)

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    async def run_command(
        self, line: str, _counted: bool = False
    ) -> List[str]:
        """Forward one command line; return the reply record lines.

        ``line`` carries this session's id prefix (or none, for an
        implicit legacy session) — the child echoes whatever framing it
        receives, so the records come back correctly tagged without the
        service rewriting them.

        ``_counted`` means the dispatcher already bumped ``pending``
        *synchronously* (before this coroutine was even scheduled), which
        is what keeps the idle reaper from firing between dispatch and
        the first ``await``.

        ``-exec-interrupt`` never takes this path (it would deadlock
        behind the very command it is meant to interrupt); see
        :meth:`interrupt`.
        """
        _, body = protocol.split_session(line.strip())
        command_name = body.split(None, 1)[0] if body else ""
        if not _counted:
            self.pending += 1
        try:
            if self.max_pending and self.pending > self.max_pending:
                if self.manager is not None:
                    self.manager.stats.overloaded += 1
                return [
                    self._tag(
                        protocol.format_error(
                            protocol.retryable_message(
                                f"session {self.session_id} is overloaded "
                                f"({self.pending - 1} commands already "
                                "queued)",
                                0.5,
                            )
                        )
                    )
                ]
            async with self.lock:
                self.touch()
                if self.closed:
                    return [
                        self._tag(protocol.format_error("session is closed"))
                    ]
                if self.dead:
                    return self._tombstone_reply(command_name)
                try:
                    return await self._dialogue(line, body, command_name)
                except ServerCrashError as error:
                    return await self._child_died(
                        line, body, command_name, error
                    )
        finally:
            self.pending -= 1
            self.touch()

    async def _dialogue(
        self, line: str, body: str, command_name: str
    ) -> List[str]:
        self.dialogue_pending = True
        await self.child.transport.send_line(line)
        if command_name == "-exec-run":
            self.started = True
        records: List[str] = []
        exec_command = command_name in EXEC_COMMANDS
        while True:
            raw = await self.child.transport.recv_line(timeout=None)
            if raw is None:  # pragma: no cover - no timeout in use
                continue
            raw = raw.rstrip("\n")
            self.touch()
            records.append(raw)
            record = protocol.parse_record(raw)
            if record.kind == "stopped":
                payload = record.payload or {}
                reason = payload.get("reason")
                if reason == "exited":
                    self.exited = True
                    self.exit_code = payload.get("exitcode")
                else:
                    self._note_pause(reason, body if exec_command else None)
                self.dialogue_pending = False
                self._note_healthy()
                return records
            if record.kind == "error":
                self.dialogue_pending = False
                self._note_healthy()  # an ^error still proves liveness
                return records
            if record.kind == "done":
                if not exec_command:
                    self.dialogue_pending = False
                    self._note_completed(command_name, body)
                    self._note_healthy()
                    return records
                # a stale-interrupt ack racing the run; keep reading

    async def interrupt(self) -> None:
        """Fire-and-forget: pause whatever this session is running.

        Goes straight to the transport (bypassing the session lock): the
        ``*stopped`` it provokes is delivered as the answer of the
        run-control command already in flight, exactly like the blocking
        client's deadline path.
        """
        if self.closed or self.dead:
            return
        try:
            await self.child.transport.interrupt()
        except ServerCrashError:
            pass  # the in-flight command will report the death

    # ------------------------------------------------------------------
    # Manifest bookkeeping
    # ------------------------------------------------------------------

    def _note_pause(self, reason: Optional[str], body: Optional[str]) -> None:
        manifest = self.manifest
        if manifest is None:
            return
        manifest.pause_index += 1
        if body is None:
            return
        if body.split(None, 1)[0] == "-exec-run":
            # A fresh run supersedes the previous run's exec history —
            # control-point installs persist, replay validity recovers.
            manifest.log = [
                entry for entry in manifest.log if entry[0] == "setup"
            ]
            manifest.replay_valid = True
        if reason == "interrupted":
            # An interrupt lands at a wall-clock-dependent instruction;
            # re-executing the history cannot reproduce it.
            manifest.replay_valid = False
        elif manifest.replay_valid:
            manifest.log.append(("exec", body))

    def _note_completed(self, command_name: str, body: str) -> None:
        manifest = self.manifest
        if manifest is None:
            return
        if command_name in SETUP_COMMANDS:
            manifest.log.append(("setup", body))
            if command_name == "-timeline-start":
                manifest.recording = True
            elif command_name == "-timeline-stop":
                manifest.recording = False
        elif command_name == "-file-exec-and-symbols":
            try:
                command = protocol.parse_command(body)
            except TrackerError:  # pragma: no cover - child accepted it
                return
            if command.args:
                self.program = command.args[0]
                self.started = False
                self.exited = False
                self.exit_code = None
                manifest.reset_binding(
                    command.args[0], list(command.args[1:])
                )

    def _note_healthy(self) -> None:
        if self.manager is not None:
            self.manager.note_child_healthy(self.program)

    # ------------------------------------------------------------------
    # Death: resurrection, then tombstones
    # ------------------------------------------------------------------

    async def _child_died(
        self,
        line: str,
        body: str,
        command_name: str,
        error: ServerCrashError,
    ) -> List[str]:
        self.dialogue_pending = False
        self.tainted = True  # whatever happens, this child is done for
        exit_code = self.child.transport.exit_code()
        outcome = None
        if (
            self.manager is not None
            and not self.closed
            and not self.exited
        ):
            outcome = await self.manager.resurrect(self, error)
        if outcome is None:
            return self._entomb(command_name, error, exit_code)
        notify = self._tag(
            protocol.format_notify(SESSION_RESURRECTED, outcome)
        )
        try:
            records = await self._dialogue(line, body, command_name)
        except ServerCrashError as again:
            # The replacement died on the very same command; recurse —
            # bounded by the poison-pill counter, which only resets on a
            # *completed* dialogue.
            return [notify] + await self._child_died(
                line, body, command_name, again
            )
        return [notify] + records

    def _entomb(
        self,
        command_name: str,
        error: ServerCrashError,
        exit_code: Optional[int],
    ) -> List[str]:
        self.dead = True
        code = exit_code
        if code is None:
            code = self.child.transport.exit_code()
        if code is not None and code < 0:
            code = 128 - code  # signal death, shell convention
        if not self.exited:
            self.exited = True
            self.exit_code = code
        reply = self._tombstone_reply(command_name)
        if command_name not in EXEC_COMMANDS:
            reply = [self._tag(protocol.format_error(str(error)))]
        return reply

    def _tombstone_reply(self, command_name: str) -> List[str]:
        """What a dead session answers, mirroring a dead inferior."""
        if command_name in EXEC_COMMANDS:
            payload: Dict[str, Any] = {
                "reason": "exited",
                "exitcode": self.exit_code,
                "error": "the session's child server died",
            }
            return [
                self._tag(protocol.format_running()),
                self._tag(protocol.format_stopped(payload)),
            ]
        return [
            self._tag(
                protocol.format_error("the session's child server died")
            )
        ]

    def _tag(self, record: str) -> str:
        if self.wire_id is None:
            return record
        return protocol.tag_record(record, self.wire_id)


class SessionManager:
    """Admission, binding, resurrection, and reuse policy for sessions.

    Args:
        pool: the warm child pool sessions draw from.
        max_sessions: concurrent-session bound (admission control).
        queue: when the bound is hit, ``True`` parks new opens until a
            slot frees (bounded hospitality), ``False`` rejects them
            immediately with :class:`ServiceBusy` (fail fast).
        idle_timeout: seconds of inactivity after which a session with no
            command in flight is force-closed; ``None`` disables reaping.
        detach_grace: seconds a detached session (its connection dropped)
            survives awaiting ``-session-attach``; ``None`` means
            detached sessions are never reaped by the grace clock.
        session_queue_limit: bound on per-session queued commands
            (overflow answers a typed overload error); 0 = unbounded.
        poison_threshold: consecutive child deaths, per program, before
            the program is quarantined and the session tombstoned.
        resurrect_policy: backoff schedule for replacement-child
            acquisition during resurrection.
        replay_timeout: per-entry deadline while replaying a recovery
            manifest (a wedged replay must not hang the resurrection).
    """

    def __init__(
        self,
        pool: WarmPool,
        max_sessions: int = 16,
        queue: bool = True,
        idle_timeout: Optional[float] = None,
        *,
        detach_grace: Optional[float] = None,
        session_queue_limit: int = 0,
        poison_threshold: int = 3,
        resurrect_policy: Optional[BackoffPolicy] = None,
        replay_timeout: float = 30.0,
    ):
        self.pool = pool
        self.max_sessions = max_sessions
        self.queue = queue
        self.idle_timeout = idle_timeout
        self.detach_grace = detach_grace
        self.session_queue_limit = session_queue_limit
        self.poison_threshold = poison_threshold
        self.resurrect_policy = resurrect_policy or BackoffPolicy(
            max_restarts=2, initial_delay=0.05, max_delay=1.0
        )
        self.replay_timeout = replay_timeout
        self.sessions: Dict[str, Session] = {}
        self.stats = SessionStats()
        self.draining = False
        #: programs tripped by the poison-pill circuit breaker
        self.quarantined: set = set()
        #: supervision events (resurrections), drained by callers
        self.events: List[SupervisionEvent] = []
        self._deaths: Dict[str, int] = {}
        self._slots = asyncio.Semaphore(max_sessions)
        self._next_id = 0
        self._reaper_task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        if self._reaper_task is None and (
            self.idle_timeout is not None or self.detach_grace is not None
        ):
            self._reaper_task = asyncio.ensure_future(self._reap_idle())

    async def close(self) -> None:
        self._closed = True
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        for session in list(self.sessions.values()):
            await self.close_session(session)
        await self.pool.close()

    async def drain(
        self,
        deadline: float = 5.0,
        snapshot_dir: Optional[str] = None,
    ) -> None:
        """Graceful shutdown: stop admitting, finish, snapshot, wind down.

        Flips the manager into draining (new opens answer a typed
        retry-after error), waits up to ``deadline`` seconds for in-flight
        commands to finish, snapshots every recording session's timeline
        into ``snapshot_dir`` (best effort), closes all sessions, and
        winds the pool down. Idempotent.
        """
        if self.draining:
            return
        self.draining = True
        loop = asyncio.get_event_loop()
        cutoff = loop.time() + deadline
        while loop.time() < cutoff and any(
            session.busy or session.pending
            for session in self.sessions.values()
        ):
            await asyncio.sleep(0.02)
        for session in list(self.sessions.values()):
            if (
                snapshot_dir is not None
                and session.manifest is not None
                and session.manifest.recording
                and not session.dead
                and not session.busy
                and session.child.alive()
            ):
                try:
                    dump = await session.child.request(
                        "-timeline-dump", timeout=5.0
                    )
                    os.makedirs(snapshot_dir, exist_ok=True)
                    path = os.path.join(
                        snapshot_dir,
                        f"{session.session_id}.timeline.json",
                    )
                    with open(path, "w", encoding="utf-8") as handle:
                        json.dump(dump, handle)
                except (TrackerError, asyncio.TimeoutError, OSError):
                    pass  # drain must finish even if a snapshot cannot
            await self.close_session(session)
        await self.pool.close()

    # ------------------------------------------------------------------
    # Opening and closing sessions
    # ------------------------------------------------------------------

    def _assign_id(self, requested: Optional[str]) -> str:
        if requested is not None:
            if not protocol.valid_session_id(requested):
                raise TrackerError(f"invalid session id {requested!r}")
            if requested in self.sessions:
                raise TrackerError(f"session {requested!r} already exists")
            return requested
        while True:
            self._next_id += 1
            candidate = f"s{self._next_id}"
            if candidate not in self.sessions:
                return candidate

    async def _admit(self) -> None:
        if self._slots.locked():  # no free slot right now
            if not self.queue:
                self.stats.rejected += 1
                raise ServiceBusy(
                    f"service at capacity ({self.max_sessions} sessions)"
                )
            self.stats.queued += 1
        await self._slots.acquire()

    async def open(
        self,
        program: str,
        args: Optional[List[str]] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        session_id: Optional[str] = None,
    ) -> Session:
        """Admit, bind, and register one session (the service open path).

        The child is drawn warm when the pool has one; the program load
        is the only per-open round trip. A failed load releases the child
        back to the pool (a failed ``-file-exec-and-symbols`` leaves the
        child idle, so it stays reusable) and re-raises as
        :class:`TrackerError`.
        """
        if self.draining:
            self.stats.rejected += 1
            raise ServiceDraining(
                protocol.retryable_message(
                    "service is draining; not accepting new sessions", 5
                ),
                retry_after=5.0,
            )
        if program in self.quarantined:
            self.stats.rejected += 1
            raise ProgramQuarantined(
                f"program {program!r} is quarantined: it killed "
                f"{self.poison_threshold} consecutive child servers"
            )
        await self._admit()
        try:
            sid = self._assign_id(session_id)
            child = await self.pool.acquire()
        except BaseException:
            self._slots.release()
            raise
        tainted = False
        effective_limits = (
            limits
            if limits is not None and limits != ResourceLimits()
            else None
        )
        try:
            if effective_limits is not None:
                await child.request(
                    "-apply-limits",
                    options=_limit_options(effective_limits),
                )
                tainted = True
            await child.request(
                "-file-exec-and-symbols", [program] + list(args or [])
            )
        except BaseException as error:
            await self.pool.release(
                child,
                reusable=not tainted
                and not isinstance(error, ServerCrashError),
            )
            self._slots.release()
            raise
        session = Session(
            session_id=sid,
            child=child,
            program=program,
            wire_id=sid,
            tainted=tainted,
            manager=self,
            manifest=RecoveryManifest(
                program=program,
                args=list(args or []),
                limits=effective_limits,
            ),
            max_pending=self.session_queue_limit,
        )
        session.touch()
        self.sessions[sid] = session
        self.stats.total_opened += 1
        return session

    async def close_session(self, session: Session) -> None:
        """Unregister the session and park or retire its child.

        Reuse verdict: the child goes back on the shelf only when it is
        alive, untainted, and its inferior either never started or ran to
        completion — anything mid-run may leave inferior threads behind
        in the child interpreter, which must not haunt the next session.
        """
        if session.closed:
            return
        session.closed = True
        self.sessions.pop(session.session_id, None)
        if session.dead:
            self.stats.crashed += 1
        reusable = (
            session.child.alive()
            and not session.tainted
            and not session.dead
            and not session.dialogue_pending
            and (not session.started or session.exited)
        )
        await self.pool.release(session.child, reusable=reusable)
        self.stats.closed += 1
        self._slots.release()

    # ------------------------------------------------------------------
    # Resurrection
    # ------------------------------------------------------------------

    def note_child_healthy(self, program: str) -> None:
        """A completed dialogue resets the poison-pill death streak."""
        self._deaths.pop(program, None)

    async def resurrect(
        self, session: Session, error: ServerCrashError
    ) -> Optional[Dict[str, Any]]:
        """Provision a replacement child and rebuild ``session`` onto it.

        Returns the ``=session-resurrected`` payload on success, ``None``
        when the session must tombstone instead — the program is
        quarantined, the manager is draining/closed, or every backoff
        attempt failed.
        """
        self.stats.child_deaths += 1
        program = session.program
        deaths = self._deaths.get(program, 0) + 1
        self._deaths[program] = deaths
        if self._closed or self.draining or session.manifest is None:
            return None
        if deaths >= self.poison_threshold:
            if program not in self.quarantined:
                self.quarantined.add(program)
                self.stats.quarantined += 1
            return None
        attempts = 0
        for delay in [0.0] + list(self.resurrect_policy.delays()):
            if delay:
                await asyncio.sleep(delay)
            if self._closed or self.draining:
                return None
            attempts += 1
            child = None
            try:
                child = await self.pool.acquire()
                degraded, launched = await self._rebuild(session, child)
            except (TrackerError, asyncio.TimeoutError, OSError):
                if child is not None:
                    await self.pool.release(child, reusable=False)
                continue
            old_child = session.child
            session.child = child
            session.epoch += 1
            session.degraded = degraded
            session.tainted = session.manifest.limits is not None
            session.dialogue_pending = False
            session.started = launched
            await self.pool.release(old_child, reusable=False)
            self.stats.resurrected += 1
            if degraded:
                self.stats.degraded += 1
            payload = {
                "session": session.session_id,
                "epoch": session.epoch,
                "degraded": degraded,
                "pid": child.pid,
                "attempts": attempts,
                "pause_index": session.manifest.pause_index,
            }
            self.events.append(
                SupervisionEvent(
                    kind=SESSION_RESURRECTED,
                    message=(
                        f"session {session.session_id} resurrected on "
                        f"pid {child.pid} (epoch {session.epoch}, "
                        f"degraded={degraded})"
                    ),
                    details=dict(payload, cause=str(error)),
                )
            )
            return payload
        return None

    async def _rebuild(
        self, session: Session, child: ChildHandle
    ) -> Tuple[bool, bool]:
        """Replay the manifest into ``child``.

        Re-applies resource limits, re-loads the program, then replays
        the command log in original order. Exec entries re-execute only
        while the history is deterministic; the first divergence (or a
        pre-poisoned history) abandons the execution position.

        Returns ``(degraded, launched)``: whether the execution position
        was lost, and whether the replay left an inferior running (the
        new child's ``started`` state).
        """
        manifest = session.manifest
        assert manifest is not None
        if manifest.limits is not None:
            await child.request(
                "-apply-limits", options=_limit_options(manifest.limits)
            )
        await child.request(
            "-file-exec-and-symbols",
            [manifest.program] + list(manifest.args),
        )
        replay_exec = manifest.replay_valid
        degraded = False
        launched = False
        for kind, body in manifest.log:
            if kind == "setup":
                await child.request_line(body, timeout=self.replay_timeout)
                continue
            if not replay_exec:
                degraded = True
                continue
            payload = await child.run_line(
                body, timeout=self.replay_timeout
            )
            reason = payload.get("reason")
            if reason in ("exited", "interrupted"):
                # The re-execution diverged from the recorded history
                # (e.g. the program reads wall clock or randomness).
                replay_exec = False
                manifest.replay_valid = False
                degraded = True
                launched = False
            else:
                launched = True
        if session.started and not launched:
            degraded = True  # the old child was mid-run; position lost
        return degraded, launched

    def drain_supervision_events(self) -> List[SupervisionEvent]:
        events, self.events = self.events, []
        return events

    # ------------------------------------------------------------------
    # Idle reaping
    # ------------------------------------------------------------------

    async def _reap_idle(self) -> None:
        horizons = [
            t
            for t in (self.idle_timeout, self.detach_grace)
            if t is not None
        ]
        interval = max(min(min(horizons) / 4, 1.0), 0.05)
        while not self._closed:
            await asyncio.sleep(interval)
            for session in list(self.sessions.values()):
                if session.busy or session.pending:
                    continue  # a command is in flight or queued: not idle
                now = asyncio.get_event_loop().time()
                if session.detached_at is not None:
                    if (
                        self.detach_grace is not None
                        and now - session.detached_at > self.detach_grace
                    ):
                        self.stats.reaped += 1
                        await self.close_session(session)
                    continue
                if (
                    self.idle_timeout is not None
                    and now - session.last_activity > self.idle_timeout
                ):
                    self.stats.reaped += 1
                    await self.close_session(session)

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "sessions": sorted(self.sessions),
            "open_sessions": len(self.sessions),
            "max_sessions": self.max_sessions,
            "draining": self.draining,
            "quarantined_programs": sorted(self.quarantined),
            **self.stats.to_dict(),
            "pool": dict(self.pool.stats),
        }


def _limit_options(limits: ResourceLimits) -> Dict[str, int]:
    options: Dict[str, int] = {}
    if limits.address_space is not None:
        options["as"] = limits.address_space
    if limits.cpu_seconds is not None:
        options["cpu"] = limits.cpu_seconds
    if limits.file_size is not None:
        options["fsize"] = limits.file_size
    return options
