"""Session multiplexing: N debugging sessions over one event loop.

A :class:`Session` is one program bound to one pooled child server. The
:class:`SessionManager` owns all of them: it admits new sessions against
a concurrency bound (waiting or rejecting, per configuration), binds each
to a child from the :class:`~repro.service.pool.WarmPool`, applies the
session's resource limits inside the child, reaps sessions that go idle,
and decides at close time whether the child is clean enough to go back on
the shelf.

Command execution is *per-session serialized, cross-session concurrent*:
each session has an ``asyncio.Lock``, so two commands to the same session
queue up (the MI dialogue is strictly request/reply), while commands to
different sessions interleave freely on the event loop — thirty inferiors
can be mid-``-exec-continue`` at once and the service thread count stays
at one.

A child that dies mid-command is translated into the same records the
in-process stack produces for a dead inferior: run-control answers with a
synthesized ``*stopped,reason="exited"`` (exit code ``128+signal`` for
signal deaths, mirroring shell conventions and
:class:`~repro.subproc.tracker.SubprocPythonTracker`), inspection answers
with ``^error``. The session survives as a tombstone until closed so the
client can still read the verdict.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.errors import ServerCrashError, TrackerError
from repro.mi import protocol
from repro.service.pool import ChildHandle, WarmPool
from repro.subproc.limits import ResourceLimits

#: MI commands whose reply is a run-control dialogue (``^running`` then
#: eventually ``*stopped``) rather than a single ``^done``/``^error``.
EXEC_COMMANDS = frozenset(
    [
        "-exec-run",
        "-exec-continue",
        "-exec-step",
        "-exec-next",
        "-exec-finish",
    ]
)


class ServiceBusy(TrackerError):
    """Admission control rejected the session (service at capacity)."""


@dataclass
class SessionStats:
    """Manager-level counters, surfaced via ``-service-stats``."""

    total_opened: int = 0
    closed: int = 0
    rejected: int = 0
    queued: int = 0
    reaped: int = 0
    crashed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "total_opened": self.total_opened,
            "closed": self.closed,
            "rejected": self.rejected,
            "queued": self.queued,
            "reaped": self.reaped,
            "crashed": self.crashed,
        }


@dataclass
class Session:
    """One bound debugging session: a program inside a pooled child."""

    session_id: str
    child: ChildHandle
    program: str
    #: the id used on the wire; ``None`` for an implicit legacy session
    #: (its client speaks id-less MI, so synthesized records stay id-less)
    wire_id: Optional[str] = None
    #: ``-exec-run`` has been issued (reuse gate: a started-but-unfinished
    #: inferior may leave threads behind in the child)
    started: bool = False
    #: the inferior ran to completion (makes a started child reusable)
    exited: bool = False
    #: resource limits were applied or the child crashed — never reuse
    tainted: bool = False
    closed: bool = False
    #: the child died; commands answer from the tombstone
    dead: bool = False
    #: a dialogue was started and never completed (cancelled task,
    #: connection torn down mid-command) — the child's pipe may hold a
    #: half-read reply, so it must not be reused
    dialogue_pending: bool = False
    exit_code: Optional[int] = None
    last_activity: float = 0.0
    lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)

    @property
    def busy(self) -> bool:
        """A command is in flight (idle reaping must leave it alone)."""
        return self.lock.locked()

    def touch(self) -> None:
        self.last_activity = asyncio.get_event_loop().time()

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    async def run_command(self, line: str) -> List[str]:
        """Forward one command line; return the reply record lines.

        ``line`` carries this session's id prefix (or none, for an
        implicit legacy session) — the child echoes whatever framing it
        receives, so the records come back correctly tagged without the
        service rewriting them.

        ``-exec-interrupt`` never takes this path (it would deadlock
        behind the very command it is meant to interrupt); see
        :meth:`interrupt`.
        """
        session, body = protocol.split_session(line.strip())
        command_name = body.split(None, 1)[0] if body else ""
        async with self.lock:
            self.touch()
            if self.closed:
                return [self._tag(protocol.format_error("session is closed"))]
            if self.dead:
                return self._tombstone_reply(command_name)
            try:
                return await self._dialogue(line, command_name)
            except ServerCrashError as error:
                return self._child_died(command_name, error)

    async def _dialogue(self, line: str, command_name: str) -> List[str]:
        self.dialogue_pending = True
        await self.child.transport.send_line(line)
        if command_name == "-exec-run":
            self.started = True
        records: List[str] = []
        exec_command = command_name in EXEC_COMMANDS
        while True:
            raw = await self.child.transport.recv_line(timeout=None)
            if raw is None:  # pragma: no cover - no timeout in use
                continue
            raw = raw.rstrip("\n")
            self.touch()
            records.append(raw)
            record = protocol.parse_record(raw)
            if record.kind == "stopped":
                payload = record.payload or {}
                if payload.get("reason") == "exited":
                    self.exited = True
                    self.exit_code = payload.get("exitcode")
                self.dialogue_pending = False
                return records
            if record.kind == "error":
                self.dialogue_pending = False
                return records
            if record.kind == "done":
                if not exec_command:
                    self.dialogue_pending = False
                    return records
                # a stale-interrupt ack racing the run; keep reading

    async def interrupt(self) -> None:
        """Fire-and-forget: pause whatever this session is running.

        Goes straight to the transport (bypassing the session lock): the
        ``*stopped`` it provokes is delivered as the answer of the
        run-control command already in flight, exactly like the blocking
        client's deadline path.
        """
        if self.closed or self.dead:
            return
        try:
            await self.child.transport.interrupt()
        except ServerCrashError:
            pass  # the in-flight command will report the death

    # ------------------------------------------------------------------
    # Death and tombstones
    # ------------------------------------------------------------------

    def _child_died(
        self, command_name: str, error: ServerCrashError
    ) -> List[str]:
        self.dead = True
        self.tainted = True
        code = self.child.transport.exit_code()
        if code is not None and code < 0:
            code = 128 - code  # signal death, shell convention
        if not self.exited:
            self.exited = True
            self.exit_code = code
        reply = self._tombstone_reply(command_name)
        if command_name not in EXEC_COMMANDS:
            reply = [self._tag(protocol.format_error(str(error)))]
        return reply

    def _tombstone_reply(self, command_name: str) -> List[str]:
        """What a dead session answers, mirroring a dead inferior."""
        if command_name in EXEC_COMMANDS:
            payload: Dict[str, Any] = {
                "reason": "exited",
                "exitcode": self.exit_code,
                "error": "the session's child server died",
            }
            return [
                self._tag(protocol.format_running()),
                self._tag(protocol.format_stopped(payload)),
            ]
        return [
            self._tag(
                protocol.format_error("the session's child server died")
            )
        ]

    def _tag(self, record: str) -> str:
        if self.wire_id is None:
            return record
        return protocol.tag_record(record, self.wire_id)


class SessionManager:
    """Admission, binding, reaping, and reuse policy for all sessions.

    Args:
        pool: the warm child pool sessions draw from.
        max_sessions: concurrent-session bound (admission control).
        queue: when the bound is hit, ``True`` parks new opens until a
            slot frees (bounded hospitality), ``False`` rejects them
            immediately with :class:`ServiceBusy` (fail fast).
        idle_timeout: seconds of inactivity after which a session with no
            command in flight is force-closed; ``None`` disables reaping.
    """

    def __init__(
        self,
        pool: WarmPool,
        max_sessions: int = 16,
        queue: bool = True,
        idle_timeout: Optional[float] = None,
    ):
        self.pool = pool
        self.max_sessions = max_sessions
        self.queue = queue
        self.idle_timeout = idle_timeout
        self.sessions: Dict[str, Session] = {}
        self.stats = SessionStats()
        self._slots = asyncio.Semaphore(max_sessions)
        self._next_id = 0
        self._reaper_task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        if self.idle_timeout is not None and self._reaper_task is None:
            self._reaper_task = asyncio.ensure_future(self._reap_idle())

    async def close(self) -> None:
        self._closed = True
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        for session in list(self.sessions.values()):
            await self.close_session(session)
        await self.pool.close()

    # ------------------------------------------------------------------
    # Opening and closing sessions
    # ------------------------------------------------------------------

    def _assign_id(self, requested: Optional[str]) -> str:
        if requested is not None:
            if not protocol.valid_session_id(requested):
                raise TrackerError(f"invalid session id {requested!r}")
            if requested in self.sessions:
                raise TrackerError(f"session {requested!r} already exists")
            return requested
        while True:
            self._next_id += 1
            candidate = f"s{self._next_id}"
            if candidate not in self.sessions:
                return candidate

    async def _admit(self) -> None:
        if self._slots.locked():  # no free slot right now
            if not self.queue:
                self.stats.rejected += 1
                raise ServiceBusy(
                    f"service at capacity ({self.max_sessions} sessions)"
                )
            self.stats.queued += 1
        await self._slots.acquire()

    async def open(
        self,
        program: str,
        args: Optional[List[str]] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        session_id: Optional[str] = None,
    ) -> Session:
        """Admit, bind, and register one session (the service open path).

        The child is drawn warm when the pool has one; the program load
        is the only per-open round trip. A failed load releases the child
        back to the pool (a failed ``-file-exec-and-symbols`` leaves the
        child idle, so it stays reusable) and re-raises as
        :class:`TrackerError`.
        """
        await self._admit()
        try:
            sid = self._assign_id(session_id)
            child = await self.pool.acquire()
        except BaseException:
            self._slots.release()
            raise
        tainted = False
        try:
            if limits is not None and limits != ResourceLimits():
                await child.request(
                    "-apply-limits", options=_limit_options(limits)
                )
                tainted = True
            await child.request(
                "-file-exec-and-symbols", [program] + list(args or [])
            )
        except BaseException as error:
            await self.pool.release(
                child,
                reusable=not tainted
                and not isinstance(error, ServerCrashError),
            )
            self._slots.release()
            raise
        session = Session(
            session_id=sid,
            child=child,
            program=program,
            wire_id=sid,
            tainted=tainted,
        )
        session.touch()
        self.sessions[sid] = session
        self.stats.total_opened += 1
        return session

    async def close_session(self, session: Session) -> None:
        """Unregister the session and park or retire its child.

        Reuse verdict: the child goes back on the shelf only when it is
        alive, untainted, and its inferior either never started or ran to
        completion — anything mid-run may leave inferior threads behind
        in the child interpreter, which must not haunt the next session.
        """
        if session.closed:
            return
        session.closed = True
        self.sessions.pop(session.session_id, None)
        if session.dead:
            self.stats.crashed += 1
        reusable = (
            session.child.alive()
            and not session.tainted
            and not session.dead
            and not session.dialogue_pending
            and (not session.started or session.exited)
        )
        await self.pool.release(session.child, reusable=reusable)
        self.stats.closed += 1
        self._slots.release()

    # ------------------------------------------------------------------
    # Idle reaping
    # ------------------------------------------------------------------

    async def _reap_idle(self) -> None:
        interval = max(min(self.idle_timeout / 4, 1.0), 0.05)
        while not self._closed:
            await asyncio.sleep(interval)
            now = asyncio.get_event_loop().time()
            for session in list(self.sessions.values()):
                if session.busy:
                    continue  # a command is in flight: not idle
                if now - session.last_activity > self.idle_timeout:
                    self.stats.reaped += 1
                    await self.close_session(session)

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "sessions": sorted(self.sessions),
            "open_sessions": len(self.sessions),
            "max_sessions": self.max_sessions,
            **self.stats.to_dict(),
            "pool": dict(self.pool.stats),
        }


def _limit_options(limits: ResourceLimits) -> Dict[str, int]:
    options: Dict[str, int] = {}
    if limits.address_space is not None:
        options["as"] = limits.address_space
    if limits.cpu_seconds is not None:
        options["cpu"] = limits.cpu_seconds
    if limits.file_size is not None:
        options["fsize"] = limits.file_size
    return options
