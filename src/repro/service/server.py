"""The tracker service front-end: session-id MI over TCP or stdio.

One listening socket (or one stdin/stdout pair), many debugging sessions.
The wire protocol is the MI dialect everything else in this repo speaks,
plus the session-id framing of :mod:`repro.mi.protocol`: a command
prefixed ``s1-exec-run`` belongs to session ``s1`` and every record it
provokes comes back prefixed ``s1``. Three service-level commands manage
the sessions themselves:

- ``-session-open <prog> [args...]`` (options ``--as``/``--cpu``/
  ``--fsize`` for resource limits) binds a pooled child to a new session
  and answers ``^done,{"session": "s3", ...}``. A client that prefixes
  the open (``c7-session-open ...``) chooses its own id — that is how
  concurrent opens on one connection stay unambiguous.
- ``<sid>-session-close`` ends a session; its child goes back to the warm
  pool when it is clean enough to reuse.
- ``-service-stats`` reports manager and pool counters.

**Legacy clients need none of this.** An id-less connection gets an
implicit session: the ordinary ``-file-exec-and-symbols prog.py`` a
:class:`~repro.mi.client.MIClient` sends on startup opens it, every
id-less command routes to it, and every reply stays id-less — a blocking
single-session client cannot tell this service from a dedicated
``python -m repro.subproc.server`` child.

Commands run as per-session tasks: a connection driving eight sessions
has eight dialogues in flight, interleaved on one event loop, each
serialized only against its own session. Replies are written atomically
(record batch per command) under a per-connection writer lock.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import ProtocolError, TrackerError
from repro.mi import protocol
from repro.mi.transport import _ASYNC_LINE_LIMIT
from repro.service.manager import Session, SessionManager
from repro.service.pool import WarmPool
from repro.subproc.limits import ResourceLimits


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`TrackerService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port
    pool_size: int = 4
    max_sessions: int = 16
    #: at capacity: queue new opens (True) or reject them (False)
    queue: bool = True
    #: seconds of inactivity before a session is reaped; None = never
    idle_timeout: Optional[float] = None
    #: child command line override (tests inject crashing stubs)
    spawn_argv: Optional[Tuple[str, ...]] = None


class TrackerService:
    """The multiplexing server: warm pool + session manager + framing."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.pool = WarmPool(
            size=self.config.pool_size,
            spawn_argv=(
                list(self.config.spawn_argv)
                if self.config.spawn_argv
                else None
            ),
        )
        self.manager = SessionManager(
            self.pool,
            max_sessions=self.config.max_sessions,
            queue=self.config.queue,
            idle_timeout=self.config.idle_timeout,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Warm the pool and start listening (TCP mode)."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.config.host,
            self.config.port,
            limit=_ASYNC_LINE_LIMIT,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        sockets = self._server.sockets if self._server else None
        if not sockets:
            raise TrackerError("service is not listening")
        return sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    async def run_stdio(self) -> int:
        """Serve one connection over this process's stdin/stdout.

        This is what makes the service a drop-in for a dedicated child
        server: a blocking client spawns ``python -m repro serve
        --stdio`` and speaks plain MI at it. SIGINT (the blocking
        client's belt-and-braces interrupt) is forwarded to every open
        session instead of killing the service.
        """
        await self.manager.start()
        loop = asyncio.get_event_loop()
        reader = asyncio.StreamReader(limit=_ASYNC_LINE_LIMIT)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        try:
            loop.add_signal_handler(signal.SIGINT, self._interrupt_all)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        try:
            await self._serve_connection(reader, writer)
        finally:
            try:
                loop.remove_signal_handler(signal.SIGINT)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
            await self.manager.close()
        return 0

    def _interrupt_all(self) -> None:
        for session in list(self.manager.sessions.values()):
            asyncio.ensure_future(session.interrupt())

    # ------------------------------------------------------------------
    # One connection
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, reader, writer)
        try:
            await conn.run()
        finally:
            await conn.cleanup()


class _Connection:
    """Per-connection state: owned sessions, writer lock, command tasks."""

    def __init__(
        self,
        service: TrackerService,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        #: sessions opened over this connection, by wire id
        self.sessions: Dict[str, Session] = {}
        #: the id-less legacy session, if one was opened
        self.implicit: Optional[Session] = None
        self.tasks: Set["asyncio.Task"] = set()
        self.finished = False

    # -- plumbing --------------------------------------------------------

    async def write_records(self, records: List[str]) -> None:
        if not records:
            return
        async with self.write_lock:
            for record in records:
                self.writer.write((record + "\n").encode("utf-8"))
            try:
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self.finished = True

    def spawn(self, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)

    # -- the read loop ---------------------------------------------------

    async def run(self) -> None:
        await self.write_records(
            [protocol.format_done({"service": "repro-tracker", "version": 1})]
        )
        while not self.finished:
            try:
                raw = await self.reader.readline()
            except (ConnectionResetError, BrokenPipeError, ValueError):
                break
            if not raw:
                break
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            await self.dispatch(line)

    async def dispatch(self, line: str) -> None:
        session_id, body = protocol.split_session(line)
        name = body.split(None, 1)[0] if body else ""
        if name == "-session-open":
            self.spawn(self.open_session(line))
        elif name == "-session-close":
            self.spawn(self.close_session(session_id))
        elif name == "-service-stats":
            stats = self.service.manager.stats_dict()
            self.spawn(
                self.write_records([self.tag(protocol.format_done(stats),
                                             session_id)])
            )
        elif name == "-gdb-exit" and session_id is None:
            await self.write_records([protocol.format_done()])
            self.finished = True
        elif session_id is not None:
            self.spawn(self.run_in_session(session_id, line, body))
        else:
            self.spawn(self.run_legacy(line, name))

    @staticmethod
    def tag(record: str, session_id: Optional[str]) -> str:
        return (
            record
            if session_id is None
            else protocol.tag_record(record, session_id)
        )

    # -- session commands ------------------------------------------------

    async def open_session(self, line: str) -> None:
        session_id, _ = protocol.split_session(line)
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        if not command.args:
            await self.write_records(
                [self.tag(protocol.format_error(
                    "session-open needs a program path"), session_id)]
            )
            return
        limits = ResourceLimits(
            address_space=command.option_int("as"),
            cpu_seconds=command.option_int("cpu"),
            file_size=command.option_int("fsize"),
        )
        try:
            session = await self.service.manager.open(
                command.args[0],
                list(command.args[1:]),
                limits=limits,
                session_id=session_id,
            )
        except TrackerError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        self.sessions[session.session_id] = session
        await self.write_records(
            [
                self.tag(
                    protocol.format_done(
                        {
                            "session": session.session_id,
                            "pid": session.child.pid,
                            "warm": session.child.warm,
                        }
                    ),
                    session_id,
                )
            ]
        )

    async def close_session(self, session_id: Optional[str]) -> None:
        session = (
            self.implicit if session_id is None
            else self.sessions.get(session_id)
        )
        if session is None:
            await self.write_records(
                [self.tag(protocol.format_error(
                    f"no session {session_id!r}"), session_id)]
            )
            return
        await self.service.manager.close_session(session)
        self.sessions.pop(session.session_id, None)
        if session is self.implicit:
            self.implicit = None
        await self.write_records(
            [self.tag(protocol.format_done(
                {"closed": session.session_id}), session_id)]
        )

    async def run_in_session(
        self, session_id: str, line: str, body: str
    ) -> None:
        session = self.sessions.get(session_id)
        if session is None:
            await self.write_records(
                [self.tag(protocol.format_error(
                    f"no session {session_id!r}"), session_id)]
            )
            return
        if body.strip() == "-exec-interrupt":
            await session.interrupt()
            return
        await self.write_records(await session.run_command(line))

    # -- the implicit legacy session -------------------------------------

    async def run_legacy(self, line: str, name: str) -> None:
        """An id-less command: route to (or open) the implicit session."""
        if name == "-exec-interrupt" and self.implicit is not None:
            await self.implicit.interrupt()
            return
        if self.implicit is None:
            if name != "-file-exec-and-symbols":
                await self.write_records(
                    [protocol.format_error(
                        "no session; send -session-open (or "
                        "-file-exec-and-symbols for a legacy session)")]
                )
                return
            await self.open_implicit(line)
            return
        await self.write_records(await self.implicit.run_command(line))

    async def open_implicit(self, line: str) -> None:
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records([protocol.format_error(str(error))])
            return
        if not command.args:
            await self.write_records(
                [protocol.format_error("file-exec-and-symbols needs a path")]
            )
            return
        try:
            session = await self.service.manager.open(
                command.args[0], list(command.args[1:])
            )
        except TrackerError as error:
            await self.write_records([protocol.format_error(str(error))])
            return
        session.wire_id = None  # its client speaks id-less MI
        self.implicit = session
        self.sessions[session.session_id] = session
        await self.write_records(
            [protocol.format_done({"file": session.program})]
        )

    # -- teardown --------------------------------------------------------

    async def cleanup(self) -> None:
        for task in list(self.tasks):
            task.cancel()
        if self.tasks:
            await asyncio.gather(*self.tasks, return_exceptions=True)
        for session in list(self.sessions.values()):
            await self.service.manager.close_session(session)
        self.sessions.clear()
        self.implicit = None
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
