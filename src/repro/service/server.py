"""The tracker service front-end: session-id MI over TCP or stdio.

One listening socket (or one stdin/stdout pair), many debugging sessions.
The wire protocol is the MI dialect everything else in this repo speaks,
plus the session-id framing of :mod:`repro.mi.protocol`: a command
prefixed ``s1-exec-run`` belongs to session ``s1`` and every record it
provokes comes back prefixed ``s1``. Service-level commands manage the
sessions themselves:

- ``-session-open <prog> [args...]`` (options ``--as``/``--cpu``/
  ``--fsize`` for resource limits) binds a pooled child to a new session
  and answers ``^done,{"session": "s3", "epoch": 1, ...}``. A client that
  prefixes the open (``c7-session-open ...``) chooses its own id — that
  is how concurrent opens on one connection stay unambiguous.
- ``-session-attach <sid>`` adopts a *detached* session onto this
  connection — the reconnect path. A session whose connection dropped is
  not closed; it detaches and buffers its records for ``detach_grace``
  seconds, and a client that reconnects re-attaches and receives the
  backlog (including the answer of a command that was in flight when the
  TCP connection died). The reply carries the session's current *epoch*
  (bumped on every resurrection) and ``degraded`` flag.
- ``<sid>-session-close`` ends a session; its child goes back to the warm
  pool when it is clean enough to reuse.
- ``-service-stats`` reports manager and pool counters.
- ``-service-auth <token>`` authenticates the connection when the
  service was started with a shared secret (``--token-file``); until it
  succeeds every other command answers a typed error. Loopback services
  without a token skip the handshake entirely.

**Legacy clients need none of this.** An id-less connection gets an
implicit session: the ordinary ``-file-exec-and-symbols prog.py`` a
:class:`~repro.mi.client.MIClient` sends on startup opens it, every
id-less command routes to it, and every reply stays id-less — a blocking
single-session client cannot tell this service from a dedicated
``python -m repro.subproc.server`` child.

Commands run as per-session tasks: a connection driving eight sessions
has eight dialogues in flight, interleaved on one event loop, each
serialized only against its own session. Replies are written atomically
(record batch per command) under a per-connection writer lock, and
routed to the session's *current* owner — a command that outlives its
connection delivers into the session backlog instead of the void.

SIGTERM drains the service: admission starts answering a typed
retry-after error, in-flight commands get ``drain_deadline`` seconds to
finish, recording sessions snapshot their timelines (``snapshot_dir``),
every session closes, and the pool winds down.
"""

from __future__ import annotations

import asyncio
import hmac
import signal
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.errors import ProtocolError, TrackerError
from repro.mi import protocol
from repro.mi.transport import _ASYNC_LINE_LIMIT
from repro.service.manager import Session, SessionManager
from repro.service.pool import WarmPool
from repro.subproc.limits import ResourceLimits


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`TrackerService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port
    pool_size: int = 4
    max_sessions: int = 16
    #: at capacity: queue new opens (True) or reject them (False)
    queue: bool = True
    #: seconds of inactivity before a session is reaped; None = never
    idle_timeout: Optional[float] = None
    #: child command line override (tests inject crashing stubs)
    spawn_argv: Optional[Tuple[str, ...]] = None
    #: seconds a detached session awaits ``-session-attach`` before the
    #: reaper closes it; None = drop-closes sessions immediately (the
    #: pre-reconnect behavior)
    detach_grace: Optional[float] = 30.0
    #: shared secret; when set, every connection must ``-service-auth``
    token: Optional[str] = None
    #: bound on queued commands per session (0 = unbounded)
    session_queue_limit: int = 8
    #: consecutive child deaths before a program is quarantined
    poison_threshold: int = 3
    #: seconds in-flight commands get to finish during a drain
    drain_deadline: float = 5.0
    #: where draining sessions dump their timelines (None = don't)
    snapshot_dir: Optional[str] = None
    #: child transport factory override (chaos harness injection point)
    transport_spawner: Optional[Callable] = None
    #: PEM certificate chain + private key: when both are set the listener
    #: speaks TLS (required for non-loopback binds unless a token is set)
    tls_cert: Optional[str] = None
    tls_key: Optional[str] = None


class TrackerService:
    """The multiplexing server: warm pool + session manager + framing."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.pool = WarmPool(
            size=self.config.pool_size,
            spawn_argv=(
                list(self.config.spawn_argv)
                if self.config.spawn_argv
                else None
            ),
            transport_spawner=self.config.transport_spawner,
        )
        self.manager = SessionManager(
            self.pool,
            max_sessions=self.config.max_sessions,
            queue=self.config.queue,
            idle_timeout=self.config.idle_timeout,
            detach_grace=self.config.detach_grace,
            session_queue_limit=self.config.session_queue_limit,
            poison_threshold=self.config.poison_threshold,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ssl_context(self):
        """The server-side SSL context, or ``None`` when TLS is off."""
        cert, key = self.config.tls_cert, self.config.tls_key
        if not cert and not key:
            return None
        if not (cert and key):
            raise TrackerError(
                "TLS needs both a certificate and a key "
                "(--tls-cert/--tls-key)"
            )
        import ssl

        context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        try:
            context.load_cert_chain(certfile=cert, keyfile=key)
        except (OSError, ssl.SSLError) as error:
            raise TrackerError(
                f"cannot load TLS certificate {cert!r} / key {key!r}: {error}"
            ) from error
        return context

    async def start(self) -> None:
        """Warm the pool and start listening (TCP mode)."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.config.host,
            self.config.port,
            limit=_ASYNC_LINE_LIMIT,
            ssl=self._ssl_context(),
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        sockets = self._server.sockets if self._server else None
        if not sockets:
            raise TrackerError("service is not listening")
        return sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        loop = asyncio.get_event_loop()
        self._stopped = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread / platform without signal support
        serving = asyncio.ensure_future(self._server.serve_forever())
        stopped = asyncio.ensure_future(self._stopped.wait())
        try:
            await asyncio.wait(
                {serving, stopped}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serving.cancel()
            stopped.cancel()
            await asyncio.gather(serving, stopped, return_exceptions=True)
            try:
                loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    def begin_drain(self) -> None:
        """Kick off a graceful drain (the SIGTERM handler); idempotent."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self.drain())

    async def drain(self) -> None:
        """Drain the manager, then stop accepting connections."""
        await self.manager.drain(
            deadline=self.config.drain_deadline,
            snapshot_dir=self.config.snapshot_dir,
        )
        if self._server is not None:
            self._server.close()
        if self._stopped is not None:
            self._stopped.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stopped is not None:
            self._stopped.set()
        await self.manager.close()

    async def run_stdio(self) -> int:
        """Serve one connection over this process's stdin/stdout.

        This is what makes the service a drop-in for a dedicated child
        server: a blocking client spawns ``python -m repro serve
        --stdio`` and speaks plain MI at it. SIGINT (the blocking
        client's belt-and-braces interrupt) is forwarded to every open
        session instead of killing the service; SIGTERM drains it.
        """
        await self.manager.start()
        loop = asyncio.get_event_loop()
        self._stopped = asyncio.Event()
        reader = asyncio.StreamReader(limit=_ASYNC_LINE_LIMIT)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        handlers = []
        for signum, handler in (
            (signal.SIGINT, self._interrupt_all),
            (signal.SIGTERM, self.begin_drain),
        ):
            try:
                loop.add_signal_handler(signum, handler)
                handlers.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # pragma: no cover
        connection = asyncio.ensure_future(
            self._serve_connection(reader, writer)
        )
        stopped = asyncio.ensure_future(self._stopped.wait())
        try:
            await asyncio.wait(
                {connection, stopped},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            connection.cancel()
            stopped.cancel()
            await asyncio.gather(
                connection, stopped, return_exceptions=True
            )
            for signum in handlers:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # pragma: no cover
            await self.manager.close()
        return 0

    def _interrupt_all(self) -> None:
        for session in list(self.manager.sessions.values()):
            asyncio.ensure_future(session.interrupt())

    # ------------------------------------------------------------------
    # One connection
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(self, reader, writer)
        try:
            await conn.run()
        finally:
            await conn.cleanup()


class _Connection:
    """Per-connection state: owned sessions, writer lock, command tasks."""

    def __init__(
        self,
        service: TrackerService,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        #: sessions opened over this connection, by wire id
        self.sessions: Dict[str, Session] = {}
        #: the id-less legacy session, if one was opened
        self.implicit: Optional[Session] = None
        #: housekeeping tasks — cancelled when the connection drops
        self.tasks: Set["asyncio.Task"] = set()
        #: in-flight session dialogues — these *outlive* a dropped
        #: connection (their replies land in the session backlog, for
        #: delivery after a re-attach)
        self.command_tasks: Set["asyncio.Task"] = set()
        self.finished = False
        #: no token configured = every connection is born authenticated
        self.authed = service.config.token is None

    # -- plumbing --------------------------------------------------------

    async def write_records(self, records: List[str]) -> bool:
        """Write a record batch atomically; whether it was delivered."""
        if not records:
            return True
        if self.finished:
            return False
        async with self.write_lock:
            try:
                for record in records:
                    self.writer.write((record + "\n").encode("utf-8"))
                await self.writer.drain()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                RuntimeError,
            ):
                self.finished = True
                return False
        return True

    def spawn(self, coroutine, command: bool = False) -> None:
        task = asyncio.ensure_future(coroutine)
        bucket = self.command_tasks if command else self.tasks
        bucket.add(task)
        task.add_done_callback(bucket.discard)

    # -- the read loop ---------------------------------------------------

    async def run(self) -> None:
        await self.write_records(
            [
                protocol.format_done(
                    {
                        "service": "repro-tracker",
                        "version": 2,
                        "auth": self.service.config.token is not None,
                    }
                )
            ]
        )
        while not self.finished:
            try:
                raw = await self.reader.readline()
            except (ConnectionResetError, BrokenPipeError, ValueError):
                break
            if not raw:
                break
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            await self.dispatch(line)

    async def dispatch(self, line: str) -> None:
        session_id, body = protocol.split_session(line)
        name = body.split(None, 1)[0] if body else ""
        if name == "-service-auth":
            self.spawn(self.auth_connection(line))
            return
        if not self.authed:
            self.spawn(
                self.write_records(
                    [
                        self.tag(
                            protocol.format_error(
                                "authentication required; send "
                                "-service-auth <token>"
                            ),
                            session_id,
                        )
                    ]
                )
            )
            return
        if name == "-session-open":
            self.spawn(self.open_session(line))
        elif name == "-session-attach":
            self.spawn(self.attach_session(line))
        elif name == "-session-close":
            self.spawn(self.close_session(session_id))
        elif name == "-service-stats":
            stats = self.service.manager.stats_dict()
            self.spawn(
                self.write_records([self.tag(protocol.format_done(stats),
                                             session_id)])
            )
        elif name == "-gdb-exit" and session_id is None:
            await self.write_records([protocol.format_done()])
            self.finished = True
        elif session_id is not None:
            # Touch + count *synchronously*, before the command task is
            # even scheduled: the idle reaper must never see the gap
            # between dispatch and the task's first await.
            session = self.sessions.get(session_id)
            counted = False
            if session is not None:
                session.touch()
                if body.strip() != "-exec-interrupt":
                    session.pending += 1
                    counted = True
            self.spawn(
                self.run_in_session(session_id, line, body, counted),
                command=True,
            )
        else:
            implicit = self.implicit
            counted = False
            if implicit is not None and name != "-exec-interrupt":
                implicit.touch()
                implicit.pending += 1
                counted = True
            self.spawn(self.run_legacy(line, name, counted), command=True)

    @staticmethod
    def tag(record: str, session_id: Optional[str]) -> str:
        return (
            record
            if session_id is None
            else protocol.tag_record(record, session_id)
        )

    # -- auth ------------------------------------------------------------

    async def auth_connection(self, line: str) -> None:
        session_id, _ = protocol.split_session(line)
        token = self.service.config.token
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        if token is None:
            self.authed = True
            await self.write_records(
                [self.tag(protocol.format_done(
                    {"authenticated": True, "required": False}),
                    session_id)]
            )
            return
        supplied = command.args[0] if command.args else ""
        if hmac.compare_digest(supplied.encode(), token.encode()):
            self.authed = True
            await self.write_records(
                [self.tag(protocol.format_done({"authenticated": True}),
                          session_id)]
            )
        else:
            await self.write_records(
                [self.tag(protocol.format_error("invalid service token"),
                          session_id)]
            )

    # -- session commands ------------------------------------------------

    async def open_session(self, line: str) -> None:
        session_id, _ = protocol.split_session(line)
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        if not command.args:
            await self.write_records(
                [self.tag(protocol.format_error(
                    "session-open needs a program path"), session_id)]
            )
            return
        limits = ResourceLimits(
            address_space=command.option_int("as"),
            cpu_seconds=command.option_int("cpu"),
            file_size=command.option_int("fsize"),
        )
        try:
            session = await self.service.manager.open(
                command.args[0],
                list(command.args[1:]),
                limits=limits,
                session_id=session_id,
            )
        except TrackerError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        session.owner = self
        self.sessions[session.session_id] = session
        await self.write_records(
            [
                self.tag(
                    protocol.format_done(
                        {
                            "session": session.session_id,
                            "pid": session.child.pid,
                            "warm": session.child.warm,
                            "epoch": session.epoch,
                        }
                    ),
                    session_id,
                )
            ]
        )

    async def attach_session(self, line: str) -> None:
        session_id, _ = protocol.split_session(line)
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records(
                [self.tag(protocol.format_error(str(error)), session_id)]
            )
            return
        sid = command.args[0] if command.args else session_id
        manager = self.service.manager
        error_message: Optional[str] = None
        session = manager.sessions.get(sid) if sid else None
        if not sid:
            error_message = "session-attach needs a session id"
        elif manager.draining:
            error_message = protocol.retryable_message(
                "service is draining; sessions cannot be re-attached", 5
            )
        elif session is None or session.closed:
            error_message = f"no session {sid!r}"
        elif session.wire_id is None:
            error_message = "a legacy session cannot be re-attached"
        elif (
            session.owner is not None
            and session.owner is not self
            and not session.owner.finished
        ):
            error_message = (
                f"session {sid!r} is attached to another connection"
            )
        if error_message is not None:
            await self.write_records(
                [self.tag(protocol.format_error(error_message), session_id)]
            )
            return
        previous = session.owner
        if previous is not None and previous is not self:
            previous.sessions.pop(sid, None)
        backlog = session.attach(self)
        self.sessions[sid] = session
        manager.stats.attached += 1
        await self.write_records(
            [
                self.tag(
                    protocol.format_done(
                        {
                            "session": sid,
                            "epoch": session.epoch,
                            "degraded": session.degraded,
                            "program": session.program,
                            "started": session.started,
                            "exited": session.exited,
                            "pid": session.child.pid,
                            "backlog": len(backlog),
                        }
                    ),
                    session_id,
                )
            ]
        )
        await self.write_records(backlog)

    async def close_session(self, session_id: Optional[str]) -> None:
        session = (
            self.implicit if session_id is None
            else self.sessions.get(session_id)
        )
        if session is None:
            await self.write_records(
                [self.tag(protocol.format_error(
                    f"no session {session_id!r}"), session_id)]
            )
            return
        await self.service.manager.close_session(session)
        self.sessions.pop(session.session_id, None)
        if session is self.implicit:
            self.implicit = None
        await self.write_records(
            [self.tag(protocol.format_done(
                {"closed": session.session_id}), session_id)]
        )

    async def run_in_session(
        self,
        session_id: str,
        line: str,
        body: str,
        counted: bool = False,
    ) -> None:
        session = self.sessions.get(session_id)
        if session is None:
            await self.write_records(
                [self.tag(protocol.format_error(
                    f"no session {session_id!r}"), session_id)]
            )
            return
        if body.strip() == "-exec-interrupt":
            await session.interrupt()
            return
        records = await session.run_command(line, _counted=counted)
        await self.deliver(session, records)

    async def deliver(self, session: Session, records: List[str]) -> None:
        """Route a command's records to the session's *current* owner.

        The owner may be a different connection than the one the command
        arrived on (the client reconnected mid-command), or gone entirely
        (detached) — then the records buffer for the next attach.
        """
        owner = session.owner
        if owner is None or owner.finished:
            session.buffer_undelivered(records)
            return
        if not await owner.write_records(records):
            session.buffer_undelivered(records)

    # -- the implicit legacy session -------------------------------------

    async def run_legacy(
        self, line: str, name: str, counted: bool = False
    ) -> None:
        """An id-less command: route to (or open) the implicit session."""
        if name == "-exec-interrupt" and self.implicit is not None:
            await self.implicit.interrupt()
            return
        if self.implicit is None:
            if name != "-file-exec-and-symbols":
                await self.write_records(
                    [protocol.format_error(
                        "no session; send -session-open (or "
                        "-file-exec-and-symbols for a legacy session)")]
                )
                return
            await self.open_implicit(line)
            return
        session = self.implicit
        records = await session.run_command(line, _counted=counted)
        await self.deliver(session, records)

    async def open_implicit(self, line: str) -> None:
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            await self.write_records([protocol.format_error(str(error))])
            return
        if not command.args:
            await self.write_records(
                [protocol.format_error("file-exec-and-symbols needs a path")]
            )
            return
        try:
            session = await self.service.manager.open(
                command.args[0], list(command.args[1:])
            )
        except TrackerError as error:
            await self.write_records([protocol.format_error(str(error))])
            return
        session.wire_id = None  # its client speaks id-less MI
        session.owner = self
        self.implicit = session
        self.sessions[session.session_id] = session
        await self.write_records(
            [protocol.format_done({"file": session.program})]
        )

    # -- teardown --------------------------------------------------------

    async def cleanup(self) -> None:
        self.finished = True
        manager = self.service.manager
        # A connection serving a legacy client (or a service with no
        # detach grace) keeps the old semantics: drop = close. Otherwise
        # sessions detach and in-flight dialogues run to completion,
        # delivering into the backlog for a future -session-attach.
        detach_mode = (
            self.service.config.detach_grace is not None
            and self.implicit is None
            and not manager.draining
        )
        doomed = list(self.tasks)
        if not detach_mode:
            doomed += list(self.command_tasks)
        for task in doomed:
            task.cancel()
        if doomed:
            await asyncio.gather(*doomed, return_exceptions=True)
        for session in list(self.sessions.values()):
            if session.closed:
                continue
            if detach_mode and session.wire_id is not None:
                if session.owner is self:
                    session.detach()
                    manager.stats.detached += 1
            else:
                await manager.close_session(session)
        self.sessions.clear()
        self.implicit = None
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
