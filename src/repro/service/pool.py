"""The warm inferior pool: pre-forked idle child servers.

Cold session open costs a full child-interpreter boot — fork, Python
startup, importing the tracker stack — hundreds of milliseconds that
dominate short debugging sessions. The pool pays that cost *ahead of
demand*: it keeps ``size`` idle children (``python -m repro.subproc.server
--idle``) parked and hands one out per session open, so binding a session
is one ``-file-exec-and-symbols`` round trip into an already-running
interpreter. A background task refills the pool after every acquisition,
so sustained churn keeps finding warm children.

Reuse is deliberately conservative. A child goes back to the shelf only
when its session closed cleanly AND the inferior either never started or
ran to completion AND no resource limits were applied (rlimits only go
down — a limited child would leak one session's sandbox into the next).
Anything else — crash, mid-run abandon, taint — is discarded and replaced
by a fresh fork. Every parked child is health-checked (``-server-info``
round trip) before being handed out; a poisoned child is discarded and
the next one tried, falling back to a cold spawn when the shelf runs
empty.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ProtocolError, ServerCrashError, TrackerError
from repro.mi import protocol
from repro.mi.transport import SPAWN_TIMEOUT, AsyncPipeTransport

#: Deadline on the health-check round trip for a parked child.
PING_TIMEOUT = 5.0

#: Command line of a warm (program-less) child server.
IDLE_ARGV = [sys.executable, "-m", "repro.subproc.server", "--idle"]


class ChildHandle:
    """One pooled child server and the request plumbing to drive it.

    Wraps an :class:`AsyncPipeTransport` with record-level send/receive
    and a simple synchronous-command round trip (the pool and the session
    binding need ``-server-info`` / ``-file-exec-and-symbols`` /
    ``-apply-limits``; run-control streaming lives in the session layer).
    """

    def __init__(self, transport: AsyncPipeTransport, warm: bool):
        self.transport = transport
        #: whether this child came off the shelf (vs a cold spawn)
        self.warm = warm
        #: sessions this child has served so far
        self.sessions_served = 0

    @property
    def pid(self) -> Optional[int]:
        return self.transport.pid

    def alive(self) -> bool:
        return self.transport.alive()

    async def recv_record(
        self, timeout: Optional[float] = None
    ) -> Optional[protocol.Record]:
        line = await self.transport.recv_line(timeout=timeout)
        return None if line is None else protocol.parse_record(line)

    async def request(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
        timeout: float = PING_TIMEOUT,
    ) -> Any:
        """One synchronous command round trip; the ``^done`` payload.

        Raises ``TrackerError`` on ``^error``, ``ServerCrashError`` when
        the child dies, ``asyncio.TimeoutError`` when it goes mute.
        """
        return await self.request_line(
            protocol.format_command(name, args, options), timeout=timeout
        )

    async def request_line(
        self, line: str, timeout: float = PING_TIMEOUT
    ) -> Any:
        """:meth:`request` for an already-formatted command line.

        The session-resurrection replay path uses this: recovery
        manifests store verbatim command bodies, which replay id-less
        against a fresh child.
        """
        await self.transport.send_line(line)
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(f"{line} went unanswered")
            record = await self.recv_record(timeout=remaining)
            if record is None:
                continue
            if record.kind == "done":
                return record.payload
            if record.kind == "error":
                raise TrackerError(str(record.payload))
            if record.kind in ("stream", "notify"):
                continue  # stale output from a previous life
            raise ProtocolError(f"unexpected record {record.kind} for {line}")

    async def run_line(
        self, line: str, timeout: float = PING_TIMEOUT
    ) -> Dict[str, Any]:
        """One exec-command round trip; the ``*stopped`` payload.

        Streams and notifications produced by the re-executed inferior
        are consumed and discarded (replay must not re-deliver output the
        client already saw). Raises like :meth:`request`.
        """
        await self.transport.send_line(line)
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(f"{line} went unanswered")
            record = await self.recv_record(timeout=remaining)
            if record is None:
                continue
            if record.kind == "stopped":
                return record.payload or {}
            if record.kind == "error":
                raise TrackerError(str(record.payload))
            # running / done (stale ack) / stream / notify: keep reading

    async def close(self, graceful_exit: bool = True) -> None:
        await self.transport.close(graceful_exit=graceful_exit)


class WarmPool:
    """A shelf of idle child servers, refilled in the background.

    Args:
        size: target number of parked idle children (0 disables warming:
            every acquire is a cold spawn).
        spawn_argv: child command line, overridable for tests (e.g. a
            crashing stub to exercise the discard path).
        transport_spawner: factory awaited as ``spawner(argv)`` to build
            the child transport — the chaos harness injects fault-wrapped
            transports here (see ``repro.testing.faults``). Defaults to
            :meth:`AsyncPipeTransport.spawn`.
    """

    def __init__(
        self,
        size: int = 4,
        spawn_argv: Optional[List[str]] = None,
        transport_spawner: Optional[Callable[[List[str]], Any]] = None,
    ):
        self.size = size
        self._spawn_argv = list(spawn_argv or IDLE_ARGV)
        self._spawn_transport = transport_spawner or AsyncPipeTransport.spawn
        self._idle: List[ChildHandle] = []
        self._refill_task: Optional["asyncio.Task[None]"] = None
        self._closed = False
        #: observability counters, surfaced via ``-service-stats``
        self.stats: Dict[str, int] = {
            "spawned": 0,
            "warm_hits": 0,
            "cold_spawns": 0,
            "discarded": 0,
            "reused": 0,
        }

    # ------------------------------------------------------------------
    # Spawning and filling
    # ------------------------------------------------------------------

    async def _spawn_child(self, warm: bool) -> ChildHandle:
        transport = await self._spawn_transport(self._spawn_argv)
        child = ChildHandle(transport, warm=warm)
        greeting = await child.recv_record(timeout=SPAWN_TIMEOUT)
        if greeting is None or greeting.kind != "done":
            await child.close(graceful_exit=False)
            raise TrackerError(
                f"pool child refused to start: {greeting!r}"
            )
        self.stats["spawned"] += 1
        return child

    async def start(self) -> None:
        """Fill the shelf to ``size`` (spawns happen concurrently)."""
        need = self.size - len(self._idle)
        if need <= 0:
            return
        children = await asyncio.gather(
            *(self._spawn_child(warm=True) for _ in range(need)),
            return_exceptions=True,
        )
        for child in children:
            if isinstance(child, ChildHandle):
                self._idle.append(child)

    def _schedule_refill(self) -> None:
        if self._closed or len(self._idle) >= self.size:
            return
        if self._refill_task is not None and not self._refill_task.done():
            return
        self._refill_task = asyncio.ensure_future(self._refill())

    async def _refill(self) -> None:
        while not self._closed and len(self._idle) < self.size:
            try:
                child = await self._spawn_child(warm=True)
            except (TrackerError, ServerCrashError, OSError):
                return  # transient spawn trouble; next acquire retries
            if self._closed or len(self._idle) >= self.size:
                await child.close(graceful_exit=False)
                return
            self._idle.append(child)

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    async def _healthy(self, child: ChildHandle) -> bool:
        """A parked child is usable iff it answers ``-server-info``."""
        if not child.alive():
            return False
        try:
            info = await child.request("-server-info")
        except (TrackerError, ServerCrashError, ProtocolError,
                asyncio.TimeoutError):
            return False
        return not info.get("limits_applied", False)

    async def acquire(self) -> ChildHandle:
        """A live child, warm when possible; always schedules a refill."""
        if self._closed:
            raise TrackerError("the pool is closed")
        try:
            while self._idle:
                child = self._idle.pop(0)
                if await self._healthy(child):
                    self.stats["warm_hits"] += 1
                    if child.sessions_served:
                        self.stats["reused"] += 1
                    child.sessions_served += 1
                    return child
                self.stats["discarded"] += 1
                await child.close(graceful_exit=False)
            self.stats["cold_spawns"] += 1
            child = await self._spawn_child(warm=False)
            child.sessions_served += 1
            return child
        finally:
            self._schedule_refill()

    async def release(self, child: ChildHandle, reusable: bool) -> None:
        """Park a child back on the shelf, or retire it.

        ``reusable`` is the *caller's* verdict (clean close, untainted);
        the pool adds its own checks — liveness, shelf space — and a
        parked child is re-verified again at the next acquire.
        """
        if (
            reusable
            and not self._closed
            and child.alive()
            and len(self._idle) < self.size
        ):
            self._idle.append(child)
            return
        self.stats["discarded"] += 1
        await child.close(graceful_exit=True)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Retire every parked child (idempotent)."""
        self._closed = True
        if self._refill_task is not None:
            self._refill_task.cancel()
            try:
                await self._refill_task
            except (asyncio.CancelledError, Exception):
                pass
        children, self._idle = self._idle, []
        await asyncio.gather(
            *(child.close(graceful_exit=False) for child in children),
            return_exceptions=True,
        )
