"""The multiplexing tracker service: many sessions, one event loop.

The paper's trackers are one-tool-one-inferior: every
:class:`~repro.subproc.tracker.SubprocPythonTracker` boots a fresh child
interpreter and talks to it over a dedicated pipe with dedicated pump
threads. That is the right shape for a single debugging session and the
wrong shape for a classroom server grading thirty submissions at once —
N sessions cost N interpreter boots and 2N threads before any tracking
happens.

This package keeps the wire protocol and the child server exactly as
they are and changes only the tool side of the pipe:

- :class:`~repro.service.pool.WarmPool` pre-forks idle child servers
  (``python -m repro.subproc.server --idle``), so opening a session
  costs one ``-file-exec-and-symbols`` round trip instead of an
  interpreter boot;
- :class:`~repro.service.manager.SessionManager` multiplexes N sessions
  over one asyncio event loop — admission control (bounded concurrency,
  queue or reject), per-session resource limits, idle reaping;
- :class:`~repro.service.server.TrackerService` exposes the whole thing
  over TCP or stdio using the session-id framing of
  :mod:`repro.mi.protocol` (``s1-exec-run`` / ``s1*stopped``); id-less
  legacy clients get an implicit session and never see an id;
- :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.AsyncTracker` are the matching
  client-side facade: ``await tracker.resume()`` from any coroutine,
  many trackers per connection.

The service is *crash-only*: a child that dies (OOM-killed, segfaulted,
chaos-injected SIGKILL) is resurrected from its session's
:class:`~repro.service.manager.RecoveryManifest` — control points
re-installed, execution replayed when the history is deterministic — and
a dropped TCP connection is survived by client-side reconnect plus
``-session-attach``. SIGTERM triggers a graceful drain (new work gets a
typed retry-after rejection, in-flight commands finish, recording
timelines are snapshotted). See ``docs/API.md`` ("Crash-only service").

Start it with ``python -m repro serve``.
"""

from repro.service.client import AsyncTracker, ServiceClient
from repro.service.manager import (
    ProgramQuarantined,
    RecoveryManifest,
    ServiceAuthError,
    ServiceBusy,
    ServiceDraining,
    Session,
    SessionManager,
    SessionOverloaded,
    SessionStats,
)
from repro.service.pool import ChildHandle, WarmPool
from repro.service.server import ServiceConfig, TrackerService

__all__ = [
    "AsyncTracker",
    "ChildHandle",
    "ProgramQuarantined",
    "RecoveryManifest",
    "ServiceAuthError",
    "ServiceBusy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDraining",
    "Session",
    "SessionManager",
    "SessionOverloaded",
    "SessionStats",
    "TrackerService",
    "WarmPool",
]
